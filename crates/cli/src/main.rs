//! `graft-cli` — browse Graft trace directories from the terminal: the
//! navigation half of the paper's browser GUI.
//!
//! Traces written to a `LocalFs` (directory on disk) can be inspected
//! without recompiling the original program, as long as they use the
//! default JSON-lines codec:
//!
//! ```text
//! graft-cli <trace-dir> info
//! graft-cli <trace-dir> supersteps
//! graft-cli <trace-dir> show <superstep>
//! graft-cli <trace-dir> vertex <id>
//! graft-cli <trace-dir> violations
//! graft-cli <trace-dir> master
//! graft-cli <trace-dir> analyze
//! ```
//!
//! `analyze` runs `graft-analyzer`'s configuration lints over the
//! [`ConfigFacts`](graft::ConfigFacts) recorded in `meta.json` and exits
//! nonzero when any Error-severity finding fires, so it can gate CI. The
//! deeper semantic checks (combiner algebra, message-order races) need
//! the compiled computation; run those through
//! `graft_analyzer::analyze_session` in a test.
//!
//! `graft-cli run <algorithm>` executes a built-in algorithm on the
//! simulated HDFS cluster with checkpoint/restart fault tolerance —
//! optionally under an injected fault plan — and can export the trace
//! directory for browsing (see `run_cmd`).

#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::sync::Arc;

use graft::untyped::UntypedSession;
use graft_dfs::LocalFs;

mod profile_cmd;
mod run_cmd;

fn usage() -> ExitCode {
    eprintln!(
        "usage: graft-cli <trace-dir> <command>\n\
         \x20      graft-cli run <algorithm> [options]   (see `graft-cli run` for details)\n\
         \x20      graft-cli profile <obs-dir> [options] (see `graft-cli profile`)\n\
         commands:\n\
         \x20 info                 job metadata and terminal status\n\
         \x20 supersteps           captured supersteps with counts and M/V/E indicators\n\
         \x20 show <superstep>     the tabular view of one superstep\n\
         \x20 vertex <id>          one vertex's history across supersteps\n\
         \x20 violations           the violations & exceptions view\n\
         \x20 master               captured master contexts\n\
         \x20 analyze              run config lints (GA0006-GA0012) over meta.json"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("run") {
        return match args.get(1) {
            Some(_) => run_cmd::run(&args[1..]),
            None => run_cmd::usage(),
        };
    }
    if args.first().map(String::as_str) == Some("profile") {
        return match args.get(1) {
            Some(_) => profile_cmd::run(&args[1..]),
            None => profile_cmd::usage(),
        };
    }
    let (dir, command) = match (args.first(), args.get(1)) {
        (Some(dir), Some(command)) => (dir.clone(), command.clone()),
        _ => return usage(),
    };

    // The trace directory on disk becomes the root of a LocalFs.
    let fs = match LocalFs::new(&dir) {
        Ok(fs) => Arc::new(fs),
        Err(e) => {
            eprintln!("cannot open {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let session = match UntypedSession::open(fs, "/") {
        Ok(session) => session,
        Err(e) => {
            eprintln!("cannot load traces from {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };

    match command.as_str() {
        "info" => info(&session),
        "supersteps" => supersteps(&session),
        "show" => match args.get(2).and_then(|s| s.parse().ok()) {
            Some(superstep) => show(&session, superstep),
            None => return usage(),
        },
        "vertex" => match args.get(2) {
            Some(id) => vertex(&session, id),
            None => return usage(),
        },
        "violations" => violations(&session),
        "master" => master(&session),
        "analyze" => return analyze(&session),
        _ => return usage(),
    }
    ExitCode::SUCCESS
}

fn analyze(session: &UntypedSession) -> ExitCode {
    if session.meta().facts.is_none() {
        println!(
            "meta.json has no config facts (trace written by an older graft); nothing to analyze"
        );
        return ExitCode::SUCCESS;
    }
    let report = graft_analyzer::analyze_meta(session.meta());
    print!("{}", report.to_text());
    println!(
        "\nnote: combiner algebra and message-order race checks need the compiled \
         computation;\nrun graft_analyzer::analyze_session against this trace from a test."
    );
    if report.errors().is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn info(session: &UntypedSession) {
    let meta = session.meta();
    println!("computation : {}", meta.computation);
    if let Some(master) = &meta.master {
        println!("master      : {master}");
    }
    println!(
        "types       : Id={} VValue={} EValue={} Message={}",
        meta.value_types.0, meta.value_types.1, meta.value_types.2, meta.value_types.3
    );
    println!("workers     : {}", meta.num_workers);
    println!("codec       : {:?}", meta.codec);
    println!("debug config:");
    for line in &meta.config {
        println!("  - {line}");
    }
    match session.result() {
        Some(result) => {
            println!(
                "result      : {} supersteps, {} captures, {} violations, {} exceptions{}",
                result.supersteps_executed,
                result.captures,
                result.violations,
                result.exceptions,
                if result.capture_limit_hit { " (capture limit hit)" } else { "" },
            );
            match &result.error {
                Some(error) => println!("job FAILED  : {error}"),
                None => println!("job status  : success"),
            }
        }
        None => println!("result      : job still running or crashed before finalize"),
    }
}

fn supersteps(session: &UntypedSession) {
    println!("superstep  captures  M    V    E");
    for superstep in session.supersteps() {
        let ind = session.indicators(superstep);
        let mark = |red: bool| if red { "RED " } else { "ok  " };
        println!(
            "{superstep:>9}  {:>8}  {}  {}  {}",
            session.captured_at(superstep).len(),
            mark(ind.message_violation),
            mark(ind.value_violation),
            mark(ind.exception),
        );
    }
}

fn show(session: &UntypedSession, superstep: u64) {
    let traces = session.captured_at(superstep);
    println!("superstep {superstep}: {} capture(s)", traces.len());
    for trace in traces {
        println!(
            "  vertex {:<12} {} -> {}  in={} out={} {}  [{}]",
            trace.vertex(),
            trace.value_before(),
            trace.value_after(),
            trace.incoming_count(),
            trace.outgoing_count(),
            if trace.halted_after() { "halted" } else { "active" },
            trace.reasons().join(","),
        );
        for (kind, detail, target) in trace.violations() {
            match target {
                Some(target) => println!("    violation {kind}: {detail} -> {target}"),
                None => println!("    violation {kind}: {detail}"),
            }
        }
        if let Some((message, _)) = trace.exception() {
            println!("    exception: {message}");
        }
    }
}

fn vertex(session: &UntypedSession, id: &str) {
    let history = session.history(id);
    if history.is_empty() {
        println!("vertex {id} was never captured");
        return;
    }
    for trace in history {
        println!(
            "superstep {:>4}: {} -> {}  edges={} in={} out={} {}",
            trace.superstep(),
            trace.value_before(),
            trace.value_after(),
            trace.edges().len(),
            trace.incoming_count(),
            trace.outgoing_count(),
            if trace.halted_after() { "halted" } else { "active" },
        );
    }
}

fn violations(session: &UntypedSession) {
    let offenders = session.violations();
    println!("{} offending capture(s)", offenders.len());
    for trace in offenders {
        for (kind, detail, target) in trace.violations() {
            println!(
                "superstep {:>4}  vertex {:<12} {kind}: {detail}{}",
                trace.superstep(),
                trace.vertex(),
                target.map(|t| format!(" -> {t}")).unwrap_or_default(),
            );
        }
        if let Some((message, backtrace)) = trace.exception() {
            println!(
                "superstep {:>4}  vertex {:<12} exception: {message}",
                trace.superstep(),
                trace.vertex(),
            );
            if let Some(backtrace) = backtrace {
                for line in backtrace.lines().take(8) {
                    println!("    {line}");
                }
            }
        }
    }
}

fn master(session: &UntypedSession) {
    for trace in session.master_traces() {
        let aggregators: Vec<String> =
            trace.aggregators.iter().map(|(name, value)| format!("{name}={value}")).collect();
        println!(
            "superstep {:>4}: {}{}",
            trace.superstep,
            aggregators.join(" "),
            if trace.halted { "  [HALTED]" } else { "" },
        );
    }
}
