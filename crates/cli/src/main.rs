//! `graft-cli` — browse Graft trace directories from the terminal: the
//! navigation half of the paper's browser GUI.
//!
//! Traces written to a `LocalFs` (directory on disk) can be inspected
//! without recompiling the original program, in either trace format —
//! the default framed binary codec or JSON lines (`meta.json` records
//! which one; files without the record are legacy JSON):
//!
//! ```text
//! graft-cli <trace-dir> info
//! graft-cli <trace-dir> supersteps
//! graft-cli <trace-dir> show <superstep>
//! graft-cli <trace-dir> vertex <id>
//! graft-cli <trace-dir> violations
//! graft-cli <trace-dir> master
//! graft-cli <trace-dir> analyze
//! graft-cli trace dump <trace-dir>
//! graft-cli trace convert <src> <dst> --to json|binary
//! ```
//!
//! `analyze` runs `graft-analyzer`'s configuration lints over the
//! [`ConfigFacts`](graft::ConfigFacts) recorded in `meta.json` and exits
//! nonzero when any Error-severity finding fires, so it can gate CI. The
//! deeper semantic checks (combiner algebra, message-order races) need
//! the compiled computation; run those through
//! `graft_analyzer::analyze_session` in a test.
//!
//! `graft-cli run <algorithm>` executes a built-in algorithm on the
//! simulated HDFS cluster with checkpoint/restart fault tolerance —
//! optionally under an injected fault plan — and can export the trace
//! directory for browsing (see `run_cmd`). With `--live` the run
//! streams its observability channel as it goes; `graft-cli watch`
//! tails that channel from the terminal and `graft-cli serve --follow`
//! serves it over HTTP (see `watch_cmd` / `serve_cmd`).

#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::sync::Arc;

use graft::untyped::UntypedSession;
use graft::views::json as vj;
use graft_dfs::LocalFs;

mod check_sched_cmd;
mod profile_cmd;
mod run_cmd;
mod serve_cmd;
mod trace_cmd;
mod watch_cmd;

fn usage() -> ExitCode {
    eprintln!(
        "usage: graft-cli <trace-dir> <command> [--format json|text]\n\
         \x20      graft-cli run <algorithm> [options]   (see `graft-cli run` for details)\n\
         \x20      graft-cli profile <obs-dir> [options] (see `graft-cli profile`)\n\
         \x20      graft-cli serve --trace-root <dir>    (see `graft-cli serve`)\n\
         \x20      graft-cli watch <trace-dir> [options] (see `graft-cli watch`)\n\
         \x20      graft-cli trace <dump|convert> ...    (see `graft-cli trace`)\n\
         \x20      graft-cli check-sched [options]       (see `graft-cli check-sched --help`)\n\
         commands:\n\
         \x20 info                 job metadata and terminal status\n\
         \x20 supersteps           captured supersteps with counts and M/V/E indicators\n\
         \x20 show <superstep>     the tabular view of one superstep\n\
         \x20 nodelink <superstep> the node-link view document (always JSON)\n\
         \x20 vertex <id>          one vertex's history across supersteps\n\
         \x20 violations           the violations & exceptions view\n\
         \x20 repro <id> <ss>      generated reproducer test for one captured vertex\n\
         \x20 master               captured master contexts\n\
         \x20 analyze              run config lints (GA0006-GA0019) over meta.json\n\
         `--format json` prints the same bytes graft-server sends for the\n\
         matching endpoint (info, supersteps, show, violations)."
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("run") {
        return match args.get(1) {
            Some(_) => run_cmd::run(&args[1..]),
            None => run_cmd::usage(),
        };
    }
    if args.first().map(String::as_str) == Some("profile") {
        return match args.get(1) {
            Some(_) => profile_cmd::run(&args[1..]),
            None => profile_cmd::usage(),
        };
    }
    if args.first().map(String::as_str) == Some("serve") {
        return match args.get(1) {
            Some(_) => serve_cmd::run(&args[1..]),
            None => serve_cmd::usage(),
        };
    }
    if args.first().map(String::as_str) == Some("watch") {
        return match args.get(1) {
            Some(_) => watch_cmd::run(&args[1..]),
            None => watch_cmd::usage(),
        };
    }
    if args.first().map(String::as_str) == Some("trace") {
        return match args.get(1) {
            Some(_) => trace_cmd::run(&args[1..]),
            None => trace_cmd::usage(),
        };
    }
    if args.first().map(String::as_str) == Some("check-sched") {
        // No arguments means the full gate, so empty `rest` is valid.
        if args.get(1).map(String::as_str) == Some("--help") {
            return check_sched_cmd::usage();
        }
        return check_sched_cmd::run(&args[1..]);
    }

    // `--format json|text` may appear anywhere after the command.
    let json = match args.windows(2).position(|w| w[0] == "--format") {
        Some(pos) => {
            let format = args[pos + 1].clone();
            args.drain(pos..pos + 2);
            match format.as_str() {
                "json" => true,
                "text" => false,
                other => {
                    eprintln!("error: unknown format {other}\n");
                    return usage();
                }
            }
        }
        None => false,
    };
    let (dir, command) = match (args.first(), args.get(1)) {
        (Some(dir), Some(command)) => (dir.clone(), command.clone()),
        _ => return usage(),
    };

    // The trace directory on disk becomes the root of a LocalFs.
    let fs = match LocalFs::new(&dir) {
        Ok(fs) => Arc::new(fs),
        Err(e) => {
            eprintln!("cannot open {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let session = match UntypedSession::open(fs, "/") {
        Ok(session) => session,
        Err(e) => {
            eprintln!("cannot load traces from {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // In JSON mode the job id is the trace directory's basename — the
    // same id `graft-cli serve --trace-root <parent>` would route it as.
    let job_id = std::path::Path::new(&dir)
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| dir.clone());

    match command.as_str() {
        "info" if json => print!("{}", vj::to_line(&vj::job_json(&job_id, &session))),
        "info" => info(&session),
        "supersteps" if json => print!("{}", vj::to_line(&vj::supersteps_json(&session))),
        "supersteps" => supersteps(&session),
        "show" => match args.get(2).and_then(|s| s.parse().ok()) {
            // JSON `show` is the server's tabular document with the
            // server's defaults (no query, page 1, 50 rows per page).
            Some(superstep) if json => {
                print!("{}", vj::to_line(&vj::tabular_json(&session, superstep, None, 1, 50)))
            }
            Some(superstep) => show(&session, superstep),
            None => return usage(),
        },
        "nodelink" => match args.get(2).and_then(|s| s.parse().ok()) {
            Some(superstep) => {
                print!("{}", vj::to_line(&vj::node_link_json(&session, superstep)))
            }
            None => return usage(),
        },
        "vertex" => match args.get(2) {
            Some(id) => vertex(&session, id),
            None => return usage(),
        },
        "violations" if json => print!("{}", vj::to_line(&vj::violations_json(&session, None))),
        "violations" => violations(&session),
        "repro" => match (args.get(2), args.get(3).and_then(|s| s.parse().ok())) {
            (Some(id), Some(superstep)) => match vj::repro_source(&session, id, superstep) {
                Some(source) => print!("{source}"),
                None => {
                    eprintln!("vertex {id} was not captured in superstep {superstep}");
                    return ExitCode::FAILURE;
                }
            },
            _ => return usage(),
        },
        "master" => master(&session),
        "analyze" => return analyze(&session),
        _ => return usage(),
    }
    ExitCode::SUCCESS
}

fn analyze(session: &UntypedSession) -> ExitCode {
    if session.meta().facts.is_none() {
        println!(
            "meta.json has no config facts (trace written by an older graft); nothing to analyze"
        );
        return ExitCode::SUCCESS;
    }
    let report = graft_analyzer::analyze_meta(session.meta());
    print!("{}", report.to_text());
    println!(
        "\nnote: combiner algebra and message-order race checks need the compiled \
         computation;\nrun graft_analyzer::analyze_session against this trace from a test."
    );
    if report.errors().is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn info(session: &UntypedSession) {
    let meta = session.meta();
    println!("computation : {}", meta.computation);
    if let Some(master) = &meta.master {
        println!("master      : {master}");
    }
    println!(
        "types       : Id={} VValue={} EValue={} Message={}",
        meta.value_types.0, meta.value_types.1, meta.value_types.2, meta.value_types.3
    );
    println!("workers     : {}", meta.num_workers);
    println!("codec       : {:?}", meta.codec());
    println!("debug config:");
    for line in &meta.config {
        println!("  - {line}");
    }
    match session.result() {
        Some(result) => {
            println!(
                "result      : {} supersteps, {} captures, {} violations, {} exceptions{}",
                result.supersteps_executed,
                result.captures,
                result.violations,
                result.exceptions,
                if result.capture_limit_hit { " (capture limit hit)" } else { "" },
            );
            match &result.error {
                Some(error) => println!("job FAILED  : {error}"),
                None => println!("job status  : success"),
            }
        }
        None => println!("result      : job still running or crashed before finalize"),
    }
}

fn supersteps(session: &UntypedSession) {
    println!("superstep  captures  M    V    E");
    for superstep in session.supersteps() {
        let ind = session.indicators(superstep);
        let mark = |red: bool| if red { "RED " } else { "ok  " };
        println!(
            "{superstep:>9}  {:>8}  {}  {}  {}",
            session.captured_at(superstep).len(),
            mark(ind.message_violation),
            mark(ind.value_violation),
            mark(ind.exception),
        );
    }
}

fn show(session: &UntypedSession, superstep: u64) {
    let traces = session.captured_at(superstep);
    println!("superstep {superstep}: {} capture(s)", traces.len());
    for trace in traces {
        println!(
            "  vertex {:<12} {} -> {}  in={} out={} {}  [{}]",
            trace.vertex(),
            trace.value_before(),
            trace.value_after(),
            trace.incoming_count(),
            trace.outgoing_count(),
            if trace.halted_after() { "halted" } else { "active" },
            trace.reasons().join(","),
        );
        for (kind, detail, target) in trace.violations() {
            match target {
                Some(target) => println!("    violation {kind}: {detail} -> {target}"),
                None => println!("    violation {kind}: {detail}"),
            }
        }
        if let Some((message, _)) = trace.exception() {
            println!("    exception: {message}");
        }
    }
}

fn vertex(session: &UntypedSession, id: &str) {
    let history = session.history(id);
    if history.is_empty() {
        println!("vertex {id} was never captured");
        return;
    }
    for trace in history {
        println!(
            "superstep {:>4}: {} -> {}  edges={} in={} out={} {}",
            trace.superstep(),
            trace.value_before(),
            trace.value_after(),
            trace.edges().len(),
            trace.incoming_count(),
            trace.outgoing_count(),
            if trace.halted_after() { "halted" } else { "active" },
        );
    }
}

fn violations(session: &UntypedSession) {
    let offenders = session.violations();
    println!("{} offending capture(s)", offenders.len());
    for trace in offenders {
        for (kind, detail, target) in trace.violations() {
            println!(
                "superstep {:>4}  vertex {:<12} {kind}: {detail}{}",
                trace.superstep(),
                trace.vertex(),
                target.map(|t| format!(" -> {t}")).unwrap_or_default(),
            );
        }
        if let Some((message, backtrace)) = trace.exception() {
            println!(
                "superstep {:>4}  vertex {:<12} exception: {message}",
                trace.superstep(),
                trace.vertex(),
            );
            if let Some(backtrace) = backtrace {
                for line in backtrace.lines().take(8) {
                    println!("    {line}");
                }
            }
        }
    }
}

fn master(session: &UntypedSession) {
    for trace in session.master_traces() {
        let aggregators: Vec<String> =
            trace.aggregators.iter().map(|(name, value)| format!("{name}={value}")).collect();
        println!(
            "superstep {:>4}: {}{}",
            trace.superstep,
            aggregators.join(" "),
            if trace.halted { "  [HALTED]" } else { "" },
        );
    }
}
