//! `graft-cli check-sched` — the concurrency gate: deterministic
//! schedule exploration plus happens-before race detection over the
//! graft runtime, packaged as a CI-gateable command.
//!
//! ```text
//! graft-cli check-sched                       full gate (fixtures + runtime)
//! graft-cli check-sched --list                list the seeded-race fixtures
//! graft-cli check-sched --fixture <name>      explore one fixture
//! graft-cli check-sched --fixture <name> --replay <seed> [--strategy s]
//! ```
//!
//! The full gate runs two phases:
//!
//! 1. **Self-test** over [`graft_sched::fixtures`]: every racy fixture
//!    (a planted bug in a miniature engine/server protocol) must be
//!    *caught* within the schedule budget, and the clean fixture must
//!    pass every schedule. A racy fixture that survives means the
//!    detector regressed; the command exits nonzero.
//! 2. **Runtime gate**: the real [`graft_pregel::Engine`] (both
//!    executors) and the real `graft-server` concurrency protocols
//!    (TraceIndex cold-miss, ThreadPool shutdown-during-panic) are
//!    driven through many distinct interleavings. Any race, deadlock,
//!    panic, or stall fails the command and prints a step-by-step
//!    replay trace plus the exact `--replay` invocation reproducing it.
//!
//! Exit status: 0 when every expectation holds, 1 otherwise — gate CI
//! on it directly. In replay mode the status mirrors the verdict of the
//! replayed schedule (nonzero when it fails), so scripts can assert a
//! seed still reproduces.

use std::process::ExitCode;
use std::sync::Arc;

use graft_dfs::{FileSystem, InMemoryFs};
use graft_obs::{Obs, Scope};
use graft_pregel::{Computation, ContextOf, Engine, ExecutorMode, Graph, VertexHandleOf};
use graft_sched::fixtures::{self, Fixture};
use graft_sched::{
    explore, render_trace, run_schedule, ExploreConfig, ExploreReport, ScheduleOutcome,
    StrategyKind,
};
use graft_server::index::TraceIndex;
use graft_server::pool::ThreadPool;
use graft_server::synth::write_synthetic_trace;

/// Trailing trace steps printed for a failing schedule.
const TRACE_STEPS: usize = 150;

pub fn usage() -> ExitCode {
    eprintln!(
        "usage: graft-cli check-sched [options]\n\
         options:\n\
         \x20 --schedules <n>      distinct interleavings to explore per target (default 200)\n\
         \x20 --seed <s>           base exploration seed, decimal or 0x-hex (default 0xC0FFEE00)\n\
         \x20 --strategy <s>       random | pct[:depth] | mixed (default mixed)\n\
         \x20 --fixture <name>     check a single fixture instead of the full gate\n\
         \x20 --replay <seed>      replay one exact schedule (requires --fixture);\n\
         \x20                      pass the --strategy printed with the failing seed\n\
         \x20 --list               list the seeded-race fixtures and exit\n\
         with no options the full gate runs: every racy fixture must be caught\n\
         within the budget, the clean fixture and the real engine/server must\n\
         pass every explored schedule. exit status 0 = gate holds."
    );
    ExitCode::FAILURE
}

#[derive(Debug)]
struct CheckOptions {
    schedules: usize,
    seed: u64,
    strategy: StrategyKind,
    fixture: Option<String>,
    replay: Option<u64>,
    list: bool,
}

fn parse_seed(value: &str) -> Result<u64, String> {
    let parsed = match value.strip_prefix("0x").or_else(|| value.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => value.parse(),
    };
    parsed.map_err(|_| format!("bad seed {value}"))
}

fn parse_strategy(value: &str) -> Result<StrategyKind, String> {
    match value {
        "random" => Ok(StrategyKind::Random),
        "mixed" => Ok(StrategyKind::Mixed),
        "pct" => Ok(StrategyKind::Pct { depth: 3 }),
        other => match other.strip_prefix("pct:") {
            Some(depth) => depth
                .parse()
                .map(|depth| StrategyKind::Pct { depth })
                .map_err(|_| format!("bad pct depth in {other}")),
            None => Err(format!("unknown strategy {other}")),
        },
    }
}

/// Renders a strategy the way `--strategy` parses it, so failure
/// reports can print a copy-pastable replay command.
fn strategy_flag(kind: StrategyKind) -> String {
    match kind {
        StrategyKind::Random => "random".to_string(),
        StrategyKind::Pct { depth } => format!("pct:{depth}"),
        StrategyKind::Mixed => "mixed".to_string(),
    }
}

fn parse_options(args: &[String]) -> Result<CheckOptions, String> {
    let mut options = CheckOptions {
        schedules: 200,
        seed: 0xC0FF_EE00,
        strategy: StrategyKind::Mixed,
        fixture: None,
        replay: None,
        list: false,
    };
    let mut rest = args.iter();
    while let Some(flag) = rest.next() {
        if flag == "--list" {
            options.list = true;
            continue;
        }
        let value = rest.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--schedules" => {
                options.schedules =
                    value.parse().map_err(|_| format!("bad --schedules {value}"))?;
                if options.schedules == 0 {
                    return Err("--schedules must be at least 1".to_string());
                }
            }
            "--seed" => options.seed = parse_seed(value)?,
            "--strategy" => options.strategy = parse_strategy(value)?,
            "--fixture" => options.fixture = Some(value.clone()),
            "--replay" => options.replay = Some(parse_seed(value)?),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if options.replay.is_some() && options.fixture.is_none() {
        return Err("--replay needs --fixture <name>".to_string());
    }
    Ok(options)
}

/// Entry point for `graft-cli check-sched [options]`.
pub fn run(args: &[String]) -> ExitCode {
    let options = match parse_options(args) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("error: {e}\n");
            return usage();
        }
    };
    if options.list {
        return list_fixtures();
    }
    if let Some(seed) = options.replay {
        let fixture = options.fixture.as_deref().unwrap();
        return replay_fixture(fixture, seed, options.strategy);
    }
    if let Some(name) = &options.fixture {
        return check_one_fixture(name, &options);
    }
    full_gate(&options)
}

fn list_fixtures() -> ExitCode {
    for fixture in fixtures::catalog() {
        println!(
            "{:<28} {:>5}  {}",
            fixture.name,
            if fixture.racy { "racy" } else { "clean" },
            fixture.summary.split_whitespace().collect::<Vec<_>>().join(" "),
        );
    }
    ExitCode::SUCCESS
}

fn replay_fixture(name: &str, seed: u64, strategy: StrategyKind) -> ExitCode {
    let Some(fixture) = fixtures::by_name(name) else {
        eprintln!("error: no fixture named {name} (try --list)\n");
        return usage();
    };
    let outcome = run_schedule(seed, strategy, ExploreConfig::default().max_steps, fixture.body);
    print!("{}", render_trace(&outcome, TRACE_STEPS));
    if outcome.failed() {
        ExitCode::FAILURE
    } else {
        println!("schedule completed clean");
        ExitCode::SUCCESS
    }
}

/// Prints the replay trace and the exact command reproducing a failing
/// schedule.
fn report_failure(failure: &ScheduleOutcome, fixture: Option<&str>) {
    print!("{}", render_trace(failure, TRACE_STEPS));
    if let Some(name) = fixture {
        println!(
            "replay: graft-cli check-sched --fixture {name} --replay {:#x} --strategy {}",
            failure.seed,
            strategy_flag(failure.strategy_kind),
        );
    }
}

/// Explores one fixture and checks the report against its expectation:
/// racy fixtures must be caught, clean ones must survive every
/// schedule. Returns whether the expectation held.
fn fixture_holds(fixture: &Fixture, options: &CheckOptions, verbose_clean: bool) -> bool {
    let cfg = ExploreConfig {
        schedules: options.schedules,
        seed: options.seed,
        strategy: options.strategy,
        ..ExploreConfig::default()
    };
    let report = explore(&cfg, fixture.body);
    match (&report.failure, fixture.racy) {
        (Some(failure), true) => {
            println!(
                "fixture {:<28} racy   CAUGHT after {} schedule(s): {} \
                 (replay --replay {:#x} --strategy {})",
                fixture.name,
                report.attempted,
                failure.verdict(),
                failure.seed,
                strategy_flag(failure.strategy_kind),
            );
            true
        }
        (None, true) => {
            println!(
                "fixture {:<28} racy   MISSED: survived {} schedule(s) ({} distinct) — \
                 the detector regressed",
                fixture.name, report.attempted, report.distinct,
            );
            false
        }
        (Some(failure), false) => {
            println!("fixture {:<28} clean  FALSE POSITIVE: {}", fixture.name, failure.verdict());
            report_failure(failure, Some(fixture.name));
            false
        }
        (None, false) => {
            if verbose_clean {
                println!(
                    "fixture {:<28} clean  PASS over {} distinct schedule(s)",
                    fixture.name, report.distinct,
                );
            }
            true
        }
    }
}

fn check_one_fixture(name: &str, options: &CheckOptions) -> ExitCode {
    let Some(fixture) = fixtures::by_name(name) else {
        eprintln!("error: no fixture named {name} (try --list)\n");
        return usage();
    };
    if fixture_holds(fixture, options, true) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------
// Runtime gates: the real engine and server under exploration.
// ---------------------------------------------------------------------

/// Min-label propagation over a small ring: every interleaving must
/// converge to label 0 everywhere, so cross-schedule nondeterminism
/// shows up as a failing (panicking) schedule, not a silent wrong
/// answer.
struct MinLabel;

impl Computation for MinLabel {
    type Id = u64;
    type VValue = u64;
    type EValue = ();
    type Message = u64;

    fn compute(
        &self,
        vertex: &mut VertexHandleOf<'_, Self>,
        messages: &[u64],
        ctx: &mut ContextOf<'_, Self>,
    ) {
        let best = messages.iter().copied().chain([vertex.id(), *vertex.value()]).min().unwrap();
        if best < *vertex.value() {
            vertex.set_value(best);
            ctx.send_message_to_all_edges(vertex, best);
        }
        vertex.vote_to_halt();
    }
}

fn ring(n: u64) -> Graph<u64, u64, ()> {
    let mut b = Graph::builder();
    for v in 0..n {
        b.add_vertex(v, u64::MAX).unwrap();
    }
    for v in 0..n {
        b.add_edge(v, (v + 1) % n, ()).unwrap();
    }
    b.build().unwrap()
}

fn engine_gate(mode: ExecutorMode) {
    let outcome =
        Engine::new(MinLabel).num_workers(2).executor(mode).run(ring(6)).expect("job runs");
    for v in 0..6 {
        assert_eq!(outcome.graph.value(v), Some(&0), "vertex {v} converged");
    }
}

/// Two requests cold-miss the same job concurrently: the per-slot lock
/// must serialize the parse (one counted miss, one shared `Arc`).
fn index_gate() {
    let fs: Arc<dyn FileSystem> = Arc::new(InMemoryFs::new());
    write_synthetic_trace(fs.as_ref(), "/traces/shared", 8, 2).unwrap();
    let obs = Obs::wall();
    let index = Arc::new(TraceIndex::new(fs, "/traces", 4, Arc::clone(&obs)));
    let mut handles = Vec::new();
    for i in 0..2 {
        let index = Arc::clone(&index);
        let forked = graft_sched::thread::fork(format!("request-{i}"));
        let token = forked.token();
        let handle = std::thread::spawn(forked.wrap(move || index.session("shared").unwrap()));
        handles.push((token, handle));
    }
    let mut sessions = Vec::new();
    for (token, handle) in handles {
        token.join_point();
        sessions.push(handle.join().expect("request thread completes"));
    }
    assert!(Arc::ptr_eq(&sessions[0], &sessions[1]), "one parsed session shared");
    let misses = obs.registry().counter_value("server_index_misses", Scope::GLOBAL);
    assert_eq!(misses, 1, "the slot lock serializes the cold parse");
}

/// A handler panics while shutdown interleaves with the unwinding
/// worker; the job queued behind the panic must still run and the pool
/// must join cleanly.
fn pool_gate() {
    let mut pool = ThreadPool::new(1);
    let survived = Arc::new(graft_sched::atomic::AtomicUsize::new(0));
    pool.execute(|| panic!("handler blew up mid-shutdown"));
    let survived_in_job = Arc::clone(&survived);
    pool.execute(move || {
        survived_in_job.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    });
    pool.shutdown();
    assert_eq!(survived.load(std::sync::atomic::Ordering::SeqCst), 1);
}

/// Explores one real-runtime protocol; the report must be clean.
fn runtime_holds(what: &str, options: &CheckOptions, schedules: usize, body: impl Fn()) -> bool {
    let cfg = ExploreConfig {
        schedules,
        seed: options.seed,
        strategy: options.strategy,
        ..ExploreConfig::default()
    };
    let report: ExploreReport = explore(&cfg, body);
    match &report.failure {
        Some(failure) => {
            println!("runtime {what:<28} FAIL: {}", failure.verdict());
            report_failure(failure, None);
            false
        }
        None => {
            println!("runtime {what:<28} PASS over {} distinct schedule(s)", report.distinct);
            true
        }
    }
}

fn full_gate(options: &CheckOptions) -> ExitCode {
    let mut holds = true;

    println!(
        "phase 1: detector self-test ({} fixtures, budget {} schedules, seed {:#x})",
        fixtures::catalog().len(),
        options.schedules,
        options.seed,
    );
    for fixture in fixtures::catalog() {
        holds &= fixture_holds(fixture, options, true);
    }

    // The real runtime explores far more steps per schedule than the
    // fixtures, so the gate uses a proportional slice of the budget.
    let runtime_schedules = (options.schedules / 8).clamp(10, 50);
    println!("phase 2: runtime gate ({runtime_schedules} schedules per protocol)");
    holds &= runtime_holds("engine:persistent-pool", options, runtime_schedules, || {
        engine_gate(ExecutorMode::PersistentPool)
    });
    holds &= runtime_holds("engine:spawn-per-superstep", options, runtime_schedules, || {
        engine_gate(ExecutorMode::SpawnPerSuperstep)
    });
    holds &= runtime_holds("server:index-cold-miss", options, runtime_schedules, index_gate);
    holds &= runtime_holds("server:pool-panic-shutdown", options, runtime_schedules, pool_gate);

    if holds {
        println!("check-sched: gate holds");
        ExitCode::SUCCESS
    } else {
        println!("check-sched: GATE FAILED");
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options(schedules: usize, seed: u64) -> CheckOptions {
        CheckOptions {
            schedules,
            seed,
            strategy: StrategyKind::Mixed,
            fixture: None,
            replay: None,
            list: false,
        }
    }

    #[test]
    fn seeds_parse_in_both_bases() {
        assert_eq!(parse_seed("42").unwrap(), 42);
        assert_eq!(parse_seed("0xC0FFEE00").unwrap(), 0xC0FF_EE00);
        assert!(parse_seed("zebra").is_err());
    }

    #[test]
    fn strategies_round_trip_through_the_flag_renderer() {
        for flag in ["random", "mixed", "pct:3", "pct:7"] {
            let kind = parse_strategy(flag).unwrap();
            assert_eq!(strategy_flag(kind), flag);
        }
        assert_eq!(parse_strategy("pct").unwrap(), StrategyKind::Pct { depth: 3 });
        assert!(parse_strategy("eager").is_err());
    }

    #[test]
    fn replay_without_fixture_is_rejected() {
        let args: Vec<String> = ["--replay", "7"].iter().map(|s| s.to_string()).collect();
        assert!(parse_options(&args).unwrap_err().contains("--fixture"));
    }

    #[test]
    fn racy_fixture_expectation_holds_and_clean_one_passes() {
        let racy = fixtures::by_name("unsync-partition-write").unwrap();
        assert!(fixture_holds(racy, &options(60, 0xD1CE), false));
        let clean = fixtures::by_name("clean-pool-protocol").unwrap();
        assert!(fixture_holds(clean, &options(30, 0xD1CE), false));
    }

    #[test]
    fn runtime_gate_passes_on_the_real_engine() {
        assert!(runtime_holds("engine:persistent-pool", &options(10, 0xBEEF), 10, || {
            engine_gate(ExecutorMode::PersistentPool)
        }));
    }
}
