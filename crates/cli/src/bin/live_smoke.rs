//! CI smoke checker for live monitoring: runs a paced job with live
//! flushing on a shared in-memory file system, watches it through an
//! in-process `graft-server` in follow mode, and exits nonzero unless
//!
//! * `/jobs/{id}/live` answers while the job is still running and its
//!   snapshot sequence and watermark advance across polls,
//! * the standard views serve the completed-superstep prefix in flight,
//! * `?after_seq=` long-polling returns a newer snapshot,
//! * after completion the live status turns terminal and
//!   `/jobs/{id}/live/timeline` matches the post-mortem profile folded
//!   directly from the final event log.
//!
//! Usage: `live_smoke [--pace-ms 40] [--timeout-secs 60]`

use std::sync::Arc;

use graft::{DebugConfig, GraftRunner};
use graft_algorithms::pagerank::PageRank;
use graft_dfs::{FileSystem, InMemoryFs};
use graft_obs::{parse_jsonl, Obs, Profile, EVENTS_FILE};
use graft_pregel::Graph;
use graft_server::client::HttpClient;
use graft_server::server::{serve, ServerConfig};

const TRACE_ROOT: &str = "/traces/live";
const JOB_ID: &str = "live";

fn main() {
    let mut pace_ms: u64 = 40;
    let mut timeout_secs: u64 = 60;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let value = argv.next().unwrap_or_else(|| die(&format!("missing value for {flag}")));
        match flag.as_str() {
            "--pace-ms" => pace_ms = value.parse().unwrap_or_else(|_| die("bad --pace-ms")),
            "--timeout-secs" => {
                timeout_secs = value.parse().unwrap_or_else(|_| die("bad --timeout-secs"))
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(timeout_secs);

    // One shared fs: the runner streams into it, the follow server tails
    // it — the same topology as `run --live` + `serve --follow` over a
    // shared trace root.
    let fs: Arc<dyn FileSystem> = Arc::new(InMemoryFs::new());
    let runner = {
        let fs = Arc::clone(&fs);
        std::thread::spawn(move || {
            let config = DebugConfig::<PageRank>::builder().capture_all_active(true).build();
            let run = GraftRunner::new(PageRank::new(8), config)
                .with_fs(fs)
                .with_obs(Obs::wall())
                .live_flush(true)
                .pace_supersteps(std::time::Duration::from_millis(pace_ms))
                .num_workers(2)
                .checkpoint_every(2)
                .run(ring_graph(48), TRACE_ROOT)
                .unwrap_or_else(|e| die(&format!("runner setup: {e}")));
            run.outcome.is_ok()
        })
    };

    let config = ServerConfig { follow: true, workers: 2, ..ServerConfig::default() };
    let handle = serve(Arc::clone(&fs), "/traces", Obs::wall(), config)
        .unwrap_or_else(|e| die(&format!("starting server: {e}")));
    let mut client = HttpClient::new(handle.addr());

    // Phase 1: wait for the first live snapshot to answer 200.
    let live_path = format!("/jobs/{JOB_ID}/live");
    let mut body = loop {
        if std::time::Instant::now() >= deadline {
            die("timed out waiting for the first live snapshot");
        }
        match client.get(&live_path) {
            Ok(response) if response.status == 200 => break response.text().to_string(),
            Ok(_) | Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    };

    // Phase 2: follow the job to completion, checking monotonicity and
    // the in-flight contracts along the way.
    let mut seqs = vec![seq_of(&body)];
    let mut watermarks: Vec<Option<u64>> = vec![watermark_of(&body)];
    let mut checked_partial_views = false;
    while status_of(&body) == "running" {
        if std::time::Instant::now() >= deadline {
            die("timed out waiting for the job to finish");
        }
        if !checked_partial_views && watermarks.last().is_some_and(Option::is_some) {
            // A standard (non-live) view must serve the completed prefix
            // of the in-flight job.
            for path in [format!("/jobs/{JOB_ID}"), format!("/jobs/{JOB_ID}/supersteps")] {
                let response = client.get(&path).unwrap_or_else(|e| die(&e.to_string()));
                if response.status != 200 {
                    die(&format!("{path} while in flight: status {}", response.status));
                }
            }
            checked_partial_views = true;
        }
        // Long-poll: ask for strictly newer than the last seen seq.
        let last_seq = *seqs.last().expect("at least one snapshot seen");
        let response = client
            .get(&format!("{live_path}?after_seq={last_seq}"))
            .unwrap_or_else(|e| die(&e.to_string()));
        if response.status != 200 {
            die(&format!("long-poll: status {}", response.status));
        }
        body = response.text().to_string();
        let seq = seq_of(&body);
        if seq < last_seq {
            die(&format!("snapshot seq went backwards: {last_seq} -> {seq}"));
        }
        if seq == last_seq && status_of(&body) == "running" {
            // The long-poll hit its timeout without a newer snapshot; the
            // paced run should never be that slow, but don't record a
            // duplicate.
            continue;
        }
        seqs.push(seq);
        watermarks.push(watermark_of(&body));
    }

    if !runner.join().unwrap_or_else(|_| die("runner thread panicked")) {
        die("the job itself failed");
    }
    if seqs.len() < 3 {
        die(&format!("saw only {} snapshots; expected the sequence to advance", seqs.len()));
    }
    let seen: Vec<u64> = watermarks.iter().flatten().copied().collect();
    if seen.windows(2).any(|w| w[1] < w[0]) {
        die(&format!("watermark regressed: {seen:?}"));
    }
    if seen.last().copied() < Some(1) {
        die(&format!("watermark never advanced past superstep 0: {seen:?}"));
    }
    if !checked_partial_views {
        die("never observed an in-flight snapshot with a watermark");
    }

    // Phase 3: post-completion, the live timeline must match the profile
    // folded directly from the final event log — the same document
    // `graft-cli profile --export json` prints.
    let events_text = fs
        .read_all(&format!("{TRACE_ROOT}/obs/{EVENTS_FILE}"))
        .map_err(|e| e.to_string())
        .and_then(|bytes| String::from_utf8(bytes).map_err(|e| e.to_string()))
        .unwrap_or_else(|e| die(&format!("reading the final event log: {e}")));
    let events = parse_jsonl(&events_text).unwrap_or_else(|e| die(&format!("final log: {e}")));
    let expected =
        Profile::build(&events, None).unwrap_or_else(|e| die(&format!("folding profile: {e}")));
    let timeline =
        client.get(&format!("{live_path}/timeline")).unwrap_or_else(|e| die(&e.to_string()));
    if timeline.status != 200 {
        die(&format!("/live/timeline after completion: status {}", timeline.status));
    }
    if timeline.text() != expected.to_json() {
        die("/live/timeline differs from the post-mortem profile");
    }

    println!(
        "live_smoke: ok — {} snapshots, watermarks {:?}, final status {}",
        seqs.len(),
        seen,
        status_of(&body)
    );
}

/// Deterministic ring-with-chords topology (the `graft-cli run` family).
fn ring_graph(n: u64) -> Graph<u64, f64, ()> {
    let mut b = Graph::builder();
    for v in 0..n {
        b.add_vertex(v, 0.0).expect("distinct ids");
    }
    for v in 0..n {
        b.add_edge(v, (v + 1) % n, ()).expect("valid edge");
        b.add_edge(v, (v * 7 + 3) % n, ()).expect("valid edge");
    }
    b.build().expect("valid graph")
}

fn parse_doc(body: &str) -> serde_json::Value {
    serde_json::from_str(body).unwrap_or_else(|e| die(&format!("unparsable live doc: {e}")))
}

fn seq_of(body: &str) -> u64 {
    parse_doc(body)["seq"].as_u64().unwrap_or_else(|| die("live doc has no seq"))
}

fn watermark_of(body: &str) -> Option<u64> {
    parse_doc(body)["watermark"].as_u64()
}

fn status_of(body: &str) -> String {
    parse_doc(body)["status"].as_str().unwrap_or_else(|| die("live doc has no status")).to_string()
}

fn die(message: &str) -> ! {
    eprintln!("live_smoke: {message}");
    std::process::exit(1);
}
