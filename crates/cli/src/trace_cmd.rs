//! `graft-cli trace` — inspect and convert trace files at the wire level.
//!
//! ```text
//! graft-cli trace dump <trace-dir> [--limit <n>]
//! graft-cli trace convert <src-dir> <dst-dir> --to json|binary
//! ```
//!
//! `dump` walks every channel file frame by frame (or line by line for
//! JSON traces) and pretty-prints what is physically on disk — including
//! the superstep index frames the higher-level views never surface.
//!
//! `convert` rewrites a trace directory into the other encoding. The
//! conversion is *canonical*: converting a binary run to JSON produces
//! byte-identical worker/master files to a native JSON run of the same
//! job, and vice versa — binary→JSON drops the index frames a JSON file
//! never has, JSON→binary re-derives them from the record stream exactly
//! the way the trace sink does. `meta.json` is rewritten so readers
//! auto-detect the new format; every other file (checkpoints, obs
//! artifacts, result.json) is copied verbatim.

use std::process::ExitCode;
use std::sync::Arc;

use graft::trace::{
    decode_master_records, encode_index_frame, encode_record, index_record_from_payload,
    master_trace_path, meta_path, vertex_value_from_payload, worker_trace_path, IndexRecord,
    WireVertexTrace, FRAME_INDEX, FRAME_MASTER, FRAME_VERTEX,
};
use graft::{JobMeta, MasterTrace, TraceCodec};
use graft_codec::frame::FrameScanner;
use graft_dfs::{FileSystem, LocalFs};

pub fn usage() -> ExitCode {
    eprintln!(
        "usage: graft-cli trace dump <trace-dir> [--limit <n>]\n\
         \x20      graft-cli trace convert <src-dir> <dst-dir> --to json|binary\n\
         subcommands:\n\
         \x20 dump     pretty-print every record frame in the trace directory,\n\
         \x20          including binary superstep index frames (--limit caps the\n\
         \x20          records shown per channel file)\n\
         \x20 convert  rewrite a trace directory into the other encoding; the\n\
         \x20          converted worker/master files are byte-identical to what a\n\
         \x20          native run in the target format would have written"
    );
    ExitCode::FAILURE
}

/// Entry point for `graft-cli trace <subcommand>`.
pub fn run(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("dump") => dump(&args[1..]),
        Some("convert") => convert(&args[1..]),
        _ => usage(),
    }
}

fn open_meta(fs: &dyn FileSystem) -> Result<JobMeta, String> {
    let bytes = fs.read_all(&meta_path("")).map_err(|e| format!("cannot read meta.json: {e}"))?;
    serde_json::from_slice(&bytes).map_err(|e| format!("cannot parse meta.json: {e}"))
}

fn dump(args: &[String]) -> ExitCode {
    let Some(dir) = args.first() else { return usage() };
    let mut limit = usize::MAX;
    if let Some(pos) = args.iter().position(|a| a == "--limit") {
        match args.get(pos + 1).and_then(|v| v.parse().ok()) {
            Some(n) => limit = n,
            None => return usage(),
        }
    }
    let fs = match LocalFs::new(dir) {
        Ok(fs) => fs,
        Err(e) => {
            eprintln!("cannot open {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let meta = match open_meta(&fs) {
        Ok(meta) => meta,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!("computation : {}", meta.computation);
    println!("format      : {:?}", meta.codec());

    let mut channels: Vec<String> =
        (0..meta.num_workers).map(|w| worker_trace_path("", w)).collect();
    channels.push(master_trace_path(""));
    for path in channels {
        let name = path.trim_start_matches('/');
        let Ok(bytes) = fs.read_all(&path) else {
            println!("\n{name}: absent");
            continue;
        };
        println!("\n{name}: {} bytes", bytes.len());
        let shown = match meta.codec() {
            TraceCodec::Binary => dump_binary_channel(&bytes, name == "master.trace", limit),
            TraceCodec::JsonLines => dump_json_channel(&bytes, name == "master.trace", limit),
        };
        match shown {
            Ok(records) if records == limit => println!("  ... (limit reached)"),
            Ok(_) => {}
            Err(e) => {
                eprintln!("error in {name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Renders one binary channel; returns the number of records printed.
fn dump_binary_channel(bytes: &[u8], master: bool, limit: usize) -> Result<usize, String> {
    let mut scanner = FrameScanner::new(bytes);
    let mut shown = 0;
    while shown < limit {
        let frame = match scanner.next_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => break,
            Err(e) => return Err(format!("at byte {}: {e}", scanner.offset())),
        };
        let at = frame.start;
        let len = frame.end - frame.start;
        match frame.kind {
            FRAME_INDEX => {
                let index = index_record_from_payload(frame.payload)?;
                println!(
                    "  [{at:>8}] index   superstep={} records_before={} bytes_before={} ({len} bytes)",
                    index.superstep, index.records_before, index.bytes_before
                );
            }
            FRAME_VERTEX if !master => {
                let value = vertex_value_from_payload(frame.payload)?;
                println!(
                    "  [{at:>8}] vertex  superstep={} vertex={} ({len} bytes)",
                    render(value.get("superstep")),
                    render(value.get("vertex")),
                );
            }
            FRAME_MASTER if master => {
                let record: MasterTrace = graft_codec::from_slice(frame.payload)
                    .map_err(|e| format!("bad master frame at byte {at}: {e}"))?;
                println!(
                    "  [{at:>8}] master  superstep={} aggregators={} halted={} ({len} bytes)",
                    record.superstep,
                    record.aggregators.len(),
                    record.halted,
                );
            }
            other => return Err(format!("unexpected record kind {other} at byte {at}")),
        }
        shown += 1;
    }
    Ok(shown)
}

/// Renders one JSON-lines channel; returns the number of records printed.
fn dump_json_channel(bytes: &[u8], master: bool, limit: usize) -> Result<usize, String> {
    let mut shown = 0;
    let mut at = 0;
    for line in bytes.split(|b| *b == b'\n') {
        if line.is_empty() || shown >= limit {
            at += line.len() + 1;
            continue;
        }
        let value: serde_json::Value =
            serde_json::from_slice(line).map_err(|e| format!("bad JSON line at byte {at}: {e}"))?;
        if master {
            println!(
                "  [{at:>8}] master  superstep={} halted={} ({} bytes)",
                render(value.get("superstep")),
                render(value.get("halted")),
                line.len(),
            );
        } else {
            println!(
                "  [{at:>8}] vertex  superstep={} vertex={} ({} bytes)",
                render(value.get("superstep")),
                render(value.get("vertex")),
                line.len(),
            );
        }
        at += line.len() + 1;
        shown += 1;
    }
    Ok(shown)
}

fn render(value: Option<&serde_json::Value>) -> String {
    match value {
        Some(serde_json::Value::String(s)) => s.clone(),
        Some(v) => serde_json::to_string(v).unwrap_or_else(|_| "?".to_string()),
        None => "?".to_string(),
    }
}

fn convert(args: &[String]) -> ExitCode {
    let (Some(src), Some(dst)) = (args.first(), args.get(1)) else { return usage() };
    let target = match args.iter().position(|a| a == "--to") {
        Some(pos) => match args.get(pos + 1).map(String::as_str) {
            Some("json") => TraceCodec::JsonLines,
            Some("binary") => TraceCodec::Binary,
            _ => return usage(),
        },
        None => return usage(),
    };
    match convert_dir(src, dst, target) {
        Ok(()) => {
            println!("converted {src} -> {dst} ({target:?})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("convert failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn convert_dir(src: &str, dst: &str, target: TraceCodec) -> Result<(), String> {
    let src_fs = LocalFs::new(src).map_err(|e| format!("cannot open {src}: {e}"))?;
    let mut meta = open_meta(&src_fs)?;
    let source = meta.codec();
    if source == target {
        return Err(format!("{src} already uses {target:?}"));
    }
    let dst_fs = LocalFs::new(dst).map_err(|e| format!("cannot open {dst}: {e}"))?;

    // The rewritten meta.json records the new format both at the top
    // level (for readers) and in the analyzer's config facts (GA0019).
    meta.trace_format = Some(target);
    if let Some(facts) = &mut meta.facts {
        facts.trace_format = Some(
            match target {
                TraceCodec::JsonLines => "json",
                TraceCodec::Binary => "binary",
            }
            .to_string(),
        );
    }
    let meta_bytes = serde_json::to_vec_pretty(&meta).map_err(|e| e.to_string())?;
    dst_fs.write_all(&meta_path(""), &meta_bytes).map_err(|e| e.to_string())?;

    let mut converted = vec![meta_path("")];
    for worker in 0..meta.num_workers {
        let path = worker_trace_path("", worker);
        if let Ok(bytes) = src_fs.read_all(&path) {
            let out = convert_vertex_channel(source, target, &bytes)
                .map_err(|e| format!("{}: {e}", path.trim_start_matches('/')))?;
            dst_fs.write_all(&path, &out).map_err(|e| e.to_string())?;
            converted.push(path);
        }
    }
    let path = master_trace_path("");
    if let Ok(bytes) = src_fs.read_all(&path) {
        let records = decode_master_records(source, &bytes)?;
        let mut out = Vec::new();
        for record in &records {
            encode_record(target, record, &mut out)?;
        }
        dst_fs.write_all(&path, &out).map_err(|e| e.to_string())?;
        converted.push(path);
    }

    // Everything else travels unchanged: result.json, checkpoints, obs
    // artifacts, out-of-core spill files.
    let fs: Arc<dyn FileSystem> = Arc::new(src_fs);
    for file in fs.list_files_recursive("/").map_err(|e| e.to_string())? {
        if converted.contains(&file.path) {
            continue;
        }
        let bytes = fs.read_all(&file.path).map_err(|e| e.to_string())?;
        dst_fs.write_all(&file.path, &bytes).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Re-encodes one worker channel. Vertex records pass through the same
/// type-erased tree both formats are defined over, and index frames are
/// re-derived with the sink's rule — one per superstep transition, with
/// the counts as of the frame's own start — so a JSON→binary conversion
/// is byte-identical to a native binary capture.
fn convert_vertex_channel(
    source: TraceCodec,
    target: TraceCodec,
    bytes: &[u8],
) -> Result<Vec<u8>, String> {
    let records: Vec<WireVertexTrace> = match source {
        TraceCodec::JsonLines => bytes
            .split(|b| *b == b'\n')
            .filter(|line| !line.is_empty())
            .map(|line| serde_json::from_slice(line).map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()?,
        TraceCodec::Binary => {
            let mut scanner = FrameScanner::new(bytes);
            let mut records = Vec::new();
            loop {
                let frame = match scanner.next_frame() {
                    Ok(Some(frame)) => frame,
                    Ok(None) => break,
                    Err(e) => return Err(format!("at byte {}: {e}", scanner.offset())),
                };
                match frame.kind {
                    FRAME_INDEX => {
                        index_record_from_payload(frame.payload)?;
                    }
                    FRAME_VERTEX => {
                        let value = vertex_value_from_payload(frame.payload)?;
                        records.push(serde_json::from_value(&value).map_err(|e| e.to_string())?);
                    }
                    other => {
                        return Err(format!(
                            "unexpected record kind {other} at byte {}",
                            frame.start
                        ))
                    }
                }
            }
            records
        }
    };

    let mut out = Vec::new();
    let mut last_superstep = None;
    for (count, record) in records.iter().enumerate() {
        if target == TraceCodec::Binary && last_superstep != Some(record.superstep) {
            let index = IndexRecord {
                superstep: record.superstep,
                records_before: count as u64,
                bytes_before: out.len() as u64,
            };
            encode_index_frame(&index, &mut out)?;
            last_superstep = Some(record.superstep);
        }
        encode_record(target, record, &mut out)?;
    }
    Ok(out)
}
