//! `graft-cli run` — execute a built-in algorithm on the simulated HDFS
//! cluster with checkpoint/restart fault tolerance, optionally under a
//! deterministic fault plan.
//!
//! ```text
//! graft-cli run pagerank --vertices 64 --workers 4 \
//!     --checkpoint-every 2 --fault-plan "kill-worker:1@3; kill-datanode:0@2" \
//!     --export ./traces
//! ```
//!
//! The result checksum printed at the end is computed over the sorted
//! final vertex values bit-for-bit, so a faulted run that recovered
//! correctly prints exactly the same checksum as a failure-free run.

use std::process::ExitCode;
use std::sync::Arc;

use graft::{DebugConfig, GraftRunner};
use graft_algorithms::coloring::{GCValue, GraphColoring, GraphColoringMaster};
use graft_algorithms::components::ConnectedComponents;
use graft_algorithms::pagerank::PageRank;
use graft_algorithms::sssp::ShortestPaths;
use graft_dfs::{ClusterFs, ClusterFsConfig, FileSystem, LocalFs};
use graft_obs::Obs;
use graft_pregel::{Computation, FaultPlan, Graph, Value};

const TRACE_ROOT: &str = "/traces/run";

pub fn usage() -> ExitCode {
    eprintln!(
        "usage: graft-cli run <algorithm> [options]\n\
         algorithms:\n\
         \x20 pagerank             8 iterations of PageRank (damping 0.85)\n\
         \x20 sssp                 single-source shortest paths from vertex 0\n\
         \x20 components           connected components by min-label\n\
         \x20 coloring             greedy MIS-based graph coloring (master-driven)\n\
         options:\n\
         \x20 --vertices <n>       graph size (default 64)\n\
         \x20 --workers <n>        engine workers (default: GRAFT_NUM_WORKERS env var,\n\
         \x20                      else 4 — fixed, not hardware-dependent, so fault\n\
         \x20                      plans that name worker ids stay reproducible)\n\
         \x20 --checkpoint-every <k>  checkpoint every k supersteps (default 2; 0 disables)\n\
         \x20 --recovery-mode <m>  restart (default): rewind every partition to the\n\
         \x20                      last checkpoint; log-replay: confined recovery —\n\
         \x20                      replay only the failed partitions from logged\n\
         \x20                      messages while survivors keep their state\n\
         \x20 --fault-plan <spec>  inject faults, e.g. \"kill-worker:1@3; panic@5;\n\
         \x20                      kill-datanode:0@2\" (semicolon- or comma-separated)\n\
         \x20 --memory-budget <b>  cap resident partition + shuffle memory at <b> bytes;\n\
         \x20                      overflow spills to <trace_root>/ooc on the cluster and\n\
         \x20                      streams back on demand (results stay bit-identical)\n\
         \x20 --datanodes <n>      simulated HDFS datanodes (default 4)\n\
         \x20 --replication <r>    block replication factor (default 2)\n\
         \x20 --trace-format <f>   trace encoding: binary (default, framed graft-codec)\n\
         \x20                      or json (JSON lines; larger and slower to capture)\n\
         \x20 --export <dir>       copy the trace directory to a local directory\n\
         \x20 --metrics <dir>      record metrics + events and export them to a local\n\
         \x20                      directory (browse with `graft-cli profile <dir>`)\n\
         \x20 --logical-clock <ns> use a deterministic logical clock advancing <ns>\n\
         \x20                      per reading, so identical runs export identical bytes\n\
         \x20 --live               stream observability while running: append events to\n\
         \x20                      obs/events.jsonl and commit obs/live snapshots at\n\
         \x20                      superstep boundaries (watch with `graft-cli watch` or\n\
         \x20                      `graft-cli serve --follow`)\n\
         \x20 --pace-ms <ms>       sleep <ms> between supersteps (slows a run down so a\n\
         \x20                      live watcher can observe it in flight)\n\
         \x20 --straggler-threshold <x>  flag a worker as a straggler when its compute\n\
         \x20                      time exceeds <x> times the superstep median"
    );
    ExitCode::FAILURE
}

struct RunOptions {
    algorithm: String,
    vertices: u64,
    workers: usize,
    checkpoint_every: u64,
    recovery_mode: graft_pregel::RecoveryMode,
    fault_plan: Option<FaultPlan>,
    memory_budget: Option<u64>,
    trace_format: graft::TraceCodec,
    datanodes: usize,
    replication: usize,
    export: Option<String>,
    metrics: Option<String>,
    logical_clock: Option<u64>,
    live: bool,
    pace_ms: Option<u64>,
    straggler_threshold: Option<f64>,
}

fn parse_options(args: &[String]) -> Result<RunOptions, String> {
    let algorithm = args.first().ok_or("missing algorithm")?.clone();
    let mut options = RunOptions {
        algorithm,
        vertices: 64,
        workers: graft_pregel::EngineConfig::worker_override(
            std::env::var("GRAFT_NUM_WORKERS").ok().as_deref(),
        )
        .unwrap_or(4),
        checkpoint_every: 2,
        recovery_mode: graft_pregel::RecoveryMode::default(),
        fault_plan: None,
        memory_budget: None,
        trace_format: graft::TraceCodec::Binary,
        datanodes: 4,
        replication: 2,
        export: None,
        metrics: None,
        logical_clock: None,
        live: false,
        pace_ms: None,
        straggler_threshold: None,
    };
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        if flag == "--live" {
            options.live = true;
            continue;
        }
        let value = rest.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--vertices" => {
                options.vertices = value.parse().map_err(|_| format!("bad --vertices {value}"))?
            }
            "--workers" => {
                options.workers = value.parse().map_err(|_| format!("bad --workers {value}"))?
            }
            "--checkpoint-every" => {
                options.checkpoint_every =
                    value.parse().map_err(|_| format!("bad --checkpoint-every {value}"))?
            }
            "--recovery-mode" => {
                options.recovery_mode =
                    value.parse().map_err(|_| format!("bad --recovery-mode {value}"))?
            }
            "--fault-plan" => {
                options.fault_plan =
                    Some(value.parse().map_err(|e| format!("bad --fault-plan: {e}"))?)
            }
            "--memory-budget" => {
                options.memory_budget =
                    Some(value.parse().map_err(|_| format!("bad --memory-budget {value}"))?)
            }
            "--trace-format" => {
                options.trace_format = match value.as_str() {
                    "binary" => graft::TraceCodec::Binary,
                    "json" => graft::TraceCodec::JsonLines,
                    other => return Err(format!("bad --trace-format {other} (json|binary)")),
                }
            }
            "--datanodes" => {
                options.datanodes = value.parse().map_err(|_| format!("bad --datanodes {value}"))?
            }
            "--replication" => {
                options.replication =
                    value.parse().map_err(|_| format!("bad --replication {value}"))?
            }
            "--export" => options.export = Some(value.clone()),
            "--metrics" => options.metrics = Some(value.clone()),
            "--logical-clock" => {
                options.logical_clock =
                    Some(value.parse().map_err(|_| format!("bad --logical-clock {value}"))?)
            }
            "--pace-ms" => {
                options.pace_ms = Some(value.parse().map_err(|_| format!("bad --pace-ms {value}"))?)
            }
            "--straggler-threshold" => {
                options.straggler_threshold =
                    Some(value.parse().map_err(|_| format!("bad --straggler-threshold {value}"))?)
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(options)
}

/// Entry point for `graft-cli run <algorithm> [options]`.
pub fn run(args: &[String]) -> ExitCode {
    let options = match parse_options(args) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("error: {e}\n");
            return usage();
        }
    };
    match options.algorithm.as_str() {
        "pagerank" => {
            execute(&options, PageRank::new(8), pr_graph(options.vertices), |v| v.to_bits(), |r| r)
        }
        "sssp" => execute(
            &options,
            ShortestPaths::new(0),
            sssp_graph(options.vertices),
            |v| v.to_bits(),
            |r| r,
        ),
        "components" => {
            execute(&options, ConnectedComponents::new(), cc_graph(options.vertices), |v| *v, |r| r)
        }
        "coloring" => execute(
            &options,
            GraphColoring::new(7),
            gc_graph(options.vertices),
            // Colors are small integers; +1 keeps "uncolored" distinct.
            |v| v.color.map(|c| c + 1).unwrap_or(0),
            |r| r.with_master(GraphColoringMaster),
        ),
        other => {
            eprintln!("error: unknown algorithm {other}\n");
            usage()
        }
    }
}

/// Deterministic ring-with-chords topology, the same family the chaos
/// tests use.
fn build_graph<V: Value, E: Value>(
    n: u64,
    vertex: impl Fn(u64) -> V,
    edge: impl Fn(u64) -> E,
) -> Graph<u64, V, E> {
    let mut b = Graph::builder();
    for v in 0..n {
        b.add_vertex(v, vertex(v)).expect("distinct ids");
    }
    for v in 0..n {
        b.add_edge(v, (v + 1) % n, edge(v)).expect("valid edge");
        b.add_edge(v, (v * 7 + 3) % n, edge(v + 1)).expect("valid edge");
    }
    b.build().expect("valid graph")
}

fn pr_graph(n: u64) -> Graph<u64, f64, ()> {
    build_graph(n, |_| 0.0, |_| ())
}

fn sssp_graph(n: u64) -> Graph<u64, f64, f64> {
    build_graph(n, |_| f64::INFINITY, |v| 1.0 + (v % 5) as f64)
}

fn cc_graph(n: u64) -> Graph<u64, u64, ()> {
    build_graph(n, |v| v, |_| ())
}

fn gc_graph(n: u64) -> Graph<u64, GCValue, ()> {
    build_graph(n, |_| GCValue::default(), |_| ())
}

fn execute<C>(
    options: &RunOptions,
    computation: C,
    graph: Graph<C::Id, C::VValue, C::EValue>,
    value_bits: impl Fn(&C::VValue) -> u64,
    tune: impl FnOnce(GraftRunner<C>) -> GraftRunner<C>,
) -> ExitCode
where
    C: Computation<Id = u64>,
{
    let cluster = ClusterFs::new(ClusterFsConfig {
        num_datanodes: options.datanodes,
        replication: options.replication.min(options.datanodes),
        block_size: 4096,
    });
    let config =
        DebugConfig::<C>::builder().capture_all_active(true).codec(options.trace_format).build();
    // The registry, event log, and superstep profiler all hang off one
    // shared Obs; --logical-clock swaps its clock for a deterministic one.
    // --live needs an Obs too: the streaming flusher is fed from it.
    let obs =
        (options.metrics.is_some() || options.logical_clock.is_some() || options.live).then(|| {
            match options.logical_clock {
                Some(step_nanos) => Obs::deterministic(step_nanos),
                None => Obs::wall(),
            }
        });
    let mut runner = tune(
        GraftRunner::new(computation, config)
            .with_cluster(cluster.clone())
            .num_workers(options.workers),
    );
    if let Some(obs) = &obs {
        runner = runner.with_obs(Arc::clone(obs));
    }
    if options.live {
        runner = runner.live_flush(true);
    }
    if let Some(ms) = options.pace_ms {
        runner = runner.pace_supersteps(std::time::Duration::from_millis(ms));
    }
    if let Some(threshold) = options.straggler_threshold {
        runner = runner.straggler_threshold(threshold);
    }
    runner = runner.recovery_mode(options.recovery_mode);
    if options.checkpoint_every > 0 {
        runner = runner.checkpoint_every(options.checkpoint_every);
    }
    if let Some(plan) = &options.fault_plan {
        runner = runner.with_fault_plan(plan.clone());
    }
    if let Some(bytes) = options.memory_budget {
        runner = runner.memory_budget(bytes);
    }
    let run = match runner.run(graph, TRACE_ROOT) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("setup failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("algorithm   : {}", options.algorithm);
    println!("vertices    : {}", options.vertices);
    println!("workers     : {}", options.workers);
    println!(
        "checkpoints : {}",
        if options.checkpoint_every > 0 {
            format!(
                "every {} superstep(s), {} recovery",
                options.checkpoint_every,
                options.recovery_mode.as_str()
            )
        } else {
            "disabled".to_string()
        }
    );
    if let Some(plan) = &options.fault_plan {
        println!("fault plan  : {plan}");
    }
    if let Some(bytes) = options.memory_budget {
        println!("memory      : {bytes} byte budget (overflow spills out of core)");
    }
    let stats = cluster.stats();
    println!(
        "cluster     : {}/{} datanodes live, {} blocks, {} under-replicated",
        stats.live_datanodes, stats.total_datanodes, stats.blocks, stats.under_replicated
    );
    println!("captures    : {}", run.captures);

    match &run.outcome {
        Ok(outcome) => {
            // JobStats renders its own one-line summary (counts plus the
            // p50/p95/max superstep wall-time spread).
            println!("stats       : {}", outcome.stats);
            println!("recoveries  : {}", outcome.stats.recoveries);
            println!("halt reason : {:?}", outcome.halt_reason);
            let checksum =
                checksum(outcome.graph.sorted_values().iter().map(|(id, v)| (*id, value_bits(v))));
            println!("result checksum: {checksum:016x}");
        }
        Err(e) => {
            eprintln!("job FAILED  : {e}");
            return ExitCode::FAILURE;
        }
    }

    if let (Some(obs), Some(dir)) = (&obs, &options.metrics) {
        if let Err(e) = export_metrics(obs, dir) {
            eprintln!("metrics export failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics exported to {dir}");
    }
    if let Some(dir) = &options.export {
        if let Err(e) = export_traces(&cluster, dir) {
            eprintln!("export failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("traces exported to {dir}");
    }
    ExitCode::SUCCESS
}

/// Writes `events.jsonl`, `metrics.prom`, and `metrics.json` to a local
/// directory, ready for `graft-cli profile <dir>`.
fn export_metrics(obs: &Obs, dir: &str) -> Result<(), String> {
    let local = LocalFs::new(dir).map_err(|e| e.to_string())?;
    obs.write_artifacts(&local, "/").map_err(|e| e.to_string())
}

/// FNV-1a over the (id, value-bits) stream: stable across runs, so a
/// recovered run's checksum is comparable to a clean run's.
fn checksum(values: impl Iterator<Item = (u64, u64)>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (id, bits) in values {
        mix(id);
        mix(bits);
    }
    hash
}

/// Copies the trace directory (including checkpoints) from the cluster to
/// a local directory, so the traces can be browsed with the other
/// `graft-cli` commands.
fn export_traces(cluster: &ClusterFs, dir: &str) -> Result<(), String> {
    let fs: Arc<dyn FileSystem> = Arc::new(cluster.clone());
    let files = fs.list_files_recursive(TRACE_ROOT).map_err(|e| e.to_string())?;
    for file in files {
        let relative = file.path.strip_prefix(TRACE_ROOT).unwrap_or(&file.path);
        let target = std::path::Path::new(dir).join(relative.trim_start_matches('/'));
        if let Some(parent) = target.parent() {
            std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
        }
        let bytes = fs.read_all(&file.path).map_err(|e| e.to_string())?;
        std::fs::write(&target, bytes).map_err(|e| e.to_string())?;
    }
    Ok(())
}
