//! `graft-cli serve` — start the `graft-server` HTTP debug server over a
//! directory of trace directories.
//!
//! ```text
//! graft-cli serve --trace-root ./traces [--port 7878] [--workers 8] \
//!     [--index-capacity 64] [--follow]
//! ```
//!
//! The trace root holds one subdirectory per job (each with its own
//! `meta.json`); every job becomes browsable at `/jobs/<dirname>`.
//! Response bodies are the `graft::views::json` documents — identical
//! bytes to `graft-cli <dir> <view> --format json`.
//!
//! With `--follow` the server also monitors *in-flight* jobs (runs
//! started with `graft-cli run --live` writing into the same root):
//! `/jobs/{id}/live`, `/jobs/{id}/live/metrics`, and
//! `/jobs/{id}/live/timeline` serve the streaming observability
//! channels, and the standard views render the watermark-covered
//! superstep prefix while the job still runs.

use std::process::ExitCode;
use std::sync::Arc;

use graft_dfs::{FileSystem, LocalFs};
use graft_obs::Obs;
use graft_server::server::{serve, ServerConfig};

pub fn usage() -> ExitCode {
    eprintln!(
        "usage: graft-cli serve --trace-root <dir> [options]\n\
         options:\n\
         \x20 --port <p>            TCP port to bind on 127.0.0.1 (default 7878)\n\
         \x20 --workers <n>         connection worker threads (default 8)\n\
         \x20 --index-capacity <n>  parsed jobs kept in the trace index (default 64)\n\
         \x20 --follow              serve in-flight jobs too: live monitoring endpoints\n\
         \x20                       plus partial views of completed supersteps"
    );
    ExitCode::FAILURE
}

pub fn run(args: &[String]) -> ExitCode {
    let mut trace_root: Option<String> = None;
    let mut port: u16 = 7878;
    let mut workers: usize = 8;
    let mut index_capacity: usize = 64;
    let mut follow = false;

    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if flag == "--follow" {
            follow = true;
            continue;
        }
        let Some(value) = iter.next() else {
            eprintln!("error: missing value for {flag}\n");
            return usage();
        };
        let parsed = match flag.as_str() {
            "--trace-root" => {
                trace_root = Some(value.clone());
                Ok(())
            }
            "--port" => value.parse().map(|p| port = p).map_err(|_| ()),
            "--workers" => value.parse().map(|w| workers = w).map_err(|_| ()),
            "--index-capacity" => value.parse().map(|c| index_capacity = c).map_err(|_| ()),
            other => {
                eprintln!("error: unknown option {other}\n");
                return usage();
            }
        };
        if parsed.is_err() {
            eprintln!("error: invalid value for {flag}: {value}\n");
            return usage();
        }
    }
    let Some(trace_root) = trace_root else {
        eprintln!("error: --trace-root is required\n");
        return usage();
    };

    let fs: Arc<dyn FileSystem> = match LocalFs::new(&trace_root) {
        Ok(fs) => Arc::new(fs),
        Err(e) => {
            eprintln!("cannot open {trace_root}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = ServerConfig {
        addr: std::net::SocketAddr::from(([127, 0, 0, 1], port)),
        workers,
        index_capacity,
        follow,
        ..ServerConfig::default()
    };
    // LocalFs roots all paths at the trace root, so inside the fs the
    // jobs live directly under "/".
    let handle = match serve(fs, "/", Obs::wall(), config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("cannot bind 127.0.0.1:{port}: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("graft-server: serving {trace_root} at http://{}", handle.addr());
    if follow {
        println!("follow mode: in-flight jobs are served up to their watermark");
    }
    println!("endpoints:");
    let mut endpoints = vec![
        "/jobs",
        "/jobs/{id}",
        "/jobs/{id}/supersteps",
        "/jobs/{id}/violations",
        "/jobs/{id}/ss/{n}/node-link",
        "/jobs/{id}/ss/{n}/tabular?q=&page=&per_page=",
        "/jobs/{id}/ss/{n}/violations",
        "/jobs/{id}/repro/{vertex}/{ss}",
        "/metrics",
    ];
    if follow {
        endpoints.extend([
            "/jobs/{id}/live?after_seq=",
            "/jobs/{id}/live/metrics",
            "/jobs/{id}/live/timeline",
        ]);
    }
    for endpoint in endpoints {
        println!("  GET {endpoint}");
    }
    println!("press Ctrl-C to stop");

    // Serve until killed: the accept loop and workers are background
    // threads, so park the main thread indefinitely.
    loop {
        std::thread::park();
    }
}
