//! `graft-cli profile` — the superstep profiler over an exported
//! observability directory (`events.jsonl` + `metrics.json`, as written
//! by `graft-cli run --metrics <dir>` or `GraftRunner::with_obs`).
//!
//! ```text
//! graft-cli profile <obs-dir>
//! graft-cli profile <obs-dir> --export json
//! graft-cli profile <obs-dir> --top 5
//! ```
//!
//! Renders the ASCII superstep timeline, the phase-breakdown hotspot
//! table (compute vs delivery vs checkpoint vs DFS I/O), and the top-k
//! compute-skew table. Exits nonzero when the event log is missing or
//! malformed, so CI can gate on trace integrity. An event log still
//! being streamed by a live run may end in a torn line; that renders
//! the partial timeline with a warning instead of failing.

use std::path::Path;
use std::process::ExitCode;

use graft_obs::{
    from_json, parse_jsonl_lenient, MetricsSnapshot, Profile, EVENTS_FILE, METRICS_JSON_FILE,
};

pub fn usage() -> ExitCode {
    eprintln!(
        "usage: graft-cli profile <obs-dir> [options]\n\
         options:\n\
         \x20 --export json        print the folded profile as JSON instead of tables\n\
         \x20 --top <k>            rows in the compute-skew table (default 10)"
    );
    ExitCode::FAILURE
}

struct ProfileOptions {
    dir: String,
    export_json: bool,
    top: usize,
}

fn parse_options(args: &[String]) -> Result<ProfileOptions, String> {
    let dir = args.first().ok_or("missing <obs-dir>")?.clone();
    let mut options = ProfileOptions { dir, export_json: false, top: 10 };
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        let value = rest.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--export" => match value.as_str() {
                "json" => options.export_json = true,
                other => return Err(format!("unknown --export format {other}")),
            },
            "--top" => options.top = value.parse().map_err(|_| format!("bad --top {value}"))?,
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(options)
}

/// Entry point for `graft-cli profile <obs-dir> [options]`.
pub fn run(args: &[String]) -> ExitCode {
    let options = match parse_options(args) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("error: {e}\n");
            return usage();
        }
    };
    match profile(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn profile(options: &ProfileOptions) -> Result<(), String> {
    let events_path = Path::new(&options.dir).join(EVENTS_FILE);
    let events_text = std::fs::read_to_string(&events_path)
        .map_err(|e| format!("cannot read {}: {e}", events_path.display()))?;
    // Lenient parse: a log caught mid-append (an in-flight job's
    // streaming flush) may end in a torn line. The complete prefix still
    // profiles; the tear is a warning, not an error — only mid-file
    // corruption fails.
    let (events, torn) = parse_jsonl_lenient(&events_text)
        .map_err(|e| format!("malformed {}: {e}", events_path.display()))?;
    if let Some(warning) = torn {
        eprintln!("warning: {}: {warning}; rendering the partial timeline", events_path.display());
    }

    // The metrics snapshot is optional (it only feeds the skew table),
    // but when present it must parse — a corrupt export is a bug.
    let metrics_path = Path::new(&options.dir).join(METRICS_JSON_FILE);
    let metrics: Option<MetricsSnapshot> = match std::fs::read_to_string(&metrics_path) {
        Ok(text) => Some(
            from_json(&text).map_err(|e| format!("malformed {}: {e}", metrics_path.display()))?,
        ),
        Err(_) => None,
    };

    let profile = Profile::build(&events, metrics.as_ref())?;
    if options.export_json {
        print!("{}", profile.to_json());
        return Ok(());
    }
    print!("{}", profile.render_timeline());
    println!();
    print!("{}", profile.render_hotspots());
    let skew = profile.render_skew(options.top);
    if !skew.is_empty() {
        println!();
        print!("{skew}");
    }
    Ok(())
}
