//! `graft-cli watch` — a terminal live-monitoring view over an
//! in-flight job's streaming observability channel.
//!
//! ```text
//! graft-cli watch <trace-dir> [--interval-ms 500] [--frames 0]
//! ```
//!
//! Polls `<trace-dir>/obs` for committed live snapshots (written by a
//! run with live flushing enabled, e.g. `graft-cli run --live`) and the
//! append-only event log, and re-renders a status frame every time the
//! snapshot sequence advances: status, watermark, per-worker progress,
//! detected stragglers, and the superstep timeline folded from the
//! events seen so far. Exits when the job reaches a terminal status —
//! zero for `finished`, nonzero for `failed`.

use std::process::ExitCode;
use std::sync::Arc;

use graft_dfs::{FileSystem, FsError, LocalFs};
use graft_obs::{
    fmt_nanos, latest_snapshot, parse_jsonl_lenient, Event, LiveSnapshot, Profile, EVENTS_FILE,
    STATUS_FAILED, STATUS_RUNNING,
};

pub fn usage() -> ExitCode {
    eprintln!(
        "usage: graft-cli watch <trace-dir> [options]\n\
         options:\n\
         \x20 --interval-ms <n>    poll interval in milliseconds (default 500)\n\
         \x20 --frames <k>         stop after rendering k frames (default 0 = run\n\
         \x20                      until the job reaches a terminal status)"
    );
    ExitCode::FAILURE
}

struct WatchOptions {
    dir: String,
    interval_ms: u64,
    frames: usize,
}

fn parse_options(args: &[String]) -> Result<WatchOptions, String> {
    let dir = args.first().ok_or("missing <trace-dir>")?.clone();
    let mut options = WatchOptions { dir, interval_ms: 500, frames: 0 };
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        let value = rest.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--interval-ms" => {
                options.interval_ms =
                    value.parse().map_err(|_| format!("bad --interval-ms {value}"))?
            }
            "--frames" => {
                options.frames = value.parse().map_err(|_| format!("bad --frames {value}"))?
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(options)
}

/// Entry point for `graft-cli watch <trace-dir> [options]`.
pub fn run(args: &[String]) -> ExitCode {
    let options = match parse_options(args) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("error: {e}\n");
            return usage();
        }
    };
    let fs: Arc<dyn FileSystem> = match LocalFs::new(&options.dir) {
        Ok(fs) => Arc::new(fs),
        Err(e) => {
            eprintln!("cannot open {}: {e}", options.dir);
            return ExitCode::FAILURE;
        }
    };
    watch(fs.as_ref(), &options)
}

fn watch(fs: &dyn FileSystem, options: &WatchOptions) -> ExitCode {
    let interval = std::time::Duration::from_millis(options.interval_ms.max(1));
    let mut last_seq = 0u64;
    let mut rendered = 0usize;
    let mut waiting_announced = false;
    loop {
        let snapshot = match latest_snapshot(fs, "/obs") {
            Ok(snapshot) => snapshot,
            Err(e) => {
                eprintln!("cannot read live snapshots: {e}");
                return ExitCode::FAILURE;
            }
        };
        match snapshot {
            None => {
                // Not an error: the run may not have committed its first
                // snapshot yet (or live flushing is disabled).
                if !waiting_announced {
                    println!("waiting for the first live snapshot under {}/obs ...", options.dir);
                    waiting_announced = true;
                }
            }
            Some(snapshot) if snapshot.seq > last_seq => {
                last_seq = snapshot.seq;
                let events = match read_events(fs) {
                    Ok(events) => events,
                    Err(e) => {
                        eprintln!("cannot read event log: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                print!("{}", render_frame(&snapshot, &events));
                rendered += 1;
                if snapshot.status != STATUS_RUNNING {
                    return if snapshot.status == STATUS_FAILED {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    };
                }
                if options.frames > 0 && rendered >= options.frames {
                    return ExitCode::SUCCESS;
                }
            }
            Some(_) => {}
        }
        std::thread::sleep(interval);
    }
}

/// Reads the append-only event log leniently: a missing file is an empty
/// log (the run has not emitted yet) and a torn final line — the live
/// writer caught mid-append — is silently dropped.
fn read_events(fs: &dyn FileSystem) -> Result<Vec<Event>, String> {
    let bytes = match fs.read_all(&format!("/obs/{EVENTS_FILE}")) {
        Ok(bytes) => bytes,
        Err(FsError::NotFound(_)) => return Ok(Vec::new()),
        Err(e) => return Err(e.to_string()),
    };
    let text = String::from_utf8(bytes).map_err(|e| e.to_string())?;
    let (events, _torn) = parse_jsonl_lenient(&text)?;
    Ok(events)
}

/// Renders one monitoring frame from a committed snapshot and the event
/// log seen so far. Pure: all I/O happens in the caller.
fn render_frame(snapshot: &LiveSnapshot, events: &[Event]) -> String {
    let mut out = String::new();
    out.push_str(&format!("── live snapshot #{} ──\n", snapshot.seq));
    out.push_str(&format!("status      : {}\n", snapshot.status));
    match snapshot.superstep {
        Some(superstep) => out.push_str(&format!("superstep   : {superstep}\n")),
        None => out.push_str("superstep   : (not started)\n"),
    }
    match snapshot.watermark {
        Some(watermark) => out.push_str(&format!("watermark   : {watermark} (complete)\n")),
        None => out.push_str("watermark   : none yet\n"),
    }
    out.push_str(&format!("recoveries  : {}\n", snapshot.recoveries));
    if !snapshot.workers.is_empty() {
        out.push_str("workers:\n");
        for worker in &snapshot.workers {
            out.push_str(&format!(
                "  worker {:<3} {:>8} compute calls  {:>10} compute\n",
                worker.worker,
                worker.compute_calls,
                fmt_nanos(worker.compute_nanos),
            ));
        }
    }
    if !snapshot.stragglers.is_empty() {
        out.push_str("stragglers:\n");
        for straggler in &snapshot.stragglers {
            out.push_str(&format!(
                "  superstep {:>4}: worker {} took {} (median {})\n",
                straggler.superstep,
                straggler.worker,
                fmt_nanos(straggler.nanos),
                fmt_nanos(straggler.median_nanos),
            ));
        }
    }
    // The timeline folds from whatever prefix of the event log exists;
    // an empty log (snapshot committed before the first superstep ended)
    // just means no timeline yet.
    if let Ok(profile) = Profile::build(events, None) {
        out.push('\n');
        out.push_str(&profile.render_timeline());
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_obs::{StragglerRecord, WorkerProgress, STATUS_FINISHED};

    fn snapshot() -> LiveSnapshot {
        LiveSnapshot {
            seq: 4,
            status: STATUS_RUNNING.to_string(),
            superstep: Some(3),
            watermark: Some(2),
            recoveries: 1,
            workers: vec![
                WorkerProgress { worker: 0, compute_calls: 120, compute_nanos: 1_500_000 },
                WorkerProgress { worker: 1, compute_calls: 118, compute_nanos: 9_000_000 },
            ],
            stragglers: vec![StragglerRecord {
                superstep: 2,
                worker: 1,
                nanos: 9_000_000,
                median_nanos: 1_500_000,
            }],
            ..LiveSnapshot::default()
        }
    }

    #[test]
    fn frames_carry_status_watermark_workers_and_stragglers() {
        let frame = render_frame(&snapshot(), &[]);
        assert!(frame.contains("live snapshot #4"), "{frame}");
        assert!(frame.contains("status      : running"), "{frame}");
        assert!(frame.contains("superstep   : 3"), "{frame}");
        assert!(frame.contains("watermark   : 2 (complete)"), "{frame}");
        assert!(frame.contains("recoveries  : 1"), "{frame}");
        assert!(frame.contains("worker 0"), "{frame}");
        assert!(frame.contains("120 compute calls"), "{frame}");
        assert!(frame.contains("superstep    2: worker 1 took"), "{frame}");
        // No events yet: the frame renders without a timeline instead of
        // erroring.
        assert!(!frame.contains("Superstep timeline"), "{frame}");
    }

    #[test]
    fn frames_fold_a_timeline_once_events_exist() {
        let end = Event {
            ts: 2_000_000,
            kind: "superstep".to_string(),
            edge: EDGE_END.to_string(),
            superstep: Some(0),
            dur: Some(2_000_000),
            ..Event::default()
        };
        let frame = render_frame(&snapshot(), &[end]);
        assert!(frame.contains("Superstep timeline"), "{frame}");
    }

    #[test]
    fn terminal_and_empty_snapshots_render() {
        let frame = render_frame(
            &LiveSnapshot { seq: 1, status: STATUS_FINISHED.to_string(), ..Default::default() },
            &[],
        );
        assert!(frame.contains("status      : finished"), "{frame}");
        assert!(frame.contains("superstep   : (not started)"), "{frame}");
        assert!(frame.contains("watermark   : none yet"), "{frame}");
    }

    use graft_obs::EDGE_END;
}
