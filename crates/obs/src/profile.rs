//! The superstep profiler: folds an event log (plus an optional metrics
//! snapshot) into a per-superstep phase breakdown, and renders it as an
//! ASCII timeline, a hotspot table, and a compute-skew table.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::events::Event;
use crate::registry::{MetricsSnapshot, VertexCost};

/// Phase keys in display order. Each maps an event kind to the label the
/// renderers use and the fill character of its timeline segment.
const PHASES: &[(&str, &str, char)] = &[
    ("phase.master", "master compute", 'M'),
    ("phase.compute", "vertex compute", 'C'),
    ("phase.aggregate", "aggregator merge", 'A'),
    ("phase.delivery", "message delivery", 'D'),
    ("phase.mutate", "topology mutations", 'U'),
    ("checkpoint.write", "checkpoint write (DFS)", 'K'),
    ("trace.flush", "trace flush (DFS)", 'F'),
];

/// Width of the timeline bar for the longest superstep.
const BAR_WIDTH: usize = 40;

/// Phase durations for one superstep (accumulated across replays).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuperstepProfile {
    /// The superstep number.
    pub superstep: u64,
    /// Times the superstep executed (>1 after a checkpoint replay).
    pub executions: u64,
    /// Total superstep span duration in nanoseconds.
    pub wall_nanos: u64,
    /// Nanoseconds per phase, keyed by event kind (`phase.compute`, ...).
    pub phase_nanos: BTreeMap<String, u64>,
    /// Messages sent during the superstep (from the end-event attrs).
    pub messages_sent: u64,
    /// Vertices still active after the superstep.
    pub active_vertices: u64,
}

/// One row of the hotspot table.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTotal {
    /// Event kind, e.g. `phase.compute`.
    pub kind: String,
    /// Human label, e.g. `vertex compute`.
    pub label: String,
    /// Total nanoseconds across all supersteps.
    pub nanos: u64,
    /// Number of spans folded in.
    pub spans: u64,
}

/// One checkpoint-restore span.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RestoreSpan {
    /// Timestamp of the restore's end event.
    pub ts: u64,
    /// Duration of the restore in nanoseconds.
    pub nanos: u64,
    /// Superstep execution resumed from.
    pub resumed_superstep: u64,
}

/// A fully folded profile, ready for rendering or JSON export.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profile {
    /// Whole-job duration (the `job` span when present, else the sum of
    /// superstep walls).
    pub total_nanos: u64,
    /// Checkpoint restores performed.
    pub recoveries: u64,
    /// Per-superstep breakdown, ordered by superstep.
    pub supersteps: Vec<SuperstepProfile>,
    /// Per-phase totals, costliest first.
    pub phases: Vec<PhaseTotal>,
    /// Checkpoint-restore spans, in event order.
    pub restores: Vec<RestoreSpan>,
    /// Costliest vertices by compute time (empty without a metrics
    /// snapshot).
    pub top_vertices: Vec<VertexCost>,
}

impl Profile {
    /// Folds an event log into a profile. Fails on an empty log.
    pub fn build(events: &[Event], metrics: Option<&MetricsSnapshot>) -> Result<Profile, String> {
        if events.is_empty() {
            return Err("event log contains no events".to_string());
        }
        let mut steps: BTreeMap<u64, SuperstepProfile> = BTreeMap::new();
        let mut phase_totals: BTreeMap<&str, PhaseTotal> = BTreeMap::new();
        let mut restores = Vec::new();
        let mut recoveries = 0u64;
        let mut job_nanos = None;

        for event in events {
            if event.is_end("superstep") {
                let ss = event.superstep.unwrap_or(0);
                let entry = steps.entry(ss).or_insert_with(|| SuperstepProfile {
                    superstep: ss,
                    ..SuperstepProfile::default()
                });
                entry.executions += 1;
                entry.wall_nanos += event.dur.unwrap_or(0);
                // Replays overwrite the counter attrs: the last execution
                // is the one whose results the job kept.
                entry.messages_sent = attr_u64(event, "messages_sent");
                entry.active_vertices = attr_u64(event, "active_vertices");
                continue;
            }
            if let Some((kind, label, _)) = PHASES.iter().find(|(kind, _, _)| event.is_end(kind)) {
                let dur = event.dur.unwrap_or(0);
                let ss = event.superstep.unwrap_or(0);
                let entry = steps.entry(ss).or_insert_with(|| SuperstepProfile {
                    superstep: ss,
                    ..SuperstepProfile::default()
                });
                *entry.phase_nanos.entry(kind.to_string()).or_insert(0) += dur;
                let total = phase_totals.entry(kind).or_insert_with(|| PhaseTotal {
                    kind: kind.to_string(),
                    label: label.to_string(),
                    ..PhaseTotal::default()
                });
                total.nanos += dur;
                total.spans += 1;
                continue;
            }
            if event.is_end("checkpoint.restore") {
                restores.push(RestoreSpan {
                    ts: event.ts,
                    nanos: event.dur.unwrap_or(0),
                    resumed_superstep: attr_u64(event, "resumed_superstep"),
                });
                continue;
            }
            if event.is_point("recovery") {
                recoveries += 1;
                continue;
            }
            if event.is_end("job") {
                job_nanos = event.dur;
            }
        }

        let supersteps: Vec<SuperstepProfile> = steps.into_values().collect();
        let total_nanos =
            job_nanos.unwrap_or_else(|| supersteps.iter().map(|s| s.wall_nanos).sum());
        let mut phases: Vec<PhaseTotal> = phase_totals.into_values().collect();
        phases.sort_by(|a, b| b.nanos.cmp(&a.nanos).then_with(|| a.kind.cmp(&b.kind)));
        let top_vertices = metrics.map(|m| m.top_vertices.clone()).unwrap_or_default();

        Ok(Profile { total_nanos, recoveries, supersteps, phases, restores, top_vertices })
    }

    /// The ASCII superstep timeline.
    pub fn render_timeline(&self) -> String {
        let mut out = String::new();
        out.push_str("Superstep timeline (M master, C compute, A aggregate, D delivery,\n");
        out.push_str("                    U mutations, K checkpoint, F trace flush)\n");
        let max_wall = self.supersteps.iter().map(|s| s.wall_nanos).max().unwrap_or(0).max(1);
        out.push_str(&format!(
            "{:>4}  {:>10}  {:<w$}  {:>10}  {:>8}\n",
            "step",
            "wall",
            "phases",
            "msgs sent",
            "active",
            w = BAR_WIDTH + 2
        ));
        for step in &self.supersteps {
            let width = ((step.wall_nanos as f64 / max_wall as f64) * BAR_WIDTH as f64)
                .round()
                .max(1.0) as usize;
            let mut bar = String::new();
            for (kind, _, fill) in PHASES {
                let nanos = step.phase_nanos.get(*kind).copied().unwrap_or(0);
                let chars = ((nanos as f64 / step.wall_nanos.max(1) as f64) * width as f64).round()
                    as usize;
                let remaining = width.saturating_sub(bar.len());
                bar.extend(std::iter::repeat_n(*fill, chars.min(remaining)));
            }
            while bar.len() < width {
                bar.push('.');
            }
            let replay = if step.executions > 1 {
                format!("  (x{})", step.executions)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{:>4}  {:>10}  |{:<w$}|  {:>10}  {:>8}{}\n",
                step.superstep,
                fmt_nanos(step.wall_nanos),
                bar,
                step.messages_sent,
                step.active_vertices,
                replay,
                w = BAR_WIDTH
            ));
        }
        for restore in &self.restores {
            out.push_str(&format!(
                "      restore: rewound to superstep {} in {}\n",
                restore.resumed_superstep,
                fmt_nanos(restore.nanos)
            ));
        }
        out
    }

    /// The phase-breakdown hotspot table.
    pub fn render_hotspots(&self) -> String {
        let mut out = String::new();
        out.push_str("Phase hotspots\n");
        out.push_str(&format!(
            "{:<24}  {:>10}  {:>6}  {:>6}\n",
            "phase", "total", "share", "spans"
        ));
        let accounted: u64 = self.phases.iter().map(|p| p.nanos).sum::<u64>().max(1);
        for phase in &self.phases {
            out.push_str(&format!(
                "{:<24}  {:>10}  {:>5.1}%  {:>6}\n",
                phase.label,
                fmt_nanos(phase.nanos),
                phase.nanos as f64 * 100.0 / accounted as f64,
                phase.spans
            ));
        }
        out.push_str(&format!(
            "job total {} across {} superstep(s), {} recover{}\n",
            fmt_nanos(self.total_nanos),
            self.supersteps.len(),
            self.recoveries,
            if self.recoveries == 1 { "y" } else { "ies" }
        ));
        out
    }

    /// The top-`k` compute-skew table (empty string without vertex data).
    pub fn render_skew(&self, k: usize) -> String {
        if self.top_vertices.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        out.push_str(&format!("Top {} vertices by compute time\n", k.min(self.top_vertices.len())));
        out.push_str(&format!(
            "{:>4}  {:<16}  {:>10}  {:>8}  {:>10}\n",
            "rank", "vertex", "total", "calls", "per call"
        ));
        for (rank, vertex) in self.top_vertices.iter().take(k).enumerate() {
            out.push_str(&format!(
                "{:>4}  {:<16}  {:>10}  {:>8}  {:>10}\n",
                rank + 1,
                vertex.vertex,
                fmt_nanos(vertex.nanos),
                vertex.calls,
                fmt_nanos(vertex.nanos / vertex.calls.max(1))
            ));
        }
        out
    }

    /// The profile as pretty JSON with a trailing newline.
    pub fn to_json(&self) -> String {
        let mut out =
            serde_json::to_string_pretty(self).expect("profile serialization is infallible");
        out.push('\n');
        out
    }
}

fn attr_u64(event: &Event, key: &str) -> u64 {
    event.attrs.get(key).and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// Formats nanoseconds with a unit matched to magnitude.
pub fn fmt_nanos(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}us", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EDGE_END, EDGE_POINT};

    fn end(kind: &str, ss: u64, dur: u64) -> Event {
        Event {
            ts: 0,
            kind: kind.to_string(),
            edge: EDGE_END.to_string(),
            superstep: Some(ss),
            worker: None,
            dur: Some(dur),
            attrs: BTreeMap::new(),
        }
    }

    #[test]
    fn build_folds_phases_per_superstep() {
        let mut superstep_end = end("superstep", 0, 100);
        superstep_end.attrs.insert("messages_sent".into(), "7".into());
        superstep_end.attrs.insert("active_vertices".into(), "3".into());
        let events = vec![
            end("phase.compute", 0, 60),
            end("phase.delivery", 0, 30),
            superstep_end,
            end("phase.compute", 1, 10),
            end("superstep", 1, 15),
        ];
        let profile = Profile::build(&events, None).unwrap();
        assert_eq!(profile.supersteps.len(), 2);
        assert_eq!(profile.supersteps[0].wall_nanos, 100);
        assert_eq!(profile.supersteps[0].messages_sent, 7);
        assert_eq!(profile.supersteps[0].phase_nanos["phase.compute"], 60);
        assert_eq!(profile.phases[0].kind, "phase.compute");
        assert_eq!(profile.phases[0].nanos, 70);
        assert_eq!(profile.total_nanos, 115);
        let timeline = profile.render_timeline();
        assert!(timeline.contains("|"), "timeline has bars: {timeline}");
        let hotspots = profile.render_hotspots();
        assert!(hotspots.contains("vertex compute"));
    }

    #[test]
    fn replays_and_restores_are_visible() {
        let mut restore = end("checkpoint.restore", 0, 50);
        restore.superstep = None;
        restore.attrs.insert("resumed_superstep".into(), "1".into());
        let recovery = Event {
            ts: 0,
            kind: "recovery".to_string(),
            edge: EDGE_POINT.to_string(),
            superstep: None,
            worker: None,
            dur: None,
            attrs: BTreeMap::new(),
        };
        let events = vec![end("superstep", 1, 10), restore, recovery, end("superstep", 1, 12)];
        let profile = Profile::build(&events, None).unwrap();
        assert_eq!(profile.recoveries, 1);
        assert_eq!(profile.restores.len(), 1);
        assert_eq!(profile.restores[0].resumed_superstep, 1);
        assert_eq!(profile.supersteps[0].executions, 2);
        assert!(profile.render_timeline().contains("(x2)"));
    }

    #[test]
    fn empty_log_is_an_error() {
        assert!(Profile::build(&[], None).is_err());
    }

    #[test]
    fn fmt_nanos_units() {
        assert_eq!(fmt_nanos(500), "500ns");
        assert_eq!(fmt_nanos(1_500), "1.5us");
        assert_eq!(fmt_nanos(2_500_000), "2.50ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.00s");
    }
}
