//! Export formats for a [`MetricsSnapshot`]: Prometheus-style text
//! exposition and pretty JSON. Both are deterministic — the snapshot is
//! sorted and every map underneath serializes in key order.

use std::fmt::Write as _;

use crate::registry::MetricsSnapshot;

/// Prefix applied to every metric name in the Prometheus exposition.
const PROM_PREFIX: &str = "graft_";

/// Renders the snapshot in the Prometheus text exposition format.
///
/// Counters get a `_total`-free name as recorded (names already carry
/// their unit/kind suffix); histograms expand to `_bucket`/`_sum`/
/// `_count` series with an explicit `+Inf` bucket.
pub fn to_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_typed = String::new();

    for counter in &snapshot.counters {
        type_line(&mut out, &mut last_typed, &counter.name, "counter");
        let _ = writeln!(
            out,
            "{PROM_PREFIX}{}{} {}",
            counter.name,
            labels(counter.worker, counter.superstep),
            counter.value
        );
    }
    last_typed.clear();
    for gauge in &snapshot.gauges {
        type_line(&mut out, &mut last_typed, &gauge.name, "gauge");
        let _ = writeln!(
            out,
            "{PROM_PREFIX}{}{} {}",
            gauge.name,
            labels(gauge.worker, gauge.superstep),
            gauge.value
        );
    }
    last_typed.clear();
    for histogram in &snapshot.histograms {
        type_line(&mut out, &mut last_typed, &histogram.name, "histogram");
        let scope_labels = labels_vec(histogram.worker, histogram.superstep);
        let mut cumulative = 0u64;
        for (bound, count) in histogram.data.bounds.iter().zip(&histogram.data.counts) {
            cumulative += count;
            let mut with_le = scope_labels.clone();
            with_le.push(format!("le=\"{bound}\""));
            let _ = writeln!(
                out,
                "{PROM_PREFIX}{}_bucket{{{}}} {}",
                histogram.name,
                with_le.join(","),
                cumulative
            );
        }
        let mut with_inf = scope_labels.clone();
        with_inf.push("le=\"+Inf\"".to_string());
        let _ = writeln!(
            out,
            "{PROM_PREFIX}{}_bucket{{{}}} {}",
            histogram.name,
            with_inf.join(","),
            histogram.data.count
        );
        let _ = writeln!(
            out,
            "{PROM_PREFIX}{}_sum{} {}",
            histogram.name,
            labels(histogram.worker, histogram.superstep),
            histogram.data.sum
        );
        let _ = writeln!(
            out,
            "{PROM_PREFIX}{}_count{} {}",
            histogram.name,
            labels(histogram.worker, histogram.superstep),
            histogram.data.count
        );
    }
    out
}

/// Renders the snapshot as pretty JSON with a trailing newline.
pub fn to_json(snapshot: &MetricsSnapshot) -> String {
    let mut out =
        serde_json::to_string_pretty(snapshot).expect("snapshot serialization is infallible");
    out.push('\n');
    out
}

/// Parses a JSON metrics export back into a snapshot.
pub fn from_json(text: &str) -> Result<MetricsSnapshot, String> {
    serde_json::from_str(text).map_err(|e| format!("metrics json: {e:?}"))
}

fn type_line(out: &mut String, last: &mut String, name: &str, kind: &str) {
    if last != name {
        let _ = writeln!(out, "# TYPE {PROM_PREFIX}{name} {kind}");
        *last = name.to_string();
    }
}

/// Escapes a label value per the Prometheus text exposition rules:
/// backslash, double-quote, and line-feed must be backslash-escaped.
/// Today's scope labels are numeric and pass through unchanged, but any
/// future free-form label (and any external caller building expositions
/// from snapshot data) must route values through this.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn labels_vec(worker: Option<u64>, superstep: Option<u64>) -> Vec<String> {
    let mut parts = Vec::new();
    if let Some(w) = worker {
        parts.push(format!("worker=\"{}\"", escape_label_value(&w.to_string())));
    }
    if let Some(s) = superstep {
        parts.push(format!("superstep=\"{}\"", escape_label_value(&s.to_string())));
    }
    parts
}

fn labels(worker: Option<u64>, superstep: Option<u64>) -> String {
    let parts = labels_vec(worker, superstep);
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{MetricsRegistry, Scope};

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.inc("pregel_messages_sent", Scope::superstep(0), 12);
        reg.inc("pregel_messages_sent", Scope::superstep(1), 4);
        reg.set_gauge("dfs_heal_queue_depth", Scope::GLOBAL, 2);
        reg.observe_time("phase_compute_nanos", Scope::worker(0), 1_500);
        reg
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = to_prometheus(&sample_registry().snapshot());
        assert!(text.contains("# TYPE graft_pregel_messages_sent counter"));
        assert!(text.contains("graft_pregel_messages_sent{superstep=\"0\"} 12"));
        assert!(text.contains("graft_dfs_heal_queue_depth 2"));
        assert!(text.contains("graft_phase_compute_nanos_bucket{worker=\"0\",le=\"+Inf\"} 1"));
        assert!(text.contains("graft_phase_compute_nanos_sum{worker=\"0\"} 1500"));
        // The TYPE header appears once per metric name, not per sample.
        assert_eq!(text.matches("# TYPE graft_pregel_messages_sent counter").count(), 1);
    }

    #[test]
    fn label_escaping_follows_exposition_rules() {
        assert_eq!(escape_label_value("plain-123"), "plain-123");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("line1\nline2"), "line1\\nline2");
        assert_eq!(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
        assert_eq!(escape_label_value(""), "");
    }

    #[test]
    fn empty_histogram_exports_zero_series() {
        use crate::histogram::Histogram;
        use crate::registry::HistogramEntry;
        // A histogram that was registered but never observed: every
        // cumulative bucket, the sum, and the count must render as 0 —
        // not be omitted — so scrapers see the series exists.
        let snapshot = MetricsSnapshot {
            histograms: vec![HistogramEntry {
                name: "phase_compute_nanos".into(),
                worker: Some(3),
                superstep: None,
                data: Histogram::time().snapshot(),
            }],
            ..Default::default()
        };
        let text = to_prometheus(&snapshot);
        assert!(text.contains("# TYPE graft_phase_compute_nanos histogram"));
        assert!(text.contains("graft_phase_compute_nanos_bucket{worker=\"3\",le=\"+Inf\"} 0"));
        assert!(text.contains("graft_phase_compute_nanos_sum{worker=\"3\"} 0"));
        assert!(text.contains("graft_phase_compute_nanos_count{worker=\"3\"} 0"));
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            assert!(line.ends_with(" 0"), "non-zero bucket in empty histogram: {line}");
        }
    }

    #[test]
    fn counter_after_reset_exports_explicit_zero() {
        // A counter touched with a zero delta (e.g. re-created after a
        // registry reset) must still export an explicit `0` sample.
        let reg = MetricsRegistry::new();
        reg.inc("pregel_obs_flush_bytes", Scope::GLOBAL, 0);
        let text = to_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE graft_pregel_obs_flush_bytes counter"));
        assert!(text.lines().any(|l| l == "graft_pregel_obs_flush_bytes 0"));
    }

    #[test]
    fn json_round_trip_and_determinism() {
        let snap = sample_registry().snapshot();
        let a = to_json(&snap);
        let b = to_json(&sample_registry().snapshot());
        assert_eq!(a, b, "identical recordings must export identical bytes");
        let parsed = from_json(&a).expect("parses back");
        assert_eq!(parsed, snap);
    }
}
