//! Export formats for a [`MetricsSnapshot`]: Prometheus-style text
//! exposition and pretty JSON. Both are deterministic — the snapshot is
//! sorted and every map underneath serializes in key order.

use std::fmt::Write as _;

use crate::registry::MetricsSnapshot;

/// Prefix applied to every metric name in the Prometheus exposition.
const PROM_PREFIX: &str = "graft_";

/// Renders the snapshot in the Prometheus text exposition format.
///
/// Counters get a `_total`-free name as recorded (names already carry
/// their unit/kind suffix); histograms expand to `_bucket`/`_sum`/
/// `_count` series with an explicit `+Inf` bucket.
pub fn to_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_typed = String::new();

    for counter in &snapshot.counters {
        type_line(&mut out, &mut last_typed, &counter.name, "counter");
        let _ = writeln!(
            out,
            "{PROM_PREFIX}{}{} {}",
            counter.name,
            labels(counter.worker, counter.superstep),
            counter.value
        );
    }
    last_typed.clear();
    for gauge in &snapshot.gauges {
        type_line(&mut out, &mut last_typed, &gauge.name, "gauge");
        let _ = writeln!(
            out,
            "{PROM_PREFIX}{}{} {}",
            gauge.name,
            labels(gauge.worker, gauge.superstep),
            gauge.value
        );
    }
    last_typed.clear();
    for histogram in &snapshot.histograms {
        type_line(&mut out, &mut last_typed, &histogram.name, "histogram");
        let scope_labels = labels_vec(histogram.worker, histogram.superstep);
        let mut cumulative = 0u64;
        for (bound, count) in histogram.data.bounds.iter().zip(&histogram.data.counts) {
            cumulative += count;
            let mut with_le = scope_labels.clone();
            with_le.push(format!("le=\"{bound}\""));
            let _ = writeln!(
                out,
                "{PROM_PREFIX}{}_bucket{{{}}} {}",
                histogram.name,
                with_le.join(","),
                cumulative
            );
        }
        let mut with_inf = scope_labels.clone();
        with_inf.push("le=\"+Inf\"".to_string());
        let _ = writeln!(
            out,
            "{PROM_PREFIX}{}_bucket{{{}}} {}",
            histogram.name,
            with_inf.join(","),
            histogram.data.count
        );
        let _ = writeln!(
            out,
            "{PROM_PREFIX}{}_sum{} {}",
            histogram.name,
            labels(histogram.worker, histogram.superstep),
            histogram.data.sum
        );
        let _ = writeln!(
            out,
            "{PROM_PREFIX}{}_count{} {}",
            histogram.name,
            labels(histogram.worker, histogram.superstep),
            histogram.data.count
        );
    }
    out
}

/// Renders the snapshot as pretty JSON with a trailing newline.
pub fn to_json(snapshot: &MetricsSnapshot) -> String {
    let mut out =
        serde_json::to_string_pretty(snapshot).expect("snapshot serialization is infallible");
    out.push('\n');
    out
}

/// Parses a JSON metrics export back into a snapshot.
pub fn from_json(text: &str) -> Result<MetricsSnapshot, String> {
    serde_json::from_str(text).map_err(|e| format!("metrics json: {e:?}"))
}

fn type_line(out: &mut String, last: &mut String, name: &str, kind: &str) {
    if last != name {
        let _ = writeln!(out, "# TYPE {PROM_PREFIX}{name} {kind}");
        *last = name.to_string();
    }
}

fn labels_vec(worker: Option<u64>, superstep: Option<u64>) -> Vec<String> {
    let mut parts = Vec::new();
    if let Some(w) = worker {
        parts.push(format!("worker=\"{w}\""));
    }
    if let Some(s) = superstep {
        parts.push(format!("superstep=\"{s}\""));
    }
    parts
}

fn labels(worker: Option<u64>, superstep: Option<u64>) -> String {
    let parts = labels_vec(worker, superstep);
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{MetricsRegistry, Scope};

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.inc("pregel_messages_sent", Scope::superstep(0), 12);
        reg.inc("pregel_messages_sent", Scope::superstep(1), 4);
        reg.set_gauge("dfs_heal_queue_depth", Scope::GLOBAL, 2);
        reg.observe_time("phase_compute_nanos", Scope::worker(0), 1_500);
        reg
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = to_prometheus(&sample_registry().snapshot());
        assert!(text.contains("# TYPE graft_pregel_messages_sent counter"));
        assert!(text.contains("graft_pregel_messages_sent{superstep=\"0\"} 12"));
        assert!(text.contains("graft_dfs_heal_queue_depth 2"));
        assert!(text.contains("graft_phase_compute_nanos_bucket{worker=\"0\",le=\"+Inf\"} 1"));
        assert!(text.contains("graft_phase_compute_nanos_sum{worker=\"0\"} 1500"));
        // The TYPE header appears once per metric name, not per sample.
        assert_eq!(text.matches("# TYPE graft_pregel_messages_sent counter").count(), 1);
    }

    #[test]
    fn json_round_trip_and_determinism() {
        let snap = sample_registry().snapshot();
        let a = to_json(&snap);
        let b = to_json(&sample_registry().snapshot());
        assert_eq!(a, b, "identical recordings must export identical bytes");
        let parsed = from_json(&a).expect("parses back");
        assert_eq!(parsed, snap);
    }
}
