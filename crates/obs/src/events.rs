//! The structured event log.
//!
//! Events are span edges (`B`egin / `E`nd) or instantaneous `P`oints,
//! stamped by the coordinator thread with the active [`crate::Clock`].
//! The log serializes to JSON-lines — one event per line — and is
//! written through the simulated DFS like any other Graft artifact, so
//! it survives datanode failures with the same guarantees as traces.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Span-edge marker for a begin event.
pub const EDGE_BEGIN: &str = "B";
/// Span-edge marker for an end event (carries `dur`).
pub const EDGE_END: &str = "E";
/// Marker for an instantaneous event.
pub const EDGE_POINT: &str = "P";

/// One entry in the event log.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Timestamp in nanoseconds since the job clock's epoch.
    pub ts: u64,
    /// Event kind, e.g. `superstep`, `phase.compute`, `checkpoint.restore`.
    pub kind: String,
    /// `"B"`, `"E"`, or `"P"` — see the `EDGE_*` constants.
    pub edge: String,
    /// Superstep the event belongs to, if any.
    pub superstep: Option<u64>,
    /// Worker the event belongs to, if any.
    pub worker: Option<u64>,
    /// Span duration in nanoseconds (end events only).
    pub dur: Option<u64>,
    /// Free-form string attributes, sorted by key.
    pub attrs: BTreeMap<String, String>,
}

impl Event {
    /// True for a span end of the given kind.
    pub fn is_end(&self, kind: &str) -> bool {
        self.edge == EDGE_END && self.kind == kind
    }

    /// True for a point event of the given kind.
    pub fn is_point(&self, kind: &str) -> bool {
        self.edge == EDGE_POINT && self.kind == kind
    }
}

/// An append-only, shareable event log.
#[derive(Clone, Default)]
pub struct EventLog {
    events: Arc<Mutex<Vec<Event>>>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event.
    pub fn append(&self, event: Event) {
        self.events.lock().push(event);
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the recorded events, in append order.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().clone()
    }
}

/// Serializes events to JSON-lines (one JSON object per line, trailing
/// newline). Field order is fixed by the struct declaration and `attrs`
/// is a sorted map, so the output is deterministic.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&serde_json::to_string(event).expect("event serialization is infallible"));
        out.push('\n');
    }
    out
}

/// Parses a JSON-lines event log. Blank lines are ignored; any malformed
/// line fails the whole parse with its 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event: Event =
            serde_json::from_str(line).map_err(|e| format!("event log line {}: {e:?}", idx + 1))?;
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ts: u64, kind: &str, edge: &str) -> Event {
        let mut attrs = BTreeMap::new();
        attrs.insert("k".to_string(), "v".to_string());
        Event {
            ts,
            kind: kind.to_string(),
            edge: edge.to_string(),
            superstep: Some(2),
            worker: None,
            dur: if edge == EDGE_END { Some(41) } else { None },
            attrs,
        }
    }

    #[test]
    fn jsonl_round_trip() {
        let events = vec![sample(1, "superstep", EDGE_BEGIN), sample(42, "superstep", EDGE_END)];
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), 2);
        let parsed = parse_jsonl(&text).expect("round trip parses");
        assert_eq!(parsed, events);
    }

    #[test]
    fn parse_reports_bad_line_number() {
        let mut text = to_jsonl(&[sample(1, "job", EDGE_BEGIN)]);
        text.push_str("{not json\n");
        let err = parse_jsonl(&text).expect_err("malformed line must fail");
        assert!(err.contains("line 2"), "got: {err}");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = format!("\n{}\n", to_jsonl(&[sample(1, "job", EDGE_POINT)]));
        assert_eq!(parse_jsonl(&text).unwrap().len(), 1);
    }
}
