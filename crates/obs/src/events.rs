//! The structured event log.
//!
//! Events are span edges (`B`egin / `E`nd) or instantaneous `P`oints,
//! stamped by the coordinator thread with the active [`crate::Clock`].
//! The log serializes to JSON-lines — one event per line — and is
//! written through the simulated DFS like any other Graft artifact, so
//! it survives datanode failures with the same guarantees as traces.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Span-edge marker for a begin event.
pub const EDGE_BEGIN: &str = "B";
/// Span-edge marker for an end event (carries `dur`).
pub const EDGE_END: &str = "E";
/// Marker for an instantaneous event.
pub const EDGE_POINT: &str = "P";

/// One entry in the event log.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Timestamp in nanoseconds since the job clock's epoch.
    pub ts: u64,
    /// Event kind, e.g. `superstep`, `phase.compute`, `checkpoint.restore`.
    pub kind: String,
    /// `"B"`, `"E"`, or `"P"` — see the `EDGE_*` constants.
    pub edge: String,
    /// Superstep the event belongs to, if any.
    pub superstep: Option<u64>,
    /// Worker the event belongs to, if any.
    pub worker: Option<u64>,
    /// Span duration in nanoseconds (end events only).
    pub dur: Option<u64>,
    /// Free-form string attributes, sorted by key.
    pub attrs: BTreeMap<String, String>,
}

impl Event {
    /// True for a span end of the given kind.
    pub fn is_end(&self, kind: &str) -> bool {
        self.edge == EDGE_END && self.kind == kind
    }

    /// True for a point event of the given kind.
    pub fn is_point(&self, kind: &str) -> bool {
        self.edge == EDGE_POINT && self.kind == kind
    }
}

/// An append-only, shareable event log.
#[derive(Clone, Default)]
pub struct EventLog {
    events: Arc<Mutex<Vec<Event>>>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event.
    pub fn append(&self, event: Event) {
        self.events.lock().push(event);
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the recorded events, in append order.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().clone()
    }
}

/// Serializes events as JSON-lines into `out`, reusing its allocation —
/// the live flush path calls this once per superstep with the same
/// buffer, so steady-state flushes allocate nothing.
pub fn write_jsonl_into(events: &[Event], out: &mut Vec<u8>) {
    for event in events {
        serde_json::to_vec_into(event, out).expect("event serialization is infallible");
        out.push(b'\n');
    }
}

/// Serializes events to JSON-lines (one JSON object per line, trailing
/// newline). Field order is fixed by the struct declaration and `attrs`
/// is a sorted map, so the output is deterministic.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = Vec::new();
    write_jsonl_into(events, &mut out);
    String::from_utf8(out).expect("serde_json emits UTF-8")
}

/// Parses a JSON-lines event log. Blank lines are ignored; any malformed
/// line fails the whole parse with its 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event: Event =
            serde_json::from_str(line).map_err(|e| format!("event log line {}: {e:?}", idx + 1))?;
        events.push(event);
    }
    Ok(events)
}

/// Like [`parse_jsonl`], but tolerant of a log caught mid-append: when
/// the *final* line is malformed and the text does not end in a newline
/// (a torn write), that line is skipped and returned as a warning
/// instead of failing the parse. A malformed line anywhere else — or a
/// complete, newline-terminated malformed final line — still fails.
pub fn parse_jsonl_lenient(text: &str) -> Result<(Vec<Event>, Option<String>), String> {
    let lines: Vec<&str> = text.lines().collect();
    let mut events = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<Event>(line) {
            Ok(event) => events.push(event),
            Err(e) => {
                let is_final = lines[idx + 1..].iter().all(|l| l.trim().is_empty());
                if is_final && !text.ends_with('\n') {
                    return Ok((
                        events,
                        Some(format!(
                            "event log line {}: skipped torn final line ({} bytes, log still \
                             being written?)",
                            idx + 1,
                            line.len()
                        )),
                    ));
                }
                return Err(format!("event log line {}: {e:?}", idx + 1));
            }
        }
    }
    Ok((events, None))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ts: u64, kind: &str, edge: &str) -> Event {
        let mut attrs = BTreeMap::new();
        attrs.insert("k".to_string(), "v".to_string());
        Event {
            ts,
            kind: kind.to_string(),
            edge: edge.to_string(),
            superstep: Some(2),
            worker: None,
            dur: if edge == EDGE_END { Some(41) } else { None },
            attrs,
        }
    }

    #[test]
    fn jsonl_round_trip() {
        let events = vec![sample(1, "superstep", EDGE_BEGIN), sample(42, "superstep", EDGE_END)];
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), 2);
        let parsed = parse_jsonl(&text).expect("round trip parses");
        assert_eq!(parsed, events);
    }

    #[test]
    fn parse_reports_bad_line_number() {
        let mut text = to_jsonl(&[sample(1, "job", EDGE_BEGIN)]);
        text.push_str("{not json\n");
        let err = parse_jsonl(&text).expect_err("malformed line must fail");
        assert!(err.contains("line 2"), "got: {err}");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = format!("\n{}\n", to_jsonl(&[sample(1, "job", EDGE_POINT)]));
        assert_eq!(parse_jsonl(&text).unwrap().len(), 1);
    }

    #[test]
    fn write_into_reuses_buffer_and_matches_to_jsonl() {
        let events = vec![sample(1, "superstep", EDGE_BEGIN), sample(9, "superstep", EDGE_END)];
        let mut buf = Vec::with_capacity(1024);
        write_jsonl_into(&events, &mut buf);
        assert_eq!(String::from_utf8(buf.clone()).unwrap(), to_jsonl(&events));
        let cap = buf.capacity();
        buf.clear();
        write_jsonl_into(&events[..1], &mut buf);
        assert_eq!(buf.capacity(), cap, "reuse must not reallocate for smaller batches");
    }

    #[test]
    fn lenient_parse_skips_torn_final_line_only() {
        let good = to_jsonl(&[sample(1, "job", EDGE_BEGIN)]);
        // Torn final line without a trailing newline: skipped + warned.
        let torn = format!("{good}{{\"ts\":2,\"kind\":\"hal");
        let (events, warning) = parse_jsonl_lenient(&torn).expect("lenient parse");
        assert_eq!(events.len(), 1);
        assert!(warning.expect("warning emitted").contains("line 2"));
        // The same garbage newline-terminated is a complete bad line.
        let complete_garbage = format!("{good}{{not json}}\n");
        assert!(parse_jsonl_lenient(&complete_garbage).is_err());
        // Mid-file garbage still fails even without a trailing newline.
        let mid = format!("{{bad}}\n{}", to_jsonl(&[sample(3, "job", EDGE_END)]).trim_end());
        assert!(parse_jsonl_lenient(&mid).is_err());
        // A clean log parses with no warning.
        let (events, warning) = parse_jsonl_lenient(&good).unwrap();
        assert_eq!(events.len(), 1);
        assert!(warning.is_none());
    }
}
