//! End-to-end observability for Graft: a metrics registry, a structured
//! event log, and the superstep profiler.
//!
//! The central handle is [`Obs`]. The engine, the Graft runner, the DFS
//! and the trace sink all record into one shared `Obs`; after the job it
//! exports three artifacts — `events.jsonl` (the span log),
//! `metrics.prom` (Prometheus text exposition) and `metrics.json` —
//! through any [`FileSystem`], including the simulated cluster DFS.
//!
//! Determinism is a design constraint: with [`Obs::deterministic`] the
//! clock is logical (see [`TickClock`]), histograms use fixed bucket
//! boundaries, all storage is ordered, and events are stamped only from
//! the coordinator thread — so two identical seeded runs export
//! byte-identical artifacts, which makes perf regressions diffable.
//!
//! ```
//! use graft_obs::{Obs, Scope};
//!
//! let obs = Obs::deterministic(1_000);
//! let begin = obs.begin("superstep", Some(0), None);
//! obs.registry().inc("pregel_messages_sent", Scope::superstep(0), 42);
//! obs.end("superstep", Some(0), None, begin, &[("messages_sent", "42".to_string())]);
//! let events = obs.events();
//! assert_eq!(events.len(), 2);
//! assert_eq!(events[1].dur, Some(1_000));
//! ```

mod clock;
mod dfs;
mod events;
mod export;
mod histogram;
mod live;
mod profile;
mod registry;

pub use clock::{Clock, TickClock, Timer, WallClock};
pub use dfs::DfsMetrics;
pub use events::{
    parse_jsonl, parse_jsonl_lenient, to_jsonl, write_jsonl_into, Event, EventLog, EDGE_BEGIN,
    EDGE_END, EDGE_POINT,
};
pub use export::{escape_label_value, from_json, to_json, to_prometheus};
pub use histogram::{Histogram, HistogramData, BYTE_BUCKETS, TIME_BUCKETS_NANOS};
pub use live::{
    latest_snapshot, snapshot_files, worker_progress, LiveLogReader, LiveSnapshot, LiveWriter,
    StragglerRecord, WorkerProgress, FLUSHES_COUNTER, FLUSH_BYTES_COUNTER, LIVE_DIR,
    SNAPSHOT_PREFIX, SNAPSHOT_SUFFIX, STATUS_FAILED, STATUS_FINISHED, STATUS_RUNNING,
    STRAGGLERS_COUNTER, STRAGGLER_EVENT, TMP_SUFFIX, WATERMARK_EVENT, WATERMARK_GAUGE,
};
pub use profile::{fmt_nanos, PhaseTotal, Profile, RestoreSpan, SuperstepProfile};
pub use registry::{
    CounterEntry, GaugeEntry, HistogramEntry, MetricsRegistry, MetricsSnapshot, Scope, VertexCost,
    TOP_VERTICES_EXPORTED,
};

use std::collections::BTreeMap;
use std::sync::Arc;

use graft_dfs::{FileSystem, FsResult};

/// File name of the JSON-lines event log artifact.
pub const EVENTS_FILE: &str = "events.jsonl";
/// File name of the Prometheus text exposition artifact.
pub const METRICS_PROM_FILE: &str = "metrics.prom";
/// File name of the JSON metrics artifact.
pub const METRICS_JSON_FILE: &str = "metrics.json";

/// The shared observability handle: one clock, one registry, one event
/// log.
pub struct Obs {
    clock: Arc<dyn Clock>,
    registry: MetricsRegistry,
    events: EventLog,
}

impl Obs {
    /// An `Obs` over real wall-clock time.
    pub fn wall() -> Arc<Obs> {
        Self::with_clock(Arc::new(WallClock::new()))
    }

    /// An `Obs` over a logical clock advancing `step_nanos` per reading:
    /// identical runs export identical bytes.
    pub fn deterministic(step_nanos: u64) -> Arc<Obs> {
        Self::with_clock(Arc::new(TickClock::new(step_nanos)))
    }

    /// An `Obs` over an arbitrary clock.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Arc<Obs> {
        Arc::new(Obs { clock, registry: MetricsRegistry::new(), events: EventLog::new() })
    }

    /// The clock driving event timestamps.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The metrics registry (cheap to clone for worker-side recording).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Starts a duration measurement safe on any thread.
    pub fn timer(&self) -> Timer {
        self.clock.timer()
    }

    /// Emits a span begin event and returns its timestamp (pass it to
    /// [`Obs::end`]). Coordinator thread only.
    pub fn begin(&self, kind: &str, superstep: Option<u64>, worker: Option<u64>) -> u64 {
        let ts = self.clock.now_nanos();
        self.events.append(Event {
            ts,
            kind: kind.to_string(),
            edge: EDGE_BEGIN.to_string(),
            superstep,
            worker,
            dur: None,
            attrs: BTreeMap::new(),
        });
        ts
    }

    /// Emits a span end event and returns the span duration in
    /// nanoseconds. Coordinator thread only.
    pub fn end(
        &self,
        kind: &str,
        superstep: Option<u64>,
        worker: Option<u64>,
        begin_ts: u64,
        attrs: &[(&str, String)],
    ) -> u64 {
        let ts = self.clock.now_nanos();
        let dur = ts.saturating_sub(begin_ts);
        self.events.append(Event {
            ts,
            kind: kind.to_string(),
            edge: EDGE_END.to_string(),
            superstep,
            worker,
            dur: Some(dur),
            attrs: to_attr_map(attrs),
        });
        dur
    }

    /// Emits an instantaneous event. Coordinator thread only.
    pub fn point(
        &self,
        kind: &str,
        superstep: Option<u64>,
        worker: Option<u64>,
        attrs: &[(&str, String)],
    ) {
        let ts = self.clock.now_nanos();
        self.events.append(Event {
            ts,
            kind: kind.to_string(),
            edge: EDGE_POINT.to_string(),
            superstep,
            worker,
            dur: None,
            attrs: to_attr_map(attrs),
        });
    }

    /// A copy of the recorded events, in append order.
    pub fn events(&self) -> Vec<Event> {
        self.events.snapshot()
    }

    /// A sorted snapshot of the metrics recorded so far.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Writes the three artifacts (`events.jsonl`, `metrics.prom`,
    /// `metrics.json`) under `dir` on `fs`.
    pub fn write_artifacts(&self, fs: &dyn FileSystem, dir: &str) -> FsResult<()> {
        fs.mkdirs(dir)?;
        let join = |file: &str| {
            if dir.ends_with('/') {
                format!("{dir}{file}")
            } else {
                format!("{dir}/{file}")
            }
        };
        fs.write_all(&join(EVENTS_FILE), to_jsonl(&self.events.snapshot()).as_bytes())?;
        let snapshot = self.registry.snapshot();
        fs.write_all(&join(METRICS_PROM_FILE), to_prometheus(&snapshot).as_bytes())?;
        fs.write_all(&join(METRICS_JSON_FILE), to_json(&snapshot).as_bytes())
    }
}

fn to_attr_map(attrs: &[(&str, String)]) -> BTreeMap<String, String> {
    attrs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_dfs::InMemoryFs;

    #[test]
    fn spans_record_begin_end_with_duration() {
        let obs = Obs::deterministic(100);
        let begin = obs.begin("phase.compute", Some(3), None);
        let dur = obs.end("phase.compute", Some(3), None, begin, &[("calls", "5".to_string())]);
        assert_eq!(dur, 100);
        let events = obs.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].edge, EDGE_BEGIN);
        assert_eq!(events[1].dur, Some(100));
        assert_eq!(events[1].attrs["calls"], "5");
    }

    #[test]
    fn artifacts_round_trip_through_a_filesystem() {
        let fs = InMemoryFs::new();
        let obs = Obs::deterministic(10);
        let begin = obs.begin("superstep", Some(0), None);
        obs.registry().inc("pregel_messages_sent", Scope::superstep(0), 9);
        obs.end("superstep", Some(0), None, begin, &[]);
        obs.point("recovery", None, None, &[("attempt", "1".to_string())]);
        obs.write_artifacts(&fs, "/obs").expect("artifacts write");

        let events_text = String::from_utf8(fs.read_all("/obs/events.jsonl").unwrap()).unwrap();
        let parsed = parse_jsonl(&events_text).expect("event log parses");
        assert_eq!(parsed, obs.events());

        let json_text = String::from_utf8(fs.read_all("/obs/metrics.json").unwrap()).unwrap();
        let snapshot = from_json(&json_text).expect("metrics parse");
        assert_eq!(snapshot, obs.metrics());

        let prom = String::from_utf8(fs.read_all("/obs/metrics.prom").unwrap()).unwrap();
        assert!(prom.contains("graft_pregel_messages_sent{superstep=\"0\"} 9"));
    }

    #[test]
    fn identical_recordings_export_identical_bytes() {
        let record = || {
            let fs = InMemoryFs::new();
            let obs = Obs::deterministic(50);
            for ss in 0..3u64 {
                let begin = obs.begin("superstep", Some(ss), None);
                obs.registry().inc("pregel_compute_calls", Scope::superstep(ss), 4 + ss);
                obs.registry().observe_time("superstep_wall_nanos", Scope::GLOBAL, 50);
                obs.end("superstep", Some(ss), None, begin, &[("messages_sent", ss.to_string())]);
            }
            obs.write_artifacts(&fs, "/obs").unwrap();
            (
                fs.read_all("/obs/events.jsonl").unwrap(),
                fs.read_all("/obs/metrics.prom").unwrap(),
                fs.read_all("/obs/metrics.json").unwrap(),
            )
        };
        assert_eq!(record(), record());
    }
}
