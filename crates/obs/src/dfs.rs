//! Adapter recording [`graft_dfs::ClusterFs`] activity into an [`Obs`].
//!
//! Block-level reads and writes update only metrics — counter and
//! histogram accumulation commutes, so replica traffic from any thread
//! cannot perturb the exported bytes. Rarer namenode-level transitions
//! (healing, datanode kills and revives) additionally emit point events;
//! in the Graft stack those always happen on the coordinator thread
//! (trace flushes, checkpoints, and chaos observers all run there), so
//! the event log stays deterministic.

use std::sync::Arc;

use graft_dfs::DfsObserver;

use crate::registry::Scope;
use crate::Obs;

/// A [`DfsObserver`] feeding a shared [`Obs`]. Register it with
/// [`graft_dfs::ClusterFs::add_observer`].
pub struct DfsMetrics {
    obs: Arc<Obs>,
}

impl DfsMetrics {
    /// An adapter recording into `obs`.
    pub fn new(obs: Arc<Obs>) -> Self {
        Self { obs }
    }
}

impl DfsObserver for DfsMetrics {
    fn block_written(&self, bytes: u64, _replicas: usize, degraded: bool) {
        let reg = self.obs.registry();
        reg.inc("dfs_blocks_written_total", Scope::GLOBAL, 1);
        reg.inc("dfs_bytes_written_total", Scope::GLOBAL, bytes);
        reg.observe_bytes("dfs_block_write_bytes", Scope::GLOBAL, bytes);
        if degraded {
            reg.inc("dfs_degraded_writes_total", Scope::GLOBAL, 1);
        }
    }

    fn block_read(&self, bytes: u64, failovers: u64) {
        let reg = self.obs.registry();
        reg.inc("dfs_blocks_read_total", Scope::GLOBAL, 1);
        reg.inc("dfs_bytes_read_total", Scope::GLOBAL, bytes);
        reg.observe_bytes("dfs_block_read_bytes", Scope::GLOBAL, bytes);
        if failovers > 0 {
            reg.inc("dfs_read_failovers_total", Scope::GLOBAL, failovers);
        }
    }

    fn heal_completed(&self, replicas_created: u64, queue_depth: u64) {
        let reg = self.obs.registry();
        reg.inc("dfs_heals_total", Scope::GLOBAL, 1);
        reg.inc("dfs_replicas_healed_total", Scope::GLOBAL, replicas_created);
        reg.set_gauge("dfs_heal_queue_depth", Scope::GLOBAL, queue_depth as i64);
        self.obs.point(
            "dfs.heal",
            None,
            None,
            &[
                ("replicas_created", replicas_created.to_string()),
                ("queue_depth", queue_depth.to_string()),
            ],
        );
    }

    fn datanode_killed(&self, node: usize, live: usize) {
        let reg = self.obs.registry();
        reg.inc("dfs_datanode_kills_total", Scope::GLOBAL, 1);
        reg.set_gauge("dfs_live_datanodes", Scope::GLOBAL, live as i64);
        self.obs.point(
            "dfs.datanode_kill",
            None,
            None,
            &[("node", node.to_string()), ("live", live.to_string())],
        );
    }

    fn datanode_revived(&self, node: usize, live: usize) {
        let reg = self.obs.registry();
        reg.inc("dfs_datanode_revives_total", Scope::GLOBAL, 1);
        reg.set_gauge("dfs_live_datanodes", Scope::GLOBAL, live as i64);
        self.obs.point(
            "dfs.datanode_revive",
            None,
            None,
            &[("node", node.to_string()), ("live", live.to_string())],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_dfs::{ClusterFs, ClusterFsConfig, FileSystem};

    #[test]
    fn cluster_activity_lands_in_the_registry() {
        let obs = Obs::deterministic(10);
        let fs =
            ClusterFs::new(ClusterFsConfig { num_datanodes: 3, replication: 2, block_size: 32 });
        fs.add_observer(Arc::new(DfsMetrics::new(obs.clone())));

        fs.write_all("/f", &[7u8; 100]).unwrap();
        fs.read_all("/f").unwrap();
        fs.kill_datanode(0).unwrap();
        fs.re_replicate();

        let reg = obs.registry();
        assert_eq!(reg.counter_value("dfs_blocks_written_total", Scope::GLOBAL), 4);
        assert_eq!(reg.counter_value("dfs_bytes_written_total", Scope::GLOBAL), 100);
        assert_eq!(reg.counter_value("dfs_blocks_read_total", Scope::GLOBAL), 4);
        assert_eq!(reg.counter_value("dfs_datanode_kills_total", Scope::GLOBAL), 1);
        assert!(reg.counter_value("dfs_replicas_healed_total", Scope::GLOBAL) > 0);
        assert_eq!(reg.gauge_value("dfs_heal_queue_depth", Scope::GLOBAL), Some(0));
        let events = obs.events();
        assert!(events.iter().any(|e| e.is_point("dfs.datanode_kill")));
        assert!(events.iter().any(|e| e.is_point("dfs.heal")));
    }
}
