//! Fixed-boundary histograms.
//!
//! Bucket boundaries are compiled in rather than adaptive so that two
//! runs of the same job produce byte-identical exports: a histogram's
//! shape depends only on the observed values, never on their order or on
//! tuning state.

use serde::{Deserialize, Serialize};

/// Bucket upper bounds (inclusive) for time histograms, in nanoseconds:
/// 1µs … 10s in roughly half-decade steps.
pub const TIME_BUCKETS_NANOS: &[u64] = &[
    1_000,
    10_000,
    100_000,
    1_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
    5_000_000_000,
    10_000_000_000,
];

/// Bucket upper bounds (inclusive) for byte-size histograms:
/// 64 B … 16 MiB in power-of-four steps.
pub const BYTE_BUCKETS: &[u64] =
    &[64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216];

/// A cumulative-style histogram over fixed bucket boundaries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bounds: &'static [u64],
    counts: Vec<u64>,
    sum: u64,
    count: u64,
}

impl Histogram {
    /// An empty histogram over the time boundaries.
    pub fn time() -> Self {
        Self::with_bounds(TIME_BUCKETS_NANOS)
    }

    /// An empty histogram over the byte boundaries.
    pub fn bytes() -> Self {
        Self::with_bounds(BYTE_BUCKETS)
    }

    fn with_bounds(bounds: &'static [u64]) -> Self {
        Self { bounds, counts: vec![0; bounds.len()], sum: 0, count: 0 }
    }

    /// Records one observation. Values above the last boundary land in
    /// the implicit `+Inf` bucket (tracked by `count`).
    pub fn observe(&mut self, value: u64) {
        if let Some(slot) = self.bounds.iter().position(|&b| value <= b) {
            self.counts[slot] += 1;
        }
        self.sum += value;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// A serializable copy of the current state.
    pub fn snapshot(&self) -> HistogramData {
        HistogramData {
            bounds: self.bounds.to_vec(),
            counts: self.counts.clone(),
            sum: self.sum,
            count: self.count,
        }
    }
}

/// The exportable state of a [`Histogram`]: per-bucket (non-cumulative)
/// counts aligned with `bounds`, plus sum and total count. Observations
/// above the last bound are only reflected in `count`/`sum` (the
/// Prometheus exposition derives the `+Inf` bucket from `count`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramData {
    /// Inclusive bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Observations per bucket (same length as `bounds`).
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_first_covering_bucket() {
        let mut h = Histogram::bytes();
        h.observe(64); // inclusive upper bound
        h.observe(65);
        h.observe(1 << 30); // beyond the last bound: +Inf only
        let snap = h.snapshot();
        assert_eq!(snap.counts[0], 1);
        assert_eq!(snap.counts[1], 1);
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 64 + 65 + (1 << 30));
        assert_eq!(snap.counts.iter().sum::<u64>(), 2);
    }

    #[test]
    fn identical_observations_identical_snapshots() {
        let values = [3u64, 999, 1_000, 1_001, 123_456_789];
        let mut a = Histogram::time();
        let mut b = Histogram::time();
        // Order must not matter.
        for v in values {
            a.observe(v);
        }
        for v in values.iter().rev() {
            b.observe(*v);
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }
}
