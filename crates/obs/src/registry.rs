//! The metrics registry: counters, gauges, and fixed-bucket histograms,
//! each optionally scoped to a worker and/or a superstep.
//!
//! Storage is ordered (`BTreeMap`) and the snapshot is fully sorted, so
//! exports are deterministic byte-for-byte given identical recordings.
//! All mutation paths are commutative (additions and max/last-write
//! gauges), so concurrent recording from worker threads cannot perturb
//! the exported bytes.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::histogram::{Histogram, HistogramData};

/// How many vertices [`MetricsRegistry::snapshot`] keeps in
/// [`MetricsSnapshot::top_vertices`].
pub const TOP_VERTICES_EXPORTED: usize = 64;

/// The (worker, superstep) scope of a metric sample. `None` on both axes
/// is the job-global scope.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Scope {
    /// Worker the sample belongs to, if worker-scoped.
    pub worker: Option<u64>,
    /// Superstep the sample belongs to, if superstep-scoped.
    pub superstep: Option<u64>,
}

impl Scope {
    /// The job-global scope.
    pub const GLOBAL: Scope = Scope { worker: None, superstep: None };

    /// A worker-scoped sample.
    pub fn worker(worker: u64) -> Scope {
        Scope { worker: Some(worker), superstep: None }
    }

    /// A superstep-scoped sample.
    pub fn superstep(superstep: u64) -> Scope {
        Scope { worker: None, superstep: Some(superstep) }
    }

    /// A worker × superstep scoped sample.
    pub fn at(worker: u64, superstep: u64) -> Scope {
        Scope { worker: Some(worker), superstep: Some(superstep) }
    }
}

type Key = (String, Scope);

#[derive(Default)]
struct Inner {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, i64>,
    histograms: BTreeMap<Key, Histogram>,
    /// Per-vertex accumulated compute cost, keyed by the vertex's
    /// `Display` form.
    vertex_nanos: BTreeMap<String, VertexCost>,
}

/// Cheap-to-clone handle to a shared metrics store.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Inner>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a counter, creating it at zero first.
    pub fn inc(&self, name: &str, scope: Scope, delta: u64) {
        let mut inner = self.inner.lock();
        *inner.counters.entry((name.to_string(), scope)).or_insert(0) += delta;
    }

    /// Sets a gauge to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, scope: Scope, value: i64) {
        let mut inner = self.inner.lock();
        inner.gauges.insert((name.to_string(), scope), value);
    }

    /// Raises a gauge to `value` if it is below it (or absent).
    pub fn max_gauge(&self, name: &str, scope: Scope, value: i64) {
        let mut inner = self.inner.lock();
        let slot = inner.gauges.entry((name.to_string(), scope)).or_insert(i64::MIN);
        *slot = (*slot).max(value);
    }

    /// Records a duration into a time histogram.
    pub fn observe_time(&self, name: &str, scope: Scope, nanos: u64) {
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry((name.to_string(), scope))
            .or_insert_with(Histogram::time)
            .observe(nanos);
    }

    /// Records a size into a byte histogram.
    pub fn observe_bytes(&self, name: &str, scope: Scope, bytes: u64) {
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry((name.to_string(), scope))
            .or_insert_with(Histogram::bytes)
            .observe(bytes);
    }

    /// Accumulates one `compute()` call's cost against a vertex. Safe to
    /// call concurrently from worker threads: accumulation commutes.
    pub fn record_vertex_compute(&self, vertex: &str, nanos: u64) {
        let mut inner = self.inner.lock();
        let cost = inner.vertex_nanos.entry(vertex.to_string()).or_insert_with(|| VertexCost {
            vertex: vertex.to_string(),
            nanos: 0,
            calls: 0,
        });
        cost.nanos += nanos;
        cost.calls += 1;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter_value(&self, name: &str, scope: Scope) -> u64 {
        let inner = self.inner.lock();
        inner.counters.get(&(name.to_string(), scope)).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge_value(&self, name: &str, scope: Scope) -> Option<i64> {
        let inner = self.inner.lock();
        inner.gauges.get(&(name.to_string(), scope)).copied()
    }

    /// Sum of a counter across all scopes carrying `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        let inner = self.inner.lock();
        inner.counters.iter().filter(|((n, _), _)| n == name).map(|(_, v)| v).sum()
    }

    /// A sorted, serializable copy of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        let counters = inner
            .counters
            .iter()
            .map(|((name, scope), &value)| CounterEntry {
                name: name.clone(),
                worker: scope.worker,
                superstep: scope.superstep,
                value,
            })
            .collect();
        let gauges = inner
            .gauges
            .iter()
            .map(|((name, scope), &value)| GaugeEntry {
                name: name.clone(),
                worker: scope.worker,
                superstep: scope.superstep,
                value,
            })
            .collect();
        let histograms = inner
            .histograms
            .iter()
            .map(|((name, scope), histogram)| HistogramEntry {
                name: name.clone(),
                worker: scope.worker,
                superstep: scope.superstep,
                data: histogram.snapshot(),
            })
            .collect();
        let mut top_vertices: Vec<VertexCost> = inner.vertex_nanos.values().cloned().collect();
        // Costliest first; the vertex id breaks ties so the cut is stable.
        top_vertices.sort_by(|a, b| b.nanos.cmp(&a.nanos).then_with(|| a.vertex.cmp(&b.vertex)));
        top_vertices.truncate(TOP_VERTICES_EXPORTED);
        MetricsSnapshot { counters, gauges, histograms, top_vertices }
    }
}

/// One counter sample in a snapshot.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Metric name (snake_case, includes the unit suffix).
    pub name: String,
    /// Worker scope, if any.
    pub worker: Option<u64>,
    /// Superstep scope, if any.
    pub superstep: Option<u64>,
    /// Accumulated value.
    pub value: u64,
}

/// One gauge sample in a snapshot.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeEntry {
    /// Metric name.
    pub name: String,
    /// Worker scope, if any.
    pub worker: Option<u64>,
    /// Superstep scope, if any.
    pub superstep: Option<u64>,
    /// Last (or max, for max-gauges) recorded value.
    pub value: i64,
}

/// One histogram in a snapshot.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramEntry {
    /// Metric name.
    pub name: String,
    /// Worker scope, if any.
    pub worker: Option<u64>,
    /// Superstep scope, if any.
    pub superstep: Option<u64>,
    /// Buckets, sum and count.
    pub data: HistogramData,
}

/// Accumulated compute cost of one vertex.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexCost {
    /// The vertex id's `Display` form.
    pub vertex: String,
    /// Total nanoseconds spent in `compute()` for this vertex.
    pub nanos: u64,
    /// Number of `compute()` calls.
    pub calls: u64,
}

/// Everything a registry recorded, sorted and ready for export.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by (name, worker, superstep).
    pub counters: Vec<CounterEntry>,
    /// All gauges, sorted by (name, worker, superstep).
    pub gauges: Vec<GaugeEntry>,
    /// All histograms, sorted by (name, worker, superstep).
    pub histograms: Vec<HistogramEntry>,
    /// Costliest vertices by accumulated compute time (capped at
    /// [`TOP_VERTICES_EXPORTED`]).
    pub top_vertices: Vec<VertexCost>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_scope() {
        let reg = MetricsRegistry::new();
        reg.inc("messages_total", Scope::superstep(0), 5);
        reg.inc("messages_total", Scope::superstep(0), 2);
        reg.inc("messages_total", Scope::superstep(1), 1);
        assert_eq!(reg.counter_value("messages_total", Scope::superstep(0)), 7);
        assert_eq!(reg.counter_value("messages_total", Scope::superstep(1)), 1);
        assert_eq!(reg.counter_total("messages_total"), 8);
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let reg = MetricsRegistry::new();
        reg.inc("z_metric", Scope::GLOBAL, 1);
        reg.inc("a_metric", Scope::at(1, 3), 1);
        reg.inc("a_metric", Scope::at(0, 3), 1);
        let snap = reg.snapshot();
        let names: Vec<(&str, Option<u64>)> =
            snap.counters.iter().map(|c| (c.name.as_str(), c.worker)).collect();
        assert_eq!(names, vec![("a_metric", Some(0)), ("a_metric", Some(1)), ("z_metric", None)]);
    }

    #[test]
    fn top_vertices_sorted_by_cost_then_id() {
        let reg = MetricsRegistry::new();
        reg.record_vertex_compute("7", 10);
        reg.record_vertex_compute("3", 10);
        reg.record_vertex_compute("5", 25);
        reg.record_vertex_compute("7", 5);
        let snap = reg.snapshot();
        let order: Vec<&str> = snap.top_vertices.iter().map(|v| v.vertex.as_str()).collect();
        assert_eq!(order, vec!["5", "7", "3"]);
        assert_eq!(snap.top_vertices[1].calls, 2);
    }

    #[test]
    fn max_gauge_keeps_peak() {
        let reg = MetricsRegistry::new();
        reg.max_gauge("peak_active", Scope::GLOBAL, 4);
        reg.max_gauge("peak_active", Scope::GLOBAL, 9);
        reg.max_gauge("peak_active", Scope::GLOBAL, 2);
        assert_eq!(reg.gauge_value("peak_active", Scope::GLOBAL), Some(9));
    }
}
