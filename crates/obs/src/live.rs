//! Live observability: streaming flush of the event log plus committed
//! metrics snapshots, written *while the job runs* instead of only at
//! finalize.
//!
//! The protocol has two channels under the job's obs directory:
//!
//! * `events.jsonl` — append-only. Each flush appends only the events
//!   recorded since the previous flush; a reader tailing the file (see
//!   [`LiveLogReader`]) never sees a rewrite, only growth. A reader may
//!   catch the final line torn mid-append; it carries the fragment until
//!   the next poll completes it.
//! * `live/snapshot_<seq>.json` — one complete [`LiveSnapshot`] document
//!   per flush, with a monotonically increasing sequence number.
//!   Snapshots are committed by writing `snapshot_<seq>.json.tmp` and
//!   renaming it into place, so a reader that can see the final name can
//!   read the whole document — never a torn prefix.
//!
//! Supersteps at or below the **watermark** are complete-and-immutable:
//! their trace rows, events, and metrics will not change except by a
//! recovery replay, which rewrites them byte-identically (proven by the
//! chaos matrices). The watermark only ever advances — a restore rewinds
//! execution, not the frontier — which is what lets `graft-server`
//! safely serve completed supersteps of an in-flight job.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::Arc;

use graft_dfs::{FileSystem, FsError, FsResult, TailEvent, TailWatcher};
use serde::{Deserialize, Serialize};

use crate::events::{parse_jsonl, write_jsonl_into, Event};
use crate::export;
use crate::registry::{MetricsSnapshot, Scope};
use crate::{Obs, EVENTS_FILE, METRICS_JSON_FILE, METRICS_PROM_FILE};

/// Subdirectory of the obs dir holding committed snapshots.
pub const LIVE_DIR: &str = "live";
/// Snapshot file name prefix (`snapshot_<seq>.json`).
pub const SNAPSHOT_PREFIX: &str = "snapshot_";
/// Snapshot file name suffix.
pub const SNAPSHOT_SUFFIX: &str = ".json";
/// Suffix of the staging file renamed into place on commit.
pub const TMP_SUFFIX: &str = ".tmp";

/// Point event marking a superstep complete-and-immutable; its `frontier`
/// attribute is the watermark after the advance.
pub const WATERMARK_EVENT: &str = "watermark";
/// Point event emitted when a worker's compute time exceeds the
/// configured multiple of the superstep median.
pub const STRAGGLER_EVENT: &str = "straggler.detected";
/// Counter incremented once per detected straggler.
pub const STRAGGLERS_COUNTER: &str = "live_stragglers_total";
/// Counter of bytes written by live flushes (event-log appends +
/// snapshot documents), making the live pipeline's own cost visible.
pub const FLUSH_BYTES_COUNTER: &str = "pregel_obs_flush_bytes";
/// Counter of completed live flushes.
pub const FLUSHES_COUNTER: &str = "pregel_obs_flushes_total";
/// Gauge holding the current watermark frontier.
pub const WATERMARK_GAUGE: &str = "live_watermark";

/// `status` of a [`LiveSnapshot`] while the job runs.
pub const STATUS_RUNNING: &str = "running";
/// `status` once the job finished successfully.
pub const STATUS_FINISHED: &str = "finished";
/// `status` once the job failed.
pub const STATUS_FAILED: &str = "failed";

/// Per-worker progress derived from the metrics registry.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerProgress {
    /// Worker index.
    pub worker: u64,
    /// Total `compute()` calls executed by this worker so far.
    pub compute_calls: u64,
    /// Total compute-phase nanoseconds accumulated by this worker.
    pub compute_nanos: u64,
}

/// One detected straggler occurrence.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StragglerRecord {
    /// Superstep in which the skew was observed.
    pub superstep: u64,
    /// The slow worker.
    pub worker: u64,
    /// The worker's compute nanoseconds that superstep.
    pub nanos: u64,
    /// The median compute nanoseconds across workers that superstep.
    pub median_nanos: u64,
}

/// One committed live snapshot: everything a monitoring client needs to
/// render the job's current state.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiveSnapshot {
    /// Monotonically increasing sequence number (1-based).
    pub seq: u64,
    /// `running`, `finished`, or `failed`.
    pub status: String,
    /// The superstep in flight (`watermark + 1` while running; equals the
    /// watermark once terminal).
    pub superstep: Option<u64>,
    /// Highest complete-and-immutable superstep, if any finished yet.
    pub watermark: Option<u64>,
    /// Recoveries observed so far (full restores + confined replays).
    pub recoveries: u64,
    /// Per-worker cumulative progress.
    pub workers: Vec<WorkerProgress>,
    /// Stragglers detected so far, in detection order.
    pub stragglers: Vec<StragglerRecord>,
    /// Full metrics snapshot at flush time.
    pub metrics: MetricsSnapshot,
}

fn join(dir: &str, file: &str) -> String {
    if dir.ends_with('/') {
        format!("{dir}{file}")
    } else {
        format!("{dir}/{file}")
    }
}

/// Streams an [`Obs`]'s event log and metrics through a [`FileSystem`]
/// incrementally. One writer per job, driven from the coordinator thread
/// at superstep boundaries.
pub struct LiveWriter {
    fs: Arc<dyn FileSystem>,
    obs: Arc<Obs>,
    dir: String,
    live_dir: String,
    events_path: String,
    seq: u64,
    events_flushed: usize,
    /// Reused serialization buffer: flushes append into it instead of
    /// allocating a fresh string per superstep.
    buf: Vec<u8>,
    watermark: Option<u64>,
    recoveries: u64,
    stragglers: Vec<StragglerRecord>,
}

impl LiveWriter {
    /// A writer flushing into `obs_dir` on `fs`.
    pub fn new(fs: Arc<dyn FileSystem>, obs: Arc<Obs>, obs_dir: &str) -> Self {
        Self {
            fs,
            obs,
            dir: obs_dir.to_string(),
            live_dir: join(obs_dir, LIVE_DIR),
            events_path: join(obs_dir, EVENTS_FILE),
            seq: 0,
            events_flushed: 0,
            buf: Vec::new(),
            watermark: None,
            recoveries: 0,
            stragglers: Vec::new(),
        }
    }

    /// The current complete-superstep frontier.
    pub fn watermark(&self) -> Option<u64> {
        self.watermark
    }

    /// Sequence number of the last committed snapshot (0 before the
    /// first flush).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Marks `superstep` complete-and-immutable. The frontier never
    /// regresses: a recovery replaying an already-watermarked superstep
    /// re-announces the same frontier. Emits a [`WATERMARK_EVENT`] point
    /// and updates the [`WATERMARK_GAUGE`].
    pub fn advance_watermark(&mut self, superstep: u64) {
        let frontier = match self.watermark {
            Some(w) => w.max(superstep),
            None => superstep,
        };
        self.watermark = Some(frontier);
        self.obs.registry().set_gauge(WATERMARK_GAUGE, Scope::GLOBAL, frontier as i64);
        self.obs.point(
            WATERMARK_EVENT,
            Some(superstep),
            None,
            &[("frontier", frontier.to_string())],
        );
    }

    /// One incremental flush: appends the event-log delta, then commits
    /// `live/snapshot_<seq>.json` via write-temp-then-rename. Returns the
    /// committed sequence number.
    pub fn flush(&mut self, status: &str) -> FsResult<u64> {
        if self.seq == 0 {
            self.fs.mkdirs(&self.live_dir)?;
        }

        // Channel 1: append the new tail of the event log.
        let events = self.obs.events();
        let new = &events[self.events_flushed.min(events.len())..];
        for event in new {
            if event.is_point(STRAGGLER_EVENT) {
                let attr =
                    |k: &str| event.attrs.get(k).and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
                self.stragglers.push(StragglerRecord {
                    superstep: event.superstep.unwrap_or(0),
                    worker: event.worker.unwrap_or(0),
                    nanos: attr("nanos"),
                    median_nanos: attr("median_nanos"),
                });
            }
            if event.is_point("recovery") || event.is_end("recovery.confined") {
                self.recoveries += 1;
            }
        }
        self.buf.clear();
        write_jsonl_into(new, &mut self.buf);
        let reg = self.obs.registry();
        if !self.buf.is_empty() {
            let mut w = self.fs.append(&self.events_path)?;
            w.write_all(&self.buf).map_err(FsError::from)?;
            w.sync()?;
        }
        // Recorded before the metrics snapshot below so the appended
        // bytes are visible in the snapshot they paid for.
        reg.inc(FLUSH_BYTES_COUNTER, Scope::GLOBAL, self.buf.len() as u64);
        self.events_flushed = events.len();

        // Channel 2: commit the snapshot document.
        self.seq += 1;
        let metrics = self.obs.metrics();
        let snapshot = LiveSnapshot {
            seq: self.seq,
            status: status.to_string(),
            superstep: if status == STATUS_RUNNING {
                Some(self.watermark.map(|w| w + 1).unwrap_or(0))
            } else {
                self.watermark
            },
            watermark: self.watermark,
            recoveries: self.recoveries,
            workers: worker_progress(&metrics),
            stragglers: self.stragglers.clone(),
            metrics,
        };
        self.buf.clear();
        serde_json::to_vec_into(&snapshot, &mut self.buf)
            .expect("snapshot serialization is infallible");
        self.buf.push(b'\n');
        let name = format!("{SNAPSHOT_PREFIX}{}{SNAPSHOT_SUFFIX}", self.seq);
        let tmp = join(&self.live_dir, &format!("{name}{TMP_SUFFIX}"));
        self.fs.write_all(&tmp, &self.buf)?;
        self.fs.rename(&tmp, &join(&self.live_dir, &name))?;
        reg.inc(FLUSH_BYTES_COUNTER, Scope::GLOBAL, self.buf.len() as u64);
        reg.inc(FLUSHES_COUNTER, Scope::GLOBAL, 1);
        Ok(self.seq)
    }

    /// The terminal flush: commits a final snapshot with the given
    /// status and writes the `metrics.prom`/`metrics.json` artifacts.
    /// The event log needs no rewrite — it has been appended all along,
    /// so its bytes already equal a post-mortem `write_artifacts`.
    pub fn finalize(&mut self, status: &str) -> FsResult<u64> {
        let seq = self.flush(status)?;
        let snapshot = self.obs.metrics();
        self.fs.write_all(
            &join(&self.dir, METRICS_PROM_FILE),
            export::to_prometheus(&snapshot).as_bytes(),
        )?;
        self.fs.write_all(
            &join(&self.dir, METRICS_JSON_FILE),
            export::to_json(&snapshot).as_bytes(),
        )?;
        Ok(seq)
    }
}

/// Folds per-worker cumulative progress out of a metrics snapshot.
pub fn worker_progress(metrics: &MetricsSnapshot) -> Vec<WorkerProgress> {
    let mut map: BTreeMap<u64, WorkerProgress> = BTreeMap::new();
    for counter in &metrics.counters {
        if counter.name == "pregel_worker_compute_calls" {
            if let Some(worker) = counter.worker {
                let slot = map
                    .entry(worker)
                    .or_insert_with(|| WorkerProgress { worker, ..Default::default() });
                slot.compute_calls += counter.value;
            }
        }
    }
    for histogram in &metrics.histograms {
        if histogram.name == "worker_compute_nanos" && histogram.superstep.is_none() {
            if let Some(worker) = histogram.worker {
                let slot = map
                    .entry(worker)
                    .or_insert_with(|| WorkerProgress { worker, ..Default::default() });
                slot.compute_nanos += histogram.data.sum;
            }
        }
    }
    map.into_values().collect()
}

/// Committed snapshot files under `obs_dir/live` as `(seq, path)`,
/// ascending by sequence. Staging `.tmp` files and foreign names are
/// ignored. An absent live directory is an empty list, not an error.
pub fn snapshot_files(fs: &dyn FileSystem, obs_dir: &str) -> FsResult<Vec<(u64, String)>> {
    let live_dir = join(obs_dir, LIVE_DIR);
    let entries = match fs.list(&live_dir) {
        Ok(entries) => entries,
        Err(FsError::NotFound(_)) => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut out = Vec::new();
    for entry in entries {
        if !entry.is_file() {
            continue;
        }
        let name = entry.path.rsplit('/').next().unwrap_or("");
        let Some(stem) = name.strip_prefix(SNAPSHOT_PREFIX) else { continue };
        let Some(seq) = stem.strip_suffix(SNAPSHOT_SUFFIX) else { continue };
        if let Ok(seq) = seq.parse::<u64>() {
            out.push((seq, entry.path));
        }
    }
    out.sort_by_key(|(seq, _)| *seq);
    Ok(out)
}

/// The newest committed snapshot, if any. A candidate that vanished or
/// does not parse (a commit caught mid-publish on a backend without an
/// atomic rename) is skipped in favor of the next-newest.
pub fn latest_snapshot(fs: &dyn FileSystem, obs_dir: &str) -> FsResult<Option<LiveSnapshot>> {
    let files = snapshot_files(fs, obs_dir)?;
    for (_, path) in files.iter().rev() {
        match fs.read_all(path) {
            Ok(bytes) => {
                if let Ok(snapshot) = serde_json::from_slice::<LiveSnapshot>(&bytes) {
                    return Ok(Some(snapshot));
                }
            }
            Err(FsError::NotFound(_)) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(None)
}

/// Incremental event-log reader: tails `events.jsonl`, resumes from a
/// byte offset, tolerates a torn final line (carried until the next
/// poll completes it), and tracks the watermark frontier announced by
/// [`WATERMARK_EVENT`] records.
pub struct LiveLogReader<F: FileSystem> {
    watcher: TailWatcher<F>,
    /// A trailing partial line from the previous poll, not yet parsed.
    carry: Vec<u8>,
    watermark: Option<u64>,
}

impl<F: FileSystem> LiveLogReader<F> {
    /// Tails the event log under `obs_dir` from the beginning.
    pub fn new(fs: F, obs_dir: &str) -> Self {
        Self::with_offset(fs, obs_dir, 0)
    }

    /// Resumes tailing from `offset` — a value previously returned by
    /// [`LiveLogReader::offset`], i.e. a complete-line boundary.
    pub fn with_offset(fs: F, obs_dir: &str, offset: u64) -> Self {
        Self {
            watcher: TailWatcher::with_offset(fs, join(obs_dir, EVENTS_FILE), offset),
            carry: Vec::new(),
            watermark: None,
        }
    }

    /// Byte offset of the complete lines consumed so far. A torn final
    /// line is *not* counted: resuming from this offset re-reads it.
    pub fn offset(&self) -> u64 {
        self.watcher.offset() - self.carry.len() as u64
    }

    /// The highest watermark frontier seen in the log so far.
    pub fn watermark(&self) -> Option<u64> {
        self.watermark
    }

    /// One poll: parses every event that became complete since the last
    /// poll (possibly none).
    pub fn poll(&mut self) -> Result<Vec<Event>, String> {
        let path = self.watcher.path().to_string();
        let polled = self.watcher.poll().map_err(|e| format!("tail {path}: {e}"))?;
        let bytes = match polled {
            // An append-only log shrank: it was rewritten from scratch;
            // drop the fragment and consume the fresh contents whole.
            TailEvent::Truncated(bytes) => {
                self.carry.clear();
                bytes
            }
            TailEvent::Appended(bytes) => bytes,
            TailEvent::Absent | TailEvent::Unchanged => return Ok(Vec::new()),
        };
        self.carry.extend_from_slice(&bytes);
        let Some(cut) = self.carry.iter().rposition(|&b| b == b'\n') else {
            return Ok(Vec::new());
        };
        let complete: Vec<u8> = self.carry.drain(..=cut).collect();
        let text = String::from_utf8(complete).map_err(|e| format!("event log {path}: {e}"))?;
        let events = parse_jsonl(&text)?;
        for event in &events {
            if event.is_point(WATERMARK_EVENT) {
                if let Some(f) = event.attrs.get("frontier").and_then(|v| v.parse::<u64>().ok()) {
                    self.watermark = Some(self.watermark.map_or(f, |w| w.max(f)));
                }
            }
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_dfs::InMemoryFs;

    fn writer(fs: &InMemoryFs) -> (Arc<Obs>, LiveWriter) {
        let obs = Obs::deterministic(100);
        let writer = LiveWriter::new(Arc::new(fs.clone()), Arc::clone(&obs), "/obs");
        (obs, writer)
    }

    #[test]
    fn flush_appends_events_and_commits_snapshots() {
        let fs = InMemoryFs::new();
        let (obs, mut live) = writer(&fs);
        let begin = obs.begin("superstep", Some(0), None);
        obs.end("superstep", Some(0), None, begin, &[]);
        live.advance_watermark(0);
        assert_eq!(live.flush(STATUS_RUNNING).unwrap(), 1);
        let after_first = fs.read_all("/obs/events.jsonl").unwrap();
        assert_eq!(after_first.iter().filter(|&&b| b == b'\n').count(), 3);

        let begin = obs.begin("superstep", Some(1), None);
        obs.end("superstep", Some(1), None, begin, &[]);
        live.advance_watermark(1);
        assert_eq!(live.flush(STATUS_RUNNING).unwrap(), 2);
        // The first flush's bytes are a strict prefix: append-only.
        let after_second = fs.read_all("/obs/events.jsonl").unwrap();
        assert!(after_second.starts_with(&after_first));
        assert_eq!(String::from_utf8(after_second).unwrap(), crate::to_jsonl(&obs.events()));

        let snap = latest_snapshot(&fs, "/obs").unwrap().expect("snapshot committed");
        assert_eq!(snap.seq, 2);
        assert_eq!(snap.watermark, Some(1));
        assert_eq!(snap.superstep, Some(2));
        assert_eq!(snap.status, STATUS_RUNNING);
        // No staging file survives a commit.
        assert!(fs.list("/obs/live").unwrap().iter().all(|e| !e.path.ends_with(TMP_SUFFIX)));
        // The flush cost is accounted.
        assert!(obs.registry().counter_value(FLUSH_BYTES_COUNTER, Scope::GLOBAL) > 0);
        assert_eq!(obs.registry().counter_value(FLUSHES_COUNTER, Scope::GLOBAL), 2);
    }

    #[test]
    fn finalize_writes_metrics_artifacts_and_terminal_snapshot() {
        let fs = InMemoryFs::new();
        let (obs, mut live) = writer(&fs);
        obs.registry().inc("pregel_messages_sent", Scope::superstep(0), 3);
        live.advance_watermark(0);
        live.flush(STATUS_RUNNING).unwrap();
        live.finalize(STATUS_FINISHED).unwrap();
        let snap = latest_snapshot(&fs, "/obs").unwrap().unwrap();
        assert_eq!(snap.status, STATUS_FINISHED);
        assert_eq!(snap.superstep, Some(0));
        assert!(fs.exists("/obs/metrics.prom"));
        assert!(fs.exists("/obs/metrics.json"));
    }

    #[test]
    fn watermark_never_regresses() {
        let fs = InMemoryFs::new();
        let (_obs, mut live) = writer(&fs);
        live.advance_watermark(3);
        live.advance_watermark(1); // a recovery replays superstep 1
        assert_eq!(live.watermark(), Some(3));
    }

    #[test]
    fn latest_snapshot_skips_staging_and_garbage() {
        let fs = InMemoryFs::new();
        fs.write_all("/obs/live/snapshot_2.json.tmp", b"{torn").unwrap();
        fs.write_all("/obs/live/snapshot_9.json", b"not json").unwrap();
        assert!(latest_snapshot(&fs, "/obs").unwrap().is_none());
        let good = LiveSnapshot { seq: 1, status: STATUS_RUNNING.into(), ..Default::default() };
        fs.write_all("/obs/live/snapshot_1.json", serde_json::to_string(&good).unwrap().as_bytes())
            .unwrap();
        assert_eq!(latest_snapshot(&fs, "/obs").unwrap(), Some(good));
    }

    #[test]
    fn log_reader_carries_torn_lines_and_tracks_watermark() {
        let fs = InMemoryFs::new();
        let (obs, mut live) = writer(&fs);
        let mut reader = LiveLogReader::new(fs.clone(), "/obs");
        assert!(reader.poll().unwrap().is_empty());

        obs.point("job.start", None, None, &[]);
        live.advance_watermark(0);
        live.flush(STATUS_RUNNING).unwrap();
        let events = reader.poll().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(reader.watermark(), Some(0));

        // Tear the log mid-line: the fragment is carried, not parsed.
        let full_offset = reader.offset();
        let mut w = fs.append("/obs/events.jsonl").unwrap();
        w.write_all(b"{\"ts\":9,\"kind\":\"half").unwrap();
        w.sync().unwrap();
        assert!(reader.poll().unwrap().is_empty());
        assert_eq!(reader.offset(), full_offset, "torn bytes are not consumed");
        let rest =
            "\",\"edge\":\"P\",\"superstep\":null,\"worker\":null,\"dur\":null,\"attrs\":{}}\n";
        w.write_all(rest.as_bytes()).unwrap();
        w.sync().unwrap();
        let events = reader.poll().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "half");

        // A fresh reader resuming from the committed offset re-reads
        // nothing it should not.
        let mut resumed = LiveLogReader::with_offset(fs.clone(), "/obs", full_offset);
        let events = resumed.poll().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "half");
    }

    #[test]
    fn worker_progress_folds_calls_and_nanos() {
        let obs = Obs::deterministic(10);
        let reg = obs.registry();
        reg.inc("pregel_worker_compute_calls", Scope::at(0, 0), 5);
        reg.inc("pregel_worker_compute_calls", Scope::at(0, 1), 7);
        reg.inc("pregel_worker_compute_calls", Scope::at(1, 0), 2);
        reg.observe_time("worker_compute_nanos", Scope::worker(0), 100);
        reg.observe_time("worker_compute_nanos", Scope::worker(0), 50);
        reg.observe_time("worker_compute_nanos", Scope::worker(1), 30);
        let progress = worker_progress(&obs.metrics());
        assert_eq!(
            progress,
            vec![
                WorkerProgress { worker: 0, compute_calls: 12, compute_nanos: 150 },
                WorkerProgress { worker: 1, compute_calls: 2, compute_nanos: 30 },
            ]
        );
    }
}
