//! Time sources for observability.
//!
//! Two implementations share one trait:
//!
//! * [`WallClock`] reports real elapsed time — what a human profiling a
//!   run wants to see.
//! * [`TickClock`] is a logical clock: every reading advances a counter
//!   by a fixed step, so a run's timestamps depend only on the *sequence*
//!   of instrumentation calls, not on the machine. Two identical seeded
//!   runs produce byte-identical metric and event exports under it.
//!
//! Coordinator-thread code stamps events with [`Clock::now_nanos`].
//! Worker threads must never touch the shared counter (their interleaving
//! is nondeterministic); they measure durations with [`Clock::timer`],
//! which for the tick clock charges a fixed cost per measured operation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic time source.
pub trait Clock: Send + Sync {
    /// Current time in nanoseconds since the clock's epoch. Intended for
    /// single-threaded (coordinator) use: the tick clock advances on
    /// every call, so concurrent callers would entangle their streams.
    fn now_nanos(&self) -> u64;

    /// Starts a duration measurement that is safe on any thread.
    fn timer(&self) -> Timer;
}

/// An in-flight duration measurement; see [`Clock::timer`].
#[derive(Clone, Copy, Debug)]
pub enum Timer {
    /// Real elapsed time since the contained instant.
    Wall(Instant),
    /// Logical time: stopping always reports the contained fixed step.
    Tick(u64),
}

impl Timer {
    /// Elapsed nanoseconds since the timer started.
    pub fn stop(&self) -> u64 {
        match self {
            Timer::Wall(start) => start.elapsed().as_nanos() as u64,
            Timer::Tick(step) => *step,
        }
    }
}

/// Real time, measured from the clock's creation.
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is now.
    pub fn new() -> Self {
        Self { epoch: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn timer(&self) -> Timer {
        Timer::Wall(Instant::now())
    }
}

/// A deterministic logical clock: reading it advances time by a fixed
/// number of nanoseconds.
pub struct TickClock {
    step: u64,
    ticks: AtomicU64,
}

impl TickClock {
    /// A tick clock advancing `step_nanos` per reading (minimum 1).
    pub fn new(step_nanos: u64) -> Self {
        Self { step: step_nanos.max(1), ticks: AtomicU64::new(0) }
    }
}

impl Clock for TickClock {
    fn now_nanos(&self) -> u64 {
        (self.ticks.fetch_add(1, Ordering::SeqCst) + 1) * self.step
    }

    fn timer(&self) -> Timer {
        Timer::Tick(self.step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_clock_is_deterministic() {
        let a = TickClock::new(500);
        let b = TickClock::new(500);
        let seq_a: Vec<u64> = (0..4).map(|_| a.now_nanos()).collect();
        let seq_b: Vec<u64> = (0..4).map(|_| b.now_nanos()).collect();
        assert_eq!(seq_a, seq_b);
        assert_eq!(seq_a, vec![500, 1000, 1500, 2000]);
    }

    #[test]
    fn tick_timer_charges_fixed_cost() {
        let clock = TickClock::new(250);
        let t = clock.timer();
        assert_eq!(t.stop(), 250);
        // Timers never touch the shared counter.
        assert_eq!(clock.now_nanos(), 250);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let clock = WallClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }
}
