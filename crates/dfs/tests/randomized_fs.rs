//! Model-based randomized tests: the cluster backend must behave exactly
//! like the simple in-memory backend for any sequence of namespace
//! operations, and data must survive any set of fewer-than-r datanode
//! failures. Seeded generation keeps the sequences reproducible.

use graft_dfs::{ClusterFs, ClusterFsConfig, FileSystem, FsError, InMemoryFs};
use rand::{Rng, SeedableRng};

#[derive(Clone, Debug)]
enum Op {
    Write { path: usize, data: Vec<u8> },
    Read { path: usize },
    Mkdirs { dir: usize },
    Delete { path: usize, recursive: bool },
    List { dir: usize },
}

const PATHS: &[&str] = &["/a", "/a/x", "/a/y", "/b/deep/file", "/b/deep/other", "/c"];

const FLAT_PATHS: &[&str] = &["/f1", "/f2", "/dir/f3", "/dir/f4"];

const DIRS: &[&str] = &["/a", "/b", "/b/deep", "/d"];

fn random_op(rng: &mut rand::rngs::StdRng) -> Op {
    match rng.gen_range(0..5u32) {
        0 => Op::Write {
            path: rng.gen_range(0..PATHS.len()),
            data: (0..rng.gen_range(0..200usize)).map(|_| rng.gen_range(0..=u8::MAX)).collect(),
        },
        1 => Op::Read { path: rng.gen_range(0..PATHS.len()) },
        2 => Op::Mkdirs { dir: rng.gen_range(0..DIRS.len()) },
        3 => Op::Delete { path: rng.gen_range(0..PATHS.len()), recursive: rng.gen() },
        _ => Op::List { dir: rng.gen_range(0..DIRS.len()) },
    }
}

/// Collapses errors to a comparable discriminant: both backends must fail
/// the same way, but the error payloads may differ in detail.
fn kind(e: &FsError) -> &'static str {
    match e {
        FsError::NotFound(_) => "not_found",
        FsError::AlreadyExists(_) => "exists",
        FsError::NotAFile(_) => "not_a_file",
        FsError::NotADirectory(_) => "not_a_dir",
        FsError::DirectoryNotEmpty(_) => "not_empty",
        FsError::InvalidPath(_) => "invalid",
        _ => "other",
    }
}

#[test]
fn cluster_matches_memory_model() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xDF501);
    for _ in 0..64 {
        let ops: Vec<Op> = (0..rng.gen_range(1..40usize)).map(|_| random_op(&mut rng)).collect();
        let model = InMemoryFs::new();
        let cluster =
            ClusterFs::new(ClusterFsConfig { num_datanodes: 3, replication: 2, block_size: 32 });
        for op in ops {
            match op {
                Op::Write { path, data } => {
                    let a = model.write_all(PATHS[path], &data);
                    let b = cluster.write_all(PATHS[path], &data);
                    assert_eq!(a.is_ok(), b.is_ok(), "write {}", PATHS[path]);
                    if let (Err(ea), Err(eb)) = (&a, &b) {
                        assert_eq!(kind(ea), kind(eb));
                    }
                }
                Op::Read { path } => {
                    let a = model.read_all(PATHS[path]);
                    let b = cluster.read_all(PATHS[path]);
                    match (a, b) {
                        (Ok(da), Ok(db)) => assert_eq!(da, db),
                        (Err(ea), Err(eb)) => assert_eq!(kind(&ea), kind(&eb)),
                        (a, b) => panic!("read divergence: {a:?} vs {b:?}"),
                    }
                }
                Op::Mkdirs { dir } => {
                    let a = model.mkdirs(DIRS[dir]);
                    let b = cluster.mkdirs(DIRS[dir]);
                    assert_eq!(a.is_ok(), b.is_ok());
                }
                Op::Delete { path, recursive } => {
                    let a = model.delete(PATHS[path], recursive);
                    let b = cluster.delete(PATHS[path], recursive);
                    match (a, b) {
                        (Ok(()), Ok(())) => {}
                        (Err(ea), Err(eb)) => assert_eq!(kind(&ea), kind(&eb)),
                        (a, b) => panic!("delete divergence: {a:?} vs {b:?}"),
                    }
                }
                Op::List { dir } => {
                    let a = model.list(DIRS[dir]);
                    let b = cluster.list(DIRS[dir]);
                    match (a, b) {
                        (Ok(la), Ok(lb)) => assert_eq!(la, lb),
                        (Err(ea), Err(eb)) => assert_eq!(kind(&ea), kind(&eb)),
                        (a, b) => panic!("list divergence: {a:?} vs {b:?}"),
                    }
                }
            }
        }
        // The cluster must never leak blocks: every tracked block belongs
        // to some live file, and files account for all blocks.
        let stats = cluster.stats();
        let total_file_bytes: u64 =
            cluster.list_files_recursive("/").unwrap().iter().map(|f| f.len).sum();
        let min_blocks_needed = cluster
            .list_files_recursive("/")
            .unwrap()
            .iter()
            .map(|f| (f.len as usize).div_ceil(32))
            .sum::<usize>();
        assert!(
            stats.blocks >= min_blocks_needed,
            "blocks {} < minimum {} for {} bytes",
            stats.blocks,
            min_blocks_needed,
            total_file_bytes
        );
        // No more than one block per file beyond the minimum (the partial tail).
        let file_count = cluster.list_files_recursive("/").unwrap().len();
        assert!(stats.blocks <= min_blocks_needed + file_count);
    }
}

#[test]
fn data_survives_single_failure_with_r2() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xDF502);
    for _ in 0..32 {
        let files: Vec<(usize, Vec<u8>)> = (0..rng.gen_range(1..5usize))
            .map(|_| {
                (
                    rng.gen_range(0..FLAT_PATHS.len()),
                    (0..rng.gen_range(1..300usize)).map(|_| rng.gen_range(0..=u8::MAX)).collect(),
                )
            })
            .collect();
        let victim = rng.gen_range(0usize..3);
        let cluster =
            ClusterFs::new(ClusterFsConfig { num_datanodes: 3, replication: 2, block_size: 24 });
        let mut expected = std::collections::BTreeMap::new();
        for (path, data) in files {
            cluster.write_all(FLAT_PATHS[path], &data).unwrap();
            expected.insert(FLAT_PATHS[path].to_string(), data);
        }
        cluster.kill_datanode(victim).unwrap();
        for (path, data) in &expected {
            assert_eq!(&cluster.read_all(path).unwrap(), data);
        }
        // And after re-replication, a second (different) failure is fine.
        cluster.re_replicate();
        let second = (victim + 1) % 3;
        cluster.kill_datanode(second).unwrap();
        for (path, data) in &expected {
            assert_eq!(&cluster.read_all(path).unwrap(), data);
        }
    }
}
