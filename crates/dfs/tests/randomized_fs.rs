//! Model-based randomized tests: the cluster backend must behave exactly
//! like the simple in-memory backend for any sequence of namespace
//! operations, and data must survive any set of fewer-than-r datanode
//! failures. Seeded generation keeps the sequences reproducible.

use graft_dfs::{ClusterFs, ClusterFsConfig, FileSystem, FsError, InMemoryFs};
use rand::{Rng, SeedableRng};

#[derive(Clone, Debug)]
enum Op {
    Write { path: usize, data: Vec<u8> },
    Read { path: usize },
    Mkdirs { dir: usize },
    Delete { path: usize, recursive: bool },
    List { dir: usize },
}

const PATHS: &[&str] = &["/a", "/a/x", "/a/y", "/b/deep/file", "/b/deep/other", "/c"];

const FLAT_PATHS: &[&str] = &["/f1", "/f2", "/dir/f3", "/dir/f4"];

const DIRS: &[&str] = &["/a", "/b", "/b/deep", "/d"];

fn random_op(rng: &mut rand::rngs::StdRng) -> Op {
    match rng.gen_range(0..5u32) {
        0 => Op::Write {
            path: rng.gen_range(0..PATHS.len()),
            data: (0..rng.gen_range(0..200usize)).map(|_| rng.gen_range(0..=u8::MAX)).collect(),
        },
        1 => Op::Read { path: rng.gen_range(0..PATHS.len()) },
        2 => Op::Mkdirs { dir: rng.gen_range(0..DIRS.len()) },
        3 => Op::Delete { path: rng.gen_range(0..PATHS.len()), recursive: rng.gen() },
        _ => Op::List { dir: rng.gen_range(0..DIRS.len()) },
    }
}

/// Collapses errors to a comparable discriminant: both backends must fail
/// the same way, but the error payloads may differ in detail.
fn kind(e: &FsError) -> &'static str {
    match e {
        FsError::NotFound(_) => "not_found",
        FsError::AlreadyExists(_) => "exists",
        FsError::NotAFile(_) => "not_a_file",
        FsError::NotADirectory(_) => "not_a_dir",
        FsError::DirectoryNotEmpty(_) => "not_empty",
        FsError::InvalidPath(_) => "invalid",
        _ => "other",
    }
}

#[test]
fn cluster_matches_memory_model() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xDF501);
    for _ in 0..64 {
        let ops: Vec<Op> = (0..rng.gen_range(1..40usize)).map(|_| random_op(&mut rng)).collect();
        let model = InMemoryFs::new();
        let cluster =
            ClusterFs::new(ClusterFsConfig { num_datanodes: 3, replication: 2, block_size: 32 });
        for op in ops {
            match op {
                Op::Write { path, data } => {
                    let a = model.write_all(PATHS[path], &data);
                    let b = cluster.write_all(PATHS[path], &data);
                    assert_eq!(a.is_ok(), b.is_ok(), "write {}", PATHS[path]);
                    if let (Err(ea), Err(eb)) = (&a, &b) {
                        assert_eq!(kind(ea), kind(eb));
                    }
                }
                Op::Read { path } => {
                    let a = model.read_all(PATHS[path]);
                    let b = cluster.read_all(PATHS[path]);
                    match (a, b) {
                        (Ok(da), Ok(db)) => assert_eq!(da, db),
                        (Err(ea), Err(eb)) => assert_eq!(kind(&ea), kind(&eb)),
                        (a, b) => panic!("read divergence: {a:?} vs {b:?}"),
                    }
                }
                Op::Mkdirs { dir } => {
                    let a = model.mkdirs(DIRS[dir]);
                    let b = cluster.mkdirs(DIRS[dir]);
                    assert_eq!(a.is_ok(), b.is_ok());
                }
                Op::Delete { path, recursive } => {
                    let a = model.delete(PATHS[path], recursive);
                    let b = cluster.delete(PATHS[path], recursive);
                    match (a, b) {
                        (Ok(()), Ok(())) => {}
                        (Err(ea), Err(eb)) => assert_eq!(kind(&ea), kind(&eb)),
                        (a, b) => panic!("delete divergence: {a:?} vs {b:?}"),
                    }
                }
                Op::List { dir } => {
                    let a = model.list(DIRS[dir]);
                    let b = cluster.list(DIRS[dir]);
                    match (a, b) {
                        (Ok(la), Ok(lb)) => assert_eq!(la, lb),
                        (Err(ea), Err(eb)) => assert_eq!(kind(&ea), kind(&eb)),
                        (a, b) => panic!("list divergence: {a:?} vs {b:?}"),
                    }
                }
            }
        }
        // The cluster must never leak blocks: every tracked block belongs
        // to some live file, and files account for all blocks.
        let stats = cluster.stats();
        let total_file_bytes: u64 =
            cluster.list_files_recursive("/").unwrap().iter().map(|f| f.len).sum();
        let min_blocks_needed = cluster
            .list_files_recursive("/")
            .unwrap()
            .iter()
            .map(|f| (f.len as usize).div_ceil(32))
            .sum::<usize>();
        assert!(
            stats.blocks >= min_blocks_needed,
            "blocks {} < minimum {} for {} bytes",
            stats.blocks,
            min_blocks_needed,
            total_file_bytes
        );
        // No more than one block per file beyond the minimum (the partial tail).
        let file_count = cluster.list_files_recursive("/").unwrap().len();
        assert!(stats.blocks <= min_blocks_needed + file_count);
    }
}

/// Kill/revive/re-replicate storm: random datanode churn interleaved with
/// writes and reads. As long as at least one replica of every block
/// survives each kill (enforced by never dropping below `replication - 1`
/// simultaneous dead nodes, and healing between waves), no data may be
/// lost and every read must return exactly what was written.
#[test]
fn storm_of_kills_revives_and_re_replication_loses_no_data() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xDF503);
    for round in 0..16 {
        let num_nodes = 5usize;
        let cluster = ClusterFs::new(ClusterFsConfig {
            num_datanodes: num_nodes,
            replication: 3,
            block_size: 24,
        });
        let mut expected = std::collections::BTreeMap::new();
        let mut dead: Vec<usize> = Vec::new();
        for step in 0..rng.gen_range(20..60usize) {
            match rng.gen_range(0..6u32) {
                // Write or overwrite a file (also drives queued healing).
                0 | 1 => {
                    let path = FLAT_PATHS[rng.gen_range(0..FLAT_PATHS.len())];
                    let data: Vec<u8> = (0..rng.gen_range(1..200usize))
                        .map(|_| rng.gen_range(0..=u8::MAX))
                        .collect();
                    cluster.write_all(path, &data).unwrap();
                    expected.insert(path.to_string(), data);
                }
                // Read back a random known file.
                2 => {
                    if !expected.is_empty() {
                        let idx = rng.gen_range(0..expected.len());
                        let (path, data) = expected.iter().nth(idx).unwrap();
                        assert_eq!(
                            &cluster.read_all(path).unwrap(),
                            data,
                            "round {round} step {step}: data lost for {path} (dead: {dead:?})"
                        );
                    }
                }
                // Kill a node, but keep at most replication-1 = 2 dead at
                // once so every block always has a surviving replica.
                3 => {
                    if dead.len() < 2 {
                        let victim = rng.gen_range(0..num_nodes);
                        if !dead.contains(&victim) {
                            cluster.kill_datanode(victim).unwrap();
                            dead.push(victim);
                        }
                    }
                }
                // Revive one dead node; healing fires automatically.
                4 => {
                    if let Some(node) = dead.pop() {
                        cluster.revive_datanode(node).unwrap();
                    }
                }
                // Explicit re-replication sweep.
                _ => {
                    cluster.re_replicate();
                }
            }
        }
        // Settle: revive everything, heal, then verify the full namespace.
        for node in dead.drain(..) {
            cluster.revive_datanode(node).unwrap();
        }
        cluster.re_replicate();
        assert_eq!(cluster.stats().under_replicated, 0, "round {round}: heal left stragglers");
        for (path, data) in &expected {
            assert_eq!(&cluster.read_all(path).unwrap(), data, "round {round}: final check {path}");
        }
        // After full healing, any replication-1 nodes may die and data
        // must still be readable.
        for node in 0..2 {
            cluster.kill_datanode(node).unwrap();
        }
        for (path, data) in &expected {
            assert_eq!(&cluster.read_all(path).unwrap(), data, "round {round}: post-heal {path}");
        }
    }
}

#[test]
fn data_survives_single_failure_with_r2() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xDF502);
    for _ in 0..32 {
        let files: Vec<(usize, Vec<u8>)> = (0..rng.gen_range(1..5usize))
            .map(|_| {
                (
                    rng.gen_range(0..FLAT_PATHS.len()),
                    (0..rng.gen_range(1..300usize)).map(|_| rng.gen_range(0..=u8::MAX)).collect(),
                )
            })
            .collect();
        let victim = rng.gen_range(0usize..3);
        let cluster =
            ClusterFs::new(ClusterFsConfig { num_datanodes: 3, replication: 2, block_size: 24 });
        let mut expected = std::collections::BTreeMap::new();
        for (path, data) in files {
            cluster.write_all(FLAT_PATHS[path], &data).unwrap();
            expected.insert(FLAT_PATHS[path].to_string(), data);
        }
        cluster.kill_datanode(victim).unwrap();
        for (path, data) in &expected {
            assert_eq!(&cluster.read_all(path).unwrap(), data);
        }
        // And after re-replication, a second (different) failure is fine.
        cluster.re_replicate();
        let second = (victim + 1) % 3;
        cluster.kill_datanode(second).unwrap();
        for (path, data) in &expected {
            assert_eq!(&cluster.read_all(path).unwrap(), data);
        }
    }
}
