//! Block-based cluster file system: the HDFS simulation proper.
//!
//! Files are split into fixed-size blocks. Each block is replicated onto
//! `replication` distinct simulated datanodes chosen round-robin among the
//! live ones; a namenode (the `ClusterState` under the lock) maps file
//! paths to block lists and block ids to replica locations. Datanodes can
//! be killed and revived to exercise failure handling, and
//! [`ClusterFs::re_replicate`] restores the replication factor after
//! failures, as the HDFS namenode would.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::api::{FileKind, FileRead, FileStatus, FileSystem, FileWrite};
use crate::error::{FsError, FsResult};
use crate::observer::DfsObserver;
use crate::path::DfsPath;

/// Configuration for [`ClusterFs`].
#[derive(Clone, Copy, Debug)]
pub struct ClusterFsConfig {
    /// Number of simulated datanodes.
    pub num_datanodes: usize,
    /// Replicas per block. Must be ≥ 1 and ≤ `num_datanodes`.
    pub replication: usize,
    /// Block size in bytes. HDFS defaults to 128 MiB; the simulation
    /// defaults to 64 KiB so tests exercise multi-block files cheaply.
    pub block_size: usize,
}

impl Default for ClusterFsConfig {
    fn default() -> Self {
        Self { num_datanodes: 4, replication: 3, block_size: 64 * 1024 }
    }
}

type BlockId = u64;

#[derive(Clone, Debug)]
enum INode {
    Directory,
    File { blocks: Vec<BlockId>, len: u64 },
}

struct DataNode {
    alive: bool,
    blocks: HashMap<BlockId, Bytes>,
}

struct ClusterState {
    namespace: BTreeMap<String, INode>,
    datanodes: Vec<DataNode>,
    /// block id -> datanode indices holding a replica
    locations: HashMap<BlockId, Vec<usize>>,
    next_block: BlockId,
    placement_cursor: usize,
    /// Blocks whose live replica count is (or was last seen) below the
    /// replication factor — the namenode's re-replication work queue.
    /// Populated by degraded writes and datanode kills; drained by
    /// [`ClusterFs::re_replicate`], revives, and subsequent writes.
    degraded: BTreeSet<BlockId>,
}

/// Aggregate statistics about the simulated cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClusterStats {
    /// Datanodes currently alive.
    pub live_datanodes: usize,
    /// Total datanodes (alive or dead).
    pub total_datanodes: usize,
    /// Distinct blocks tracked by the namenode.
    pub blocks: usize,
    /// Total replicas stored across datanodes.
    pub replicas: usize,
    /// Blocks whose live replica count is below the replication factor.
    pub under_replicated: usize,
    /// Blocks with no live replica at all.
    pub unavailable: usize,
}

/// What sealing one block did — carried out of the namespace lock so
/// observers are notified without holding it.
#[derive(Clone, Copy, Debug)]
struct BlockSeal {
    bytes: u64,
    replicas: usize,
    degraded: bool,
    healed: u64,
    queue_depth: u64,
}

/// The HDFS-like [`FileSystem`] backend.
#[derive(Clone)]
pub struct ClusterFs {
    config: ClusterFsConfig,
    state: Arc<RwLock<ClusterState>>,
    observers: Arc<RwLock<Vec<Arc<dyn DfsObserver>>>>,
}

impl ClusterFs {
    /// Creates a cluster with the given configuration.
    ///
    /// # Panics
    /// Panics if the replication factor is zero or exceeds the number of
    /// datanodes, or if the block size is zero — those are configuration
    /// bugs, not runtime conditions.
    pub fn new(config: ClusterFsConfig) -> Self {
        assert!(config.replication >= 1, "replication factor must be >= 1");
        assert!(
            config.replication <= config.num_datanodes,
            "replication {} exceeds datanode count {}",
            config.replication,
            config.num_datanodes
        );
        assert!(config.block_size > 0, "block size must be > 0");
        let datanodes = (0..config.num_datanodes)
            .map(|_| DataNode { alive: true, blocks: HashMap::new() })
            .collect();
        Self {
            config,
            state: Arc::new(RwLock::new(ClusterState {
                namespace: BTreeMap::new(),
                datanodes,
                locations: HashMap::new(),
                next_block: 0,
                placement_cursor: 0,
                degraded: BTreeSet::new(),
            })),
            observers: Arc::new(RwLock::new(Vec::new())),
        }
    }

    /// The configuration the cluster was built with.
    pub fn config(&self) -> ClusterFsConfig {
        self.config
    }

    /// Registers an instrumentation observer (see [`DfsObserver`]).
    /// Observers are shared by every clone of this cluster handle.
    pub fn add_observer(&self, observer: Arc<dyn DfsObserver>) {
        self.observers.write().push(observer);
    }

    /// Runs `f` over every registered observer. Callers must not hold
    /// the state lock.
    fn notify(&self, f: impl Fn(&dyn DfsObserver)) {
        for obs in self.observers.read().iter() {
            f(obs.as_ref());
        }
    }

    /// Notifies observers about sealed blocks (and any healing a seal
    /// triggered), outside the state lock.
    fn notify_seals(&self, seals: &[BlockSeal]) {
        if seals.is_empty() || self.observers.read().is_empty() {
            return;
        }
        for seal in seals {
            self.notify(|obs| {
                obs.block_written(seal.bytes, seal.replicas, seal.degraded);
                if seal.healed > 0 {
                    obs.heal_completed(seal.healed, seal.queue_depth);
                }
            });
        }
    }

    /// Marks a datanode as failed. Its replicas become unreadable until
    /// it is revived or the cluster re-replicates. Every block that loses
    /// a live replica below the replication factor is queued for
    /// re-replication, which the next write (or revive) triggers.
    pub fn kill_datanode(&self, id: usize) -> FsResult<()> {
        let live = {
            let mut state = self.state.write();
            let node = state.datanodes.get_mut(id).ok_or(FsError::NoSuchDataNode(id))?;
            node.alive = false;
            let state = &mut *state;
            for (&block, holders) in &state.locations {
                let live = holders.iter().filter(|&&d| state.datanodes[d].alive).count();
                if live < self.config.replication {
                    state.degraded.insert(block);
                }
            }
            state.datanodes.iter().filter(|d| d.alive).count()
        };
        self.notify(|obs| obs.datanode_killed(id, live));
        Ok(())
    }

    /// Brings a failed datanode back, with all the replicas it held, and
    /// immediately re-replicates whatever the restored capacity allows.
    pub fn revive_datanode(&self, id: usize) -> FsResult<()> {
        let (live, created, queue_depth) = {
            let mut state = self.state.write();
            let node = state.datanodes.get_mut(id).ok_or(FsError::NoSuchDataNode(id))?;
            node.alive = true;
            let created = Self::heal(&mut state, &self.config);
            (
                state.datanodes.iter().filter(|d| d.alive).count(),
                created as u64,
                state.degraded.len() as u64,
            )
        };
        self.notify(|obs| {
            obs.datanode_revived(id, live);
            if created > 0 {
                obs.heal_completed(created, queue_depth);
            }
        });
        Ok(())
    }

    /// Copies under-replicated blocks to additional live datanodes until
    /// every block has `replication` live replicas (or no more nodes are
    /// available). Returns the number of new replicas created.
    pub fn re_replicate(&self) -> usize {
        let (created, queue_depth) = {
            let mut state = self.state.write();
            let created = Self::heal(&mut state, &self.config);
            (created, state.degraded.len() as u64)
        };
        if created > 0 {
            self.notify(|obs| obs.heal_completed(created as u64, queue_depth));
        }
        created
    }

    /// Works through the degraded-block queue, copying each block from a
    /// live holder to live non-holders until its replication factor is
    /// met. Blocks healed (or gone) leave the queue; blocks with no live
    /// replica stay queued for when a holder revives.
    fn heal(state: &mut ClusterState, config: &ClusterFsConfig) -> usize {
        let mut created = 0;
        let queue: Vec<BlockId> = state.degraded.iter().copied().collect();
        for block in queue {
            let Some(holders) = state.locations.get(&block).cloned() else {
                // The owning file was deleted or rewritten.
                state.degraded.remove(&block);
                continue;
            };
            let live_holders: Vec<usize> =
                holders.iter().copied().filter(|&d| state.datanodes[d].alive).collect();
            if live_holders.len() >= config.replication {
                state.degraded.remove(&block);
                continue;
            }
            let Some(&source) = live_holders.first() else { continue };
            let needed = config.replication - live_holders.len();
            let data = state.datanodes[source].blocks[&block].clone();
            let candidates: Vec<usize> = (0..state.datanodes.len())
                .filter(|&d| state.datanodes[d].alive && !holders.contains(&d))
                .collect();
            for d in candidates.into_iter().take(needed) {
                state.datanodes[d].blocks.insert(block, data.clone());
                state.locations.entry(block).or_default().push(d);
                created += 1;
            }
            let live_now =
                state.locations[&block].iter().filter(|&&d| state.datanodes[d].alive).count();
            if live_now >= config.replication {
                state.degraded.remove(&block);
            }
        }
        created
    }

    /// Current aggregate statistics.
    pub fn stats(&self) -> ClusterStats {
        let state = self.state.read();
        let live = state.datanodes.iter().filter(|d| d.alive).count();
        let replicas = state.datanodes.iter().map(|d| d.blocks.len()).sum();
        let mut under = 0;
        let mut unavailable = 0;
        for holders in state.locations.values() {
            let live_holders = holders.iter().filter(|&&d| state.datanodes[d].alive).count();
            if live_holders == 0 {
                unavailable += 1;
            }
            if live_holders < self.config.replication {
                under += 1;
            }
        }
        ClusterStats {
            live_datanodes: live,
            total_datanodes: state.datanodes.len(),
            blocks: state.locations.len(),
            replicas,
            under_replicated: under,
            unavailable,
        }
    }

    /// Bytes of replica data held by each datanode, for balance checks.
    pub fn bytes_per_datanode(&self) -> Vec<u64> {
        let state = self.state.read();
        state.datanodes.iter().map(|d| d.blocks.values().map(|b| b.len() as u64).sum()).collect()
    }

    fn ensure_parents(state: &mut ClusterState, path: &DfsPath) -> FsResult<()> {
        let mut current = DfsPath::root();
        for component in path.components() {
            if !current.is_root() {
                match state.namespace.get(current.as_str()) {
                    Some(INode::File { .. }) => {
                        return Err(FsError::NotADirectory(current.to_string()))
                    }
                    _ => {
                        state
                            .namespace
                            .entry(current.as_str().to_string())
                            .or_insert(INode::Directory);
                    }
                }
            }
            current = current.join(component)?;
        }
        Ok(())
    }

    fn drop_file_blocks(state: &mut ClusterState, blocks: &[BlockId]) {
        for block in blocks {
            state.degraded.remove(block);
            if let Some(holders) = state.locations.remove(block) {
                for d in holders {
                    state.datanodes[d].blocks.remove(block);
                }
            }
        }
    }

    /// Seals one block: assigns an id, places replicas, records locations.
    ///
    /// Writes degrade rather than fail: with fewer live datanodes than
    /// the replication factor the block is placed on every live node,
    /// queued as under-replicated, and healed when capacity returns (as
    /// HDFS accepts writes into a shrunken pipeline). Only a cluster with
    /// zero live datanodes rejects the write. Sealing also works through
    /// the pending re-replication queue, so writes are what drive
    /// recovery of earlier degraded blocks.
    fn seal_block(&self, state: &mut ClusterState, data: Bytes) -> FsResult<(BlockId, BlockSeal)> {
        let live: Vec<usize> =
            (0..state.datanodes.len()).filter(|&d| state.datanodes[d].alive).collect();
        if live.is_empty() {
            return Err(FsError::InsufficientDataNodes {
                live: 0,
                needed: self.config.replication,
            });
        }
        let bytes = data.len() as u64;
        let block = state.next_block;
        state.next_block += 1;
        let targets = live.len().min(self.config.replication);
        let mut holders = Vec::with_capacity(targets);
        for k in 0..targets {
            let node = live[(state.placement_cursor + k) % live.len()];
            state.datanodes[node].blocks.insert(block, data.clone());
            holders.push(node);
        }
        state.placement_cursor = state.placement_cursor.wrapping_add(1);
        state.locations.insert(block, holders);
        let degraded = targets < self.config.replication;
        if degraded {
            state.degraded.insert(block);
        }
        let healed = Self::heal(state, &self.config) as u64;
        let seal = BlockSeal {
            bytes,
            replicas: targets,
            degraded,
            healed,
            queue_depth: state.degraded.len() as u64,
        };
        Ok((block, seal))
    }
}

impl FileSystem for ClusterFs {
    fn create(&self, path: &str) -> FsResult<Box<dyn FileWrite>> {
        let path = DfsPath::parse(path)?;
        if path.is_root() {
            return Err(FsError::NotAFile(path.to_string()));
        }
        let mut state = self.state.write();
        Self::ensure_parents(&mut state, &path)?;
        match state.namespace.get(path.as_str()).cloned() {
            Some(INode::Directory) => return Err(FsError::NotAFile(path.to_string())),
            Some(INode::File { blocks, .. }) => {
                Self::drop_file_blocks(&mut state, &blocks);
            }
            None => {}
        }
        state
            .namespace
            .insert(path.as_str().to_string(), INode::File { blocks: Vec::new(), len: 0 });
        Ok(Box::new(ClusterWriter {
            fs: self.clone(),
            path: path.as_str().to_string(),
            pending: Vec::new(),
            sealed: Vec::new(),
            sealed_len: 0,
            committed_len: None,
        }))
    }

    fn open(&self, path: &str) -> FsResult<Box<dyn FileRead>> {
        self.tail(path, 0)
    }

    fn tail(&self, path: &str, offset: u64) -> FsResult<Box<dyn FileRead>> {
        let path = DfsPath::parse(path)?;
        let state = self.state.read();
        match state.namespace.get(path.as_str()) {
            Some(INode::File { blocks, len }) => {
                let skip = offset.min(*len);
                let block_size = self.config.block_size as u64;
                let block_idx = ((skip / block_size) as usize).min(blocks.len());
                // Fail fast when a block we will read has no live replica
                // at open time, but resolve block data lazily at read
                // time: each read picks any live replica then, so a
                // datanode dying between open and read fails over instead
                // of erroring. Blocks wholly before `offset` are skipped
                // without touching their replicas at all.
                for block in &blocks[block_idx..] {
                    let holders = state.locations.get(block).ok_or(FsError::BlockUnavailable {
                        path: path.to_string(),
                        block: *block,
                    })?;
                    holders.iter().copied().find(|&d| state.datanodes[d].alive).ok_or(
                        FsError::BlockUnavailable { path: path.to_string(), block: *block },
                    )?;
                }
                Ok(Box::new(ClusterReader {
                    fs: self.clone(),
                    path: path.to_string(),
                    blocks: blocks.clone(),
                    len: *len - skip,
                    block_idx,
                    offset: (skip % block_size) as usize,
                    current: None,
                }))
            }
            Some(INode::Directory) => Err(FsError::NotAFile(path.to_string())),
            None => Err(FsError::NotFound(path.to_string())),
        }
    }

    fn list(&self, path: &str) -> FsResult<Vec<FileStatus>> {
        let path = DfsPath::parse(path)?;
        let state = self.state.read();
        if !path.is_root() {
            match state.namespace.get(path.as_str()) {
                Some(INode::Directory) => {}
                Some(INode::File { .. }) => return Err(FsError::NotADirectory(path.to_string())),
                None => return Err(FsError::NotFound(path.to_string())),
            }
        }
        let mut out = Vec::new();
        for (entry_path, node) in state.namespace.iter() {
            let entry = DfsPath::parse(entry_path).expect("stored paths are normalized");
            if entry.parent().as_ref() == Some(&path) {
                out.push(FileStatus {
                    path: entry_path.clone(),
                    kind: match node {
                        INode::File { .. } => FileKind::File,
                        INode::Directory => FileKind::Directory,
                    },
                    len: match node {
                        INode::File { len, .. } => *len,
                        INode::Directory => 0,
                    },
                });
            }
        }
        Ok(out)
    }

    fn status(&self, path: &str) -> FsResult<FileStatus> {
        let path = DfsPath::parse(path)?;
        if path.is_root() {
            return Ok(FileStatus { path: "/".into(), kind: FileKind::Directory, len: 0 });
        }
        let state = self.state.read();
        match state.namespace.get(path.as_str()) {
            Some(INode::File { len, .. }) => {
                Ok(FileStatus { path: path.to_string(), kind: FileKind::File, len: *len })
            }
            Some(INode::Directory) => {
                Ok(FileStatus { path: path.to_string(), kind: FileKind::Directory, len: 0 })
            }
            None => Err(FsError::NotFound(path.to_string())),
        }
    }

    fn exists(&self, path: &str) -> bool {
        match DfsPath::parse(path) {
            Ok(p) => p.is_root() || self.state.read().namespace.contains_key(p.as_str()),
            Err(_) => false,
        }
    }

    fn mkdirs(&self, path: &str) -> FsResult<()> {
        let path = DfsPath::parse(path)?;
        let mut state = self.state.write();
        Self::ensure_parents(&mut state, &path)?;
        if path.is_root() {
            return Ok(());
        }
        match state.namespace.get(path.as_str()) {
            Some(INode::File { .. }) => Err(FsError::NotADirectory(path.to_string())),
            _ => {
                state.namespace.insert(path.as_str().to_string(), INode::Directory);
                Ok(())
            }
        }
    }

    fn append(&self, path: &str) -> FsResult<Box<dyn FileWrite>> {
        let path = DfsPath::parse(path)?;
        if path.is_root() {
            return Err(FsError::NotAFile(path.to_string()));
        }
        let (blocks, len) = {
            let mut state = self.state.write();
            Self::ensure_parents(&mut state, &path)?;
            match state.namespace.get(path.as_str()).cloned() {
                Some(INode::Directory) => return Err(FsError::NotAFile(path.to_string())),
                Some(INode::File { blocks, len }) => (blocks, len),
                None => {
                    state.namespace.insert(
                        path.as_str().to_string(),
                        INode::File { blocks: Vec::new(), len: 0 },
                    );
                    (Vec::new(), 0)
                }
            }
        };
        // Every block but the last is exactly block-sized; the trailing
        // partial block (if any) is pulled back into the writer's pending
        // buffer so the next sync re-seals it extended — appends cost
        // O(delta + one partial block), never a whole-file rewrite.
        let block_size = self.config.block_size as u64;
        let full = if len.is_multiple_of(block_size) {
            blocks.len()
        } else {
            blocks.len().saturating_sub(1)
        };
        let mut pending = Vec::new();
        for block in &blocks[full..] {
            pending.extend_from_slice(&self.fetch_block(path.as_str(), *block)?);
        }
        Ok(Box::new(ClusterWriter {
            fs: self.clone(),
            path: path.as_str().to_string(),
            pending,
            sealed: blocks[..full].to_vec(),
            sealed_len: full as u64 * block_size,
            committed_len: Some(len),
        }))
    }

    fn delete(&self, path: &str, recursive: bool) -> FsResult<()> {
        let path = DfsPath::parse(path)?;
        let mut state = self.state.write();
        if path.is_root() {
            if !recursive && !state.namespace.is_empty() {
                return Err(FsError::DirectoryNotEmpty(path.to_string()));
            }
            let all: Vec<String> = state.namespace.keys().cloned().collect();
            for p in all {
                if let Some(INode::File { blocks, .. }) = state.namespace.remove(&p) {
                    Self::drop_file_blocks(&mut state, &blocks);
                }
            }
            return Ok(());
        }
        match state.namespace.get(path.as_str()).cloned() {
            None => return Err(FsError::NotFound(path.to_string())),
            Some(INode::File { blocks, .. }) => {
                state.namespace.remove(path.as_str());
                Self::drop_file_blocks(&mut state, &blocks);
                return Ok(());
            }
            Some(INode::Directory) => {}
        }
        let children: Vec<String> = state
            .namespace
            .range(path.as_str().to_string()..)
            .take_while(|(k, _)| {
                DfsPath::parse(k).expect("stored paths are normalized").starts_with(&path)
            })
            .map(|(k, _)| k.clone())
            .collect();
        if children.len() > 1 && !recursive {
            return Err(FsError::DirectoryNotEmpty(path.to_string()));
        }
        for child in children {
            if let Some(INode::File { blocks, .. }) = state.namespace.remove(&child) {
                Self::drop_file_blocks(&mut state, &blocks);
            }
        }
        Ok(())
    }
}

struct ClusterWriter {
    fs: ClusterFs,
    path: String,
    pending: Vec<u8>,
    sealed: Vec<BlockId>,
    sealed_len: u64,
    /// Total bytes committed by the last `commit`, if any. A commit with
    /// no new data since (e.g. the drop after an explicit sync) is a
    /// no-op instead of re-sealing the trailing partial block.
    committed_len: Option<u64>,
}

impl ClusterWriter {
    fn seal_full_blocks(&mut self) -> FsResult<()> {
        let block_size = self.fs.config.block_size;
        let mut seals = Vec::new();
        while self.pending.len() >= block_size {
            let rest = self.pending.split_off(block_size);
            let full = std::mem::replace(&mut self.pending, rest);
            let mut state = self.fs.state.write();
            let (id, seal) = self.fs.seal_block(&mut state, Bytes::from(full))?;
            drop(state);
            seals.push(seal);
            self.sealed.push(id);
            self.sealed_len += block_size as u64;
        }
        self.fs.notify_seals(&seals);
        Ok(())
    }

    fn commit(&mut self) -> FsResult<()> {
        self.seal_full_blocks()?;
        let total = self.sealed_len + self.pending.len() as u64;
        if self.committed_len == Some(total) {
            return Ok(());
        }
        let mut seals = Vec::new();
        {
            let mut state = self.fs.state.write();
            let mut blocks = self.sealed.clone();
            let mut len = self.sealed_len;
            if !self.pending.is_empty() {
                // The trailing partial block is sealed on every sync; a later
                // sync with more data replaces it.
                let tail = Bytes::from(self.pending.clone());
                len += tail.len() as u64;
                let (id, seal) = self.fs.seal_block(&mut state, tail)?;
                seals.push(seal);
                blocks.push(id);
            }
            if let Some(INode::File { blocks: old, .. }) =
                state.namespace.insert(self.path.clone(), INode::File { blocks, len })
            {
                let stale: Vec<BlockId> =
                    old.into_iter().filter(|b| !self.sealed.contains(b)).collect();
                ClusterFs::drop_file_blocks(&mut state, &stale);
            }
        }
        self.committed_len = Some(total);
        self.fs.notify_seals(&seals);
        Ok(())
    }
}

impl Write for ClusterWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.pending.extend_from_slice(data);
        if self.pending.len() >= 4 * self.fs.config.block_size {
            self.seal_full_blocks()?;
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl FileWrite for ClusterWriter {
    fn sync(&mut self) -> FsResult<()> {
        self.commit()
    }
}

impl Drop for ClusterWriter {
    fn drop(&mut self) {
        let _ = self.commit();
    }
}

/// Read retries per block before reporting it unavailable.
const READ_ATTEMPTS: usize = 3;
/// Initial retry backoff; doubles per attempt.
const READ_BACKOFF: Duration = Duration::from_micros(200);

/// A lazy, replica-failover reader: block data is resolved at read time
/// against whichever replicas are live *then*. A first-choice replica
/// dying mid-read makes the reader try the remaining holders, retrying
/// with bounded exponential backoff before giving up — so reads survive
/// any failure sequence that leaves at least one live replica.
struct ClusterReader {
    fs: ClusterFs,
    path: String,
    blocks: Vec<BlockId>,
    len: u64,
    block_idx: usize,
    offset: usize,
    current: Option<Bytes>,
}

impl ClusterFs {
    /// Fetches one block from any live replica, with bounded retry and
    /// backoff — the replica-failover primitive shared by reads, tails,
    /// and appends (which must pull back the trailing partial block).
    fn fetch_block(&self, path: &str, block: BlockId) -> FsResult<Bytes> {
        let mut backoff = READ_BACKOFF;
        // Dead or incomplete replicas skipped (plus retry rounds) before
        // a live holder served the block — reported to observers.
        let mut failovers = 0u64;
        for attempt in 0..READ_ATTEMPTS {
            let found = {
                let state = self.state.read();
                if let Some(holders) = state.locations.get(&block) {
                    let mut data = None;
                    for &d in holders {
                        if state.datanodes[d].alive {
                            if let Some(bytes) = state.datanodes[d].blocks.get(&block) {
                                data = Some(bytes.clone());
                                break;
                            }
                        }
                        failovers += 1;
                    }
                    data
                } else {
                    // The block is gone (file deleted/rewritten since
                    // open); waiting will not bring it back.
                    break;
                }
            };
            if let Some(data) = found {
                let bytes = data.len() as u64;
                self.notify(|obs| obs.block_read(bytes, failovers));
                return Ok(data);
            }
            if attempt + 1 < READ_ATTEMPTS {
                std::thread::sleep(backoff);
                backoff *= 2;
            }
        }
        Err(FsError::BlockUnavailable { path: path.to_string(), block })
    }
}

impl Read for ClusterReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        while self.block_idx < self.blocks.len() {
            if self.current.is_none() {
                let data = self.fs.fetch_block(&self.path, self.blocks[self.block_idx])?;
                self.current = Some(data);
            }
            let chunk = self.current.as_ref().expect("chunk just fetched");
            if self.offset < chunk.len() {
                let available = &chunk[self.offset..];
                let n = available.len().min(out.len());
                out[..n].copy_from_slice(&available[..n]);
                self.offset += n;
                return Ok(n);
            }
            self.block_idx += 1;
            self.offset = 0;
            self.current = None;
        }
        Ok(0)
    }
}

impl FileRead for ClusterReader {
    fn len(&self) -> u64 {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster() -> ClusterFs {
        ClusterFs::new(ClusterFsConfig { num_datanodes: 4, replication: 2, block_size: 16 })
    }

    #[test]
    fn multi_block_roundtrip() {
        let fs = small_cluster();
        let data: Vec<u8> = (0..200u8).collect();
        fs.write_all("/f", &data).unwrap();
        assert_eq!(fs.read_all("/f").unwrap(), data);
        let stats = fs.stats();
        // 200 bytes / 16-byte blocks = 13 blocks, 2 replicas each.
        assert_eq!(stats.blocks, 13);
        assert_eq!(stats.replicas, 26);
        assert_eq!(stats.under_replicated, 0);
    }

    #[test]
    fn survives_fewer_than_r_failures() {
        let fs = small_cluster();
        let data = vec![7u8; 500];
        fs.write_all("/f", &data).unwrap();
        fs.kill_datanode(0).unwrap();
        assert_eq!(fs.read_all("/f").unwrap(), data, "one failure with r=2 must be survivable");
    }

    #[test]
    fn re_replication_restores_durability() {
        let fs = small_cluster();
        let data = vec![9u8; 300];
        fs.write_all("/f", &data).unwrap();
        fs.kill_datanode(0).unwrap();
        assert!(fs.stats().under_replicated > 0);
        let created = fs.re_replicate();
        assert!(created > 0);
        assert_eq!(fs.stats().under_replicated, 0);
        // Now a second failure among the original nodes is survivable.
        fs.kill_datanode(1).unwrap();
        assert_eq!(fs.read_all("/f").unwrap(), data);
    }

    #[test]
    fn unavailable_block_reported() {
        let fs =
            ClusterFs::new(ClusterFsConfig { num_datanodes: 2, replication: 2, block_size: 16 });
        fs.write_all("/f", b"some data that spans blocks....").unwrap();
        fs.kill_datanode(0).unwrap();
        fs.kill_datanode(1).unwrap();
        assert!(matches!(fs.open("/f"), Err(FsError::BlockUnavailable { .. })));
        fs.revive_datanode(0).unwrap();
        assert!(fs.open("/f").is_ok());
    }

    #[test]
    fn create_fails_only_with_zero_live_nodes() {
        let fs = small_cluster();
        for d in 0..4 {
            fs.kill_datanode(d).unwrap();
        }
        let err = fs.write_all("/f", b"data").unwrap_err();
        assert!(matches!(err, FsError::InsufficientDataNodes { live: 0, needed: 2 }));
    }

    #[test]
    fn degraded_write_heals_when_capacity_returns() {
        let fs = small_cluster();
        fs.kill_datanode(0).unwrap();
        fs.kill_datanode(1).unwrap();
        fs.kill_datanode(2).unwrap();
        // One live node, replication 2: the write succeeds degraded.
        let data = vec![5u8; 100];
        fs.write_all("/f", &data).unwrap();
        assert_eq!(fs.read_all("/f").unwrap(), data);
        assert!(fs.stats().under_replicated > 0);
        // Reviving a node re-replicates automatically.
        fs.revive_datanode(0).unwrap();
        assert_eq!(fs.stats().under_replicated, 0);
        fs.kill_datanode(3).unwrap();
        assert_eq!(fs.read_all("/f").unwrap(), data, "healed replicas must carry the data");
    }

    #[test]
    fn writes_trigger_re_replication_of_earlier_blocks() {
        let fs = small_cluster();
        let data = vec![3u8; 200];
        fs.write_all("/old", &data).unwrap();
        fs.kill_datanode(0).unwrap();
        assert!(fs.stats().under_replicated > 0);
        // No explicit re_replicate() call: a later write works the queue.
        fs.write_all("/new", b"fresh data").unwrap();
        assert_eq!(fs.stats().under_replicated, 0);
        fs.kill_datanode(1).unwrap();
        assert_eq!(fs.read_all("/old").unwrap(), data);
    }

    #[test]
    fn read_fails_over_when_replica_dies_mid_read() {
        let fs = small_cluster();
        let data: Vec<u8> = (0..=255u8).cycle().take(400).collect();
        fs.write_all("/f", &data).unwrap();
        let mut reader = fs.open("/f").unwrap();
        let mut first = vec![0u8; 40];
        reader.read_exact(&mut first).unwrap();
        // Kill one node *after* open: remaining replicas must serve the
        // rest of the file (r=2 tolerates one failure).
        fs.kill_datanode(2).unwrap();
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert_eq!([first, rest].concat(), data);
    }

    #[test]
    fn read_reports_unavailable_after_bounded_retries() {
        let fs =
            ClusterFs::new(ClusterFsConfig { num_datanodes: 2, replication: 2, block_size: 16 });
        fs.write_all("/f", &[9u8; 64]).unwrap();
        let mut reader = fs.open("/f").unwrap();
        fs.kill_datanode(0).unwrap();
        fs.kill_datanode(1).unwrap();
        let mut buf = Vec::new();
        let err = reader.read_to_end(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Other);
    }

    #[test]
    fn truncating_create_frees_blocks() {
        let fs = small_cluster();
        fs.write_all("/f", &[1u8; 160]).unwrap();
        let before = fs.stats().blocks;
        assert_eq!(before, 10);
        fs.write_all("/f", b"tiny").unwrap();
        assert_eq!(fs.stats().blocks, 1);
        assert_eq!(fs.read_all("/f").unwrap(), b"tiny");
    }

    #[test]
    fn delete_frees_blocks() {
        let fs = small_cluster();
        fs.write_all("/d/f1", &[1u8; 64]).unwrap();
        fs.write_all("/d/f2", &[2u8; 64]).unwrap();
        assert!(fs.stats().blocks > 0);
        fs.delete("/d", true).unwrap();
        assert_eq!(fs.stats().blocks, 0);
        assert_eq!(fs.stats().replicas, 0);
    }

    #[test]
    fn placement_is_balanced() {
        let fs =
            ClusterFs::new(ClusterFsConfig { num_datanodes: 4, replication: 1, block_size: 10 });
        fs.write_all("/f", &vec![0u8; 400]).unwrap(); // 40 blocks
        let per_node = fs.bytes_per_datanode();
        assert_eq!(per_node.len(), 4);
        let (min, max) = (per_node.iter().min().unwrap(), per_node.iter().max().unwrap());
        assert!(max - min <= 10, "imbalanced placement: {per_node:?}");
    }

    #[test]
    fn append_reopens_at_end_without_rewriting_sealed_blocks() {
        let fs = small_cluster();
        // 40 bytes over 16-byte blocks: two sealed full blocks + a
        // trailing 8-byte partial.
        let first: Vec<u8> = (0..40u8).collect();
        fs.write_all("/log", &first).unwrap();
        let blocks_before = fs.stats().blocks;
        let mut w = fs.append("/log").unwrap();
        w.write_all(&[100u8; 4]).unwrap();
        w.sync().unwrap();
        let expected = [first.clone(), vec![100u8; 4]].concat();
        assert_eq!(fs.read_all("/log").unwrap(), expected);
        // The two full blocks were reused; only the partial was re-sealed.
        assert_eq!(fs.stats().blocks, blocks_before);
        drop(w);
        assert_eq!(fs.read_all("/log").unwrap(), expected);
        // Appending to a missing path creates the file.
        let mut w = fs.append("/fresh").unwrap();
        w.write_all(b"x").unwrap();
        drop(w);
        assert_eq!(fs.read_all("/fresh").unwrap(), b"x");
    }

    #[test]
    fn append_survives_replica_failure_on_partial_block() {
        let fs = small_cluster();
        fs.write_all("/log", &[7u8; 24]).unwrap();
        // r=2 tolerates one dead node; the append must fetch the partial
        // tail block from the surviving replica.
        fs.kill_datanode(0).unwrap();
        let mut w = fs.append("/log").unwrap();
        w.write_all(&[8u8; 8]).unwrap();
        drop(w);
        assert_eq!(fs.read_all("/log").unwrap(), [[7u8; 24].as_slice(), &[8u8; 8]].concat());
    }

    #[test]
    fn tail_skips_whole_blocks() {
        let fs = small_cluster();
        let data: Vec<u8> = (0..100u8).collect();
        fs.write_all("/f", &data).unwrap();
        // Offset 40 lands at a block boundary (16-byte blocks): the first
        // two-and-a-half blocks' replicas are never touched.
        let mut r = fs.tail("/f", 40).unwrap();
        assert_eq!(r.len(), 60);
        let mut rest = Vec::new();
        r.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, &data[40..]);
        // Offset at or past the end yields an empty reader.
        let mut r = fs.tail("/f", 100).unwrap();
        assert_eq!(r.len(), 0);
        let mut rest = Vec::new();
        r.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
    }

    #[test]
    fn incremental_sync_extends_file() {
        let fs = small_cluster();
        let mut w = fs.create("/log").unwrap();
        w.write_all(b"first ").unwrap();
        w.sync().unwrap();
        assert_eq!(fs.read_all("/log").unwrap(), b"first ");
        w.write_all(b"second").unwrap();
        w.sync().unwrap();
        assert_eq!(fs.read_all("/log").unwrap(), b"first second");
    }

    #[test]
    fn directory_semantics_match_memory_backend() {
        let fs = small_cluster();
        fs.write_all("/a/b/c.txt", b"x").unwrap();
        assert_eq!(fs.status("/a").unwrap().kind, FileKind::Directory);
        assert!(matches!(fs.list("/a/b/c.txt"), Err(FsError::NotADirectory(_))));
        assert!(matches!(fs.delete("/a", false), Err(FsError::DirectoryNotEmpty(_))));
        let names: Vec<String> =
            fs.list_files_recursive("/").unwrap().into_iter().map(|s| s.path).collect();
        assert_eq!(names, vec!["/a/b/c.txt"]);
    }

    #[test]
    #[should_panic(expected = "replication")]
    fn invalid_replication_panics() {
        ClusterFs::new(ClusterFsConfig { num_datanodes: 2, replication: 3, block_size: 16 });
    }

    #[derive(Default)]
    struct RecordingObserver {
        blocks_written: std::sync::atomic::AtomicU64,
        bytes_written: std::sync::atomic::AtomicU64,
        degraded_writes: std::sync::atomic::AtomicU64,
        blocks_read: std::sync::atomic::AtomicU64,
        failovers: std::sync::atomic::AtomicU64,
        replicas_healed: std::sync::atomic::AtomicU64,
        kills: std::sync::atomic::AtomicU64,
        revives: std::sync::atomic::AtomicU64,
    }

    impl DfsObserver for RecordingObserver {
        fn block_written(&self, bytes: u64, _replicas: usize, degraded: bool) {
            use std::sync::atomic::Ordering::SeqCst;
            self.blocks_written.fetch_add(1, SeqCst);
            self.bytes_written.fetch_add(bytes, SeqCst);
            if degraded {
                self.degraded_writes.fetch_add(1, SeqCst);
            }
        }

        fn block_read(&self, _bytes: u64, failovers: u64) {
            use std::sync::atomic::Ordering::SeqCst;
            self.blocks_read.fetch_add(1, SeqCst);
            self.failovers.fetch_add(failovers, SeqCst);
        }

        fn heal_completed(&self, replicas_created: u64, _queue_depth: u64) {
            self.replicas_healed.fetch_add(replicas_created, std::sync::atomic::Ordering::SeqCst);
        }

        fn datanode_killed(&self, _node: usize, _live: usize) {
            self.kills.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }

        fn datanode_revived(&self, _node: usize, _live: usize) {
            self.revives.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }
    }

    #[test]
    fn observer_sees_writes_reads_failures_and_healing() {
        use std::sync::atomic::Ordering::SeqCst;
        let fs = small_cluster();
        let recorder = Arc::new(RecordingObserver::default());
        fs.add_observer(recorder.clone());

        let data = vec![1u8; 100];
        fs.write_all("/f", &data).unwrap();
        // 100 bytes / 16-byte blocks = 7 blocks.
        assert_eq!(recorder.blocks_written.load(SeqCst), 7);
        assert_eq!(recorder.bytes_written.load(SeqCst), 100);
        assert_eq!(recorder.degraded_writes.load(SeqCst), 0);

        assert_eq!(fs.read_all("/f").unwrap(), data);
        assert_eq!(recorder.blocks_read.load(SeqCst), 7);
        assert_eq!(recorder.failovers.load(SeqCst), 0);

        // A kill forces failovers on reads and queues healing work.
        fs.kill_datanode(0).unwrap();
        assert_eq!(recorder.kills.load(SeqCst), 1);
        assert_eq!(fs.read_all("/f").unwrap(), data);
        assert!(recorder.failovers.load(SeqCst) > 0, "dead replicas must be skipped");

        let created = fs.re_replicate();
        assert!(created > 0);
        assert_eq!(recorder.replicas_healed.load(SeqCst), created as u64);

        fs.revive_datanode(0).unwrap();
        assert_eq!(recorder.revives.load(SeqCst), 1);
    }

    #[test]
    fn degraded_writes_are_reported() {
        use std::sync::atomic::Ordering::SeqCst;
        let fs = small_cluster();
        let recorder = Arc::new(RecordingObserver::default());
        fs.add_observer(recorder.clone());
        fs.kill_datanode(0).unwrap();
        fs.kill_datanode(1).unwrap();
        fs.kill_datanode(2).unwrap();
        // One live node with replication 2: every block writes degraded.
        fs.write_all("/f", &[5u8; 40]).unwrap();
        assert_eq!(recorder.degraded_writes.load(SeqCst), 3);
        // Healing on revive is reported with the created replica count.
        fs.revive_datanode(0).unwrap();
        assert_eq!(recorder.replicas_healed.load(SeqCst), 3);
    }
}
