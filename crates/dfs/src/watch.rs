//! Poll-based file watching: tail a growing file on any backend.
//!
//! The DFS has no change-notification channel (neither does HDFS), so
//! live readers poll. [`TailWatcher`] remembers the byte offset it has
//! consumed and returns only the delta on each poll, using
//! [`FileSystem::tail`] so block-based backends skip already-read
//! blocks instead of re-streaming the whole file.

use std::io::Read;
use std::time::{Duration, Instant};

use crate::api::FileSystem;
use crate::error::{FsError, FsResult};

/// What one [`TailWatcher::poll`] observed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TailEvent {
    /// The file does not exist yet (or was deleted); nothing consumed.
    Absent,
    /// The file exists but has not grown past the watcher's offset.
    Unchanged,
    /// New bytes appeared past the watcher's offset.
    Appended(Vec<u8>),
    /// The file shrank below the watcher's offset (rewritten or rolled
    /// back). The watcher reset to offset 0; the payload is the entire
    /// current contents.
    Truncated(Vec<u8>),
}

impl TailEvent {
    /// The bytes this event carries, if any.
    pub fn bytes(&self) -> &[u8] {
        match self {
            TailEvent::Appended(b) | TailEvent::Truncated(b) => b,
            TailEvent::Absent | TailEvent::Unchanged => &[],
        }
    }
}

/// Tails one file by polling, remembering the consumed byte offset.
///
/// Works on every [`FileSystem`] backend — local disk, in-memory, and
/// the simulated HDFS cluster — because it only uses `status` + `tail`.
/// The watched path may not exist yet; polls report [`TailEvent::Absent`]
/// until it appears.
pub struct TailWatcher<F: FileSystem> {
    fs: F,
    path: String,
    offset: u64,
}

impl<F: FileSystem> TailWatcher<F> {
    /// Watches `path` on `fs` starting from byte 0.
    pub fn new(fs: F, path: impl Into<String>) -> Self {
        Self::with_offset(fs, path, 0)
    }

    /// Watches `path` starting from a previously consumed `offset`, so a
    /// reader can resume where an earlier watcher left off.
    pub fn with_offset(fs: F, path: impl Into<String>, offset: u64) -> Self {
        Self { fs, path: path.into(), offset }
    }

    /// The watched path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Bytes consumed so far — pass to [`TailWatcher::with_offset`] to
    /// resume later.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// One non-blocking poll: reads and consumes whatever appeared since
    /// the last poll.
    pub fn poll(&mut self) -> FsResult<TailEvent> {
        let len = match self.fs.status(&self.path) {
            Ok(status) => status.len,
            Err(FsError::NotFound(_)) => return Ok(TailEvent::Absent),
            Err(e) => return Err(e),
        };
        if len < self.offset {
            // Shrunk under us: restart from the top with the full view.
            self.offset = 0;
            let mut r = self.fs.tail(&self.path, 0)?;
            let mut buf = Vec::with_capacity(r.len() as usize);
            r.read_to_end(&mut buf).map_err(FsError::from)?;
            self.offset = buf.len() as u64;
            return Ok(TailEvent::Truncated(buf));
        }
        if len == self.offset {
            return Ok(TailEvent::Unchanged);
        }
        let mut r = self.fs.tail(&self.path, self.offset)?;
        let mut buf = Vec::with_capacity(r.len() as usize);
        r.read_to_end(&mut buf).map_err(FsError::from)?;
        self.offset += buf.len() as u64;
        Ok(TailEvent::Appended(buf))
    }

    /// Polls every `interval` until new bytes appear or `timeout`
    /// elapses. Returns the first non-empty event, or the last empty one
    /// ([`Absent`](TailEvent::Absent)/[`Unchanged`](TailEvent::Unchanged))
    /// on timeout.
    pub fn wait(&mut self, interval: Duration, timeout: Duration) -> FsResult<TailEvent> {
        let deadline = Instant::now() + timeout;
        loop {
            let event = self.poll()?;
            if !event.bytes().is_empty() || Instant::now() >= deadline {
                return Ok(event);
            }
            std::thread::sleep(interval.min(deadline.saturating_duration_since(Instant::now())));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryFs;
    use std::io::Write;

    #[test]
    fn poll_reports_absent_then_appended_then_unchanged() {
        let fs = InMemoryFs::new();
        let mut w = TailWatcher::new(fs.clone(), "/log.jsonl");
        assert_eq!(w.poll().unwrap(), TailEvent::Absent);
        fs.write_all("/log.jsonl", b"one\n").unwrap();
        assert_eq!(w.poll().unwrap(), TailEvent::Appended(b"one\n".to_vec()));
        assert_eq!(w.poll().unwrap(), TailEvent::Unchanged);
        let mut a = fs.append("/log.jsonl").unwrap();
        a.write_all(b"two\n").unwrap();
        a.sync().unwrap();
        assert_eq!(w.poll().unwrap(), TailEvent::Appended(b"two\n".to_vec()));
        assert_eq!(w.offset(), 8);
    }

    #[test]
    fn resume_from_offset_skips_consumed_prefix() {
        let fs = InMemoryFs::new();
        fs.write_all("/log", b"aaaa bbbb").unwrap();
        let mut w = TailWatcher::with_offset(fs, "/log", 5);
        assert_eq!(w.poll().unwrap(), TailEvent::Appended(b"bbbb".to_vec()));
    }

    #[test]
    fn truncation_resets_and_returns_full_contents() {
        let fs = InMemoryFs::new();
        fs.write_all("/log", b"0123456789").unwrap();
        let mut w = TailWatcher::new(fs.clone(), "/log");
        assert!(matches!(w.poll().unwrap(), TailEvent::Appended(_)));
        fs.write_all("/log", b"xy").unwrap();
        assert_eq!(w.poll().unwrap(), TailEvent::Truncated(b"xy".to_vec()));
        assert_eq!(w.offset(), 2);
    }

    #[test]
    fn wait_returns_data_when_it_arrives() {
        let fs = InMemoryFs::new();
        fs.write_all("/log", b"").unwrap();
        let writer_fs = fs.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            let mut a = writer_fs.append("/log").unwrap();
            a.write_all(b"late\n").unwrap();
            a.sync().unwrap();
        });
        let mut w = TailWatcher::new(fs, "/log");
        let event = w.wait(Duration::from_millis(5), Duration::from_secs(5)).unwrap();
        assert_eq!(event, TailEvent::Appended(b"late\n".to_vec()));
        handle.join().unwrap();
    }

    #[test]
    fn wait_times_out_empty() {
        let fs = InMemoryFs::new();
        let mut w = TailWatcher::new(fs, "/never");
        let event = w.wait(Duration::from_millis(5), Duration::from_millis(20)).unwrap();
        assert_eq!(event, TailEvent::Absent);
    }
}
