//! In-memory file system backend.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::api::{FileKind, FileRead, FileStatus, FileSystem, FileWrite};
use crate::error::{FsError, FsResult};
use crate::path::DfsPath;

#[derive(Clone, Debug)]
enum Node {
    File(Vec<u8>),
    Directory,
}

type Tree = BTreeMap<String, Node>;

/// A thread-safe in-process file system.
///
/// The default backend for tests, examples, and benchmarks: trace files
/// live in a `BTreeMap` guarded by an `RwLock`, so concurrent worker
/// writers and the debug-session reader see a consistent namespace.
#[derive(Clone, Default)]
pub struct InMemoryFs {
    tree: Arc<RwLock<Tree>>,
}

impl InMemoryFs {
    /// Creates an empty file system containing only the root directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes stored across all files.
    pub fn total_bytes(&self) -> u64 {
        self.tree
            .read()
            .values()
            .map(|n| match n {
                Node::File(b) => b.len() as u64,
                Node::Directory => 0,
            })
            .sum()
    }

    /// Number of files (not directories).
    pub fn file_count(&self) -> usize {
        self.tree.read().values().filter(|n| matches!(n, Node::File(_))).count()
    }

    fn ensure_parents(tree: &mut Tree, path: &DfsPath) -> FsResult<()> {
        let mut current = DfsPath::root();
        for component in path.components() {
            match tree.get(current.as_str()) {
                None if current.is_root() => {}
                None | Some(Node::Directory) => {}
                Some(Node::File(_)) => return Err(FsError::NotADirectory(current.to_string())),
            }
            if !current.is_root() {
                tree.entry(current.as_str().to_string()).or_insert(Node::Directory);
            }
            current = current.join(component)?;
        }
        Ok(())
    }
}

impl FileSystem for InMemoryFs {
    fn create(&self, path: &str) -> FsResult<Box<dyn FileWrite>> {
        let path = DfsPath::parse(path)?;
        if path.is_root() {
            return Err(FsError::NotAFile(path.to_string()));
        }
        let mut tree = self.tree.write();
        Self::ensure_parents(&mut tree, &path)?;
        if matches!(tree.get(path.as_str()), Some(Node::Directory)) {
            return Err(FsError::NotAFile(path.to_string()));
        }
        // Reserve the path immediately so concurrent creates are visible,
        // but content only lands on sync/drop.
        tree.insert(path.as_str().to_string(), Node::File(Vec::new()));
        Ok(Box::new(MemWriter {
            tree: Arc::clone(&self.tree),
            path: path.as_str().to_string(),
            buf: Vec::new(),
            synced: 0,
        }))
    }

    fn open(&self, path: &str) -> FsResult<Box<dyn FileRead>> {
        let path = DfsPath::parse(path)?;
        let tree = self.tree.read();
        match tree.get(path.as_str()) {
            Some(Node::File(bytes)) => {
                // Snapshot the contents so concurrent appends do not move
                // under the reader.
                Ok(Box::new(MemReader { bytes: Bytes::from(bytes.clone()), pos: 0 }))
            }
            Some(Node::Directory) => Err(FsError::NotAFile(path.to_string())),
            None => Err(FsError::NotFound(path.to_string())),
        }
    }

    fn list(&self, path: &str) -> FsResult<Vec<FileStatus>> {
        let path = DfsPath::parse(path)?;
        let tree = self.tree.read();
        if !path.is_root() {
            match tree.get(path.as_str()) {
                Some(Node::Directory) => {}
                Some(Node::File(_)) => return Err(FsError::NotADirectory(path.to_string())),
                None => return Err(FsError::NotFound(path.to_string())),
            }
        }
        let mut out = Vec::new();
        for (entry_path, node) in tree.iter() {
            let entry = DfsPath::parse(entry_path).expect("stored paths are normalized");
            if entry.parent().as_ref() == Some(&path) {
                out.push(FileStatus {
                    path: entry_path.clone(),
                    kind: match node {
                        Node::File(_) => FileKind::File,
                        Node::Directory => FileKind::Directory,
                    },
                    len: match node {
                        Node::File(b) => b.len() as u64,
                        Node::Directory => 0,
                    },
                });
            }
        }
        Ok(out)
    }

    fn status(&self, path: &str) -> FsResult<FileStatus> {
        let path = DfsPath::parse(path)?;
        if path.is_root() {
            return Ok(FileStatus { path: "/".into(), kind: FileKind::Directory, len: 0 });
        }
        let tree = self.tree.read();
        match tree.get(path.as_str()) {
            Some(Node::File(b)) => {
                Ok(FileStatus { path: path.to_string(), kind: FileKind::File, len: b.len() as u64 })
            }
            Some(Node::Directory) => {
                Ok(FileStatus { path: path.to_string(), kind: FileKind::Directory, len: 0 })
            }
            None => Err(FsError::NotFound(path.to_string())),
        }
    }

    fn exists(&self, path: &str) -> bool {
        match DfsPath::parse(path) {
            Ok(p) => p.is_root() || self.tree.read().contains_key(p.as_str()),
            Err(_) => false,
        }
    }

    fn mkdirs(&self, path: &str) -> FsResult<()> {
        let path = DfsPath::parse(path)?;
        let mut tree = self.tree.write();
        Self::ensure_parents(&mut tree, &path)?;
        if path.is_root() {
            return Ok(());
        }
        match tree.get(path.as_str()) {
            Some(Node::File(_)) => Err(FsError::NotADirectory(path.to_string())),
            _ => {
                tree.insert(path.as_str().to_string(), Node::Directory);
                Ok(())
            }
        }
    }

    fn append(&self, path: &str) -> FsResult<Box<dyn FileWrite>> {
        let path = DfsPath::parse(path)?;
        if path.is_root() {
            return Err(FsError::NotAFile(path.to_string()));
        }
        let mut tree = self.tree.write();
        Self::ensure_parents(&mut tree, &path)?;
        let existing = match tree.get(path.as_str()) {
            Some(Node::File(bytes)) => bytes.clone(),
            Some(Node::Directory) => return Err(FsError::NotAFile(path.to_string())),
            None => {
                tree.insert(path.as_str().to_string(), Node::File(Vec::new()));
                Vec::new()
            }
        };
        // The writer starts already synced up to the existing length, so
        // each later sync appends only the delta.
        let synced = existing.len();
        Ok(Box::new(MemWriter {
            tree: Arc::clone(&self.tree),
            path: path.as_str().to_string(),
            buf: existing,
            synced,
        }))
    }

    fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        let from = DfsPath::parse(from)?;
        let to = DfsPath::parse(to)?;
        if from.is_root() || to.is_root() {
            return Err(FsError::NotAFile(from.to_string()));
        }
        // One write lock covers the whole move, so readers see either the
        // old file or the new one — never both, never neither.
        let mut tree = self.tree.write();
        match tree.get(from.as_str()) {
            Some(Node::File(_)) => {}
            Some(Node::Directory) => return Err(FsError::NotAFile(from.to_string())),
            None => return Err(FsError::NotFound(from.to_string())),
        }
        Self::ensure_parents(&mut tree, &to)?;
        if matches!(tree.get(to.as_str()), Some(Node::Directory)) {
            return Err(FsError::NotAFile(to.to_string()));
        }
        let node = tree.remove(from.as_str()).expect("checked above");
        tree.insert(to.as_str().to_string(), node);
        Ok(())
    }

    fn delete(&self, path: &str, recursive: bool) -> FsResult<()> {
        let path = DfsPath::parse(path)?;
        let mut tree = self.tree.write();
        if path.is_root() {
            if !recursive && !tree.is_empty() {
                return Err(FsError::DirectoryNotEmpty(path.to_string()));
            }
            tree.clear();
            return Ok(());
        }
        match tree.get(path.as_str()) {
            None => return Err(FsError::NotFound(path.to_string())),
            Some(Node::File(_)) => {
                tree.remove(path.as_str());
                return Ok(());
            }
            Some(Node::Directory) => {}
        }
        let children: Vec<String> = tree
            .range(path.as_str().to_string()..)
            .take_while(|(k, _)| {
                DfsPath::parse(k).expect("stored paths are normalized").starts_with(&path)
            })
            .map(|(k, _)| k.clone())
            .collect();
        if children.len() > 1 && !recursive {
            return Err(FsError::DirectoryNotEmpty(path.to_string()));
        }
        for child in children {
            tree.remove(&child);
        }
        Ok(())
    }
}

struct MemWriter {
    tree: Arc<RwLock<Tree>>,
    path: String,
    buf: Vec<u8>,
    synced: usize,
}

impl Write for MemWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl FileWrite for MemWriter {
    fn sync(&mut self) -> FsResult<()> {
        if self.synced != self.buf.len() {
            // Append only the delta: repeated per-superstep syncs of a
            // growing trace file must not re-copy the whole file.
            let mut tree = self.tree.write();
            match tree.get_mut(&self.path) {
                Some(Node::File(contents)) if contents.len() == self.synced => {
                    contents.extend_from_slice(&self.buf[self.synced..]);
                }
                _ => {
                    // The file was replaced or truncated behind our back;
                    // last sync wins with the writer's full view.
                    tree.insert(self.path.clone(), Node::File(self.buf.clone()));
                }
            }
            self.synced = self.buf.len();
        }
        Ok(())
    }
}

impl Drop for MemWriter {
    fn drop(&mut self) {
        let _ = self.sync();
    }
}

struct MemReader {
    bytes: Bytes,
    pos: usize,
}

impl Read for MemReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let available = &self.bytes[self.pos.min(self.bytes.len())..];
        let n = available.len().min(out.len());
        out[..n].copy_from_slice(&available[..n]);
        self.pos += n;
        Ok(n)
    }
}

impl FileRead for MemReader {
    fn len(&self) -> u64 {
        self.bytes.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_write_read() {
        let fs = InMemoryFs::new();
        fs.write_all("/a/b/file.txt", b"content").unwrap();
        assert_eq!(fs.read_all("/a/b/file.txt").unwrap(), b"content");
        assert!(fs.exists("/a"));
        assert!(fs.exists("/a/b"));
        assert_eq!(fs.status("/a/b").unwrap().kind, FileKind::Directory);
        assert_eq!(fs.status("/a/b/file.txt").unwrap().len, 7);
    }

    #[test]
    fn create_truncates() {
        let fs = InMemoryFs::new();
        fs.write_all("/f", b"long content").unwrap();
        fs.write_all("/f", b"short").unwrap();
        assert_eq!(fs.read_all("/f").unwrap(), b"short");
    }

    #[test]
    fn writer_content_visible_after_sync_not_before() {
        let fs = InMemoryFs::new();
        let mut w = fs.create("/f").unwrap();
        w.write_all(b"data").unwrap();
        assert_eq!(fs.read_all("/f").unwrap(), b"");
        w.sync().unwrap();
        assert_eq!(fs.read_all("/f").unwrap(), b"data");
        drop(w);
        assert_eq!(fs.read_all("/f").unwrap(), b"data");
    }

    #[test]
    fn list_is_shallow_and_sorted() {
        let fs = InMemoryFs::new();
        fs.write_all("/d/z", b"1").unwrap();
        fs.write_all("/d/a", b"2").unwrap();
        fs.write_all("/d/sub/deep", b"3").unwrap();
        let names: Vec<String> = fs.list("/d").unwrap().into_iter().map(|s| s.path).collect();
        assert_eq!(names, vec!["/d/a", "/d/sub", "/d/z"]);
    }

    #[test]
    fn list_files_recursive_finds_nested() {
        let fs = InMemoryFs::new();
        fs.write_all("/d/x/1", b"").unwrap();
        fs.write_all("/d/y/2", b"").unwrap();
        fs.write_all("/d/3", b"").unwrap();
        let names: Vec<String> =
            fs.list_files_recursive("/d").unwrap().into_iter().map(|s| s.path).collect();
        assert_eq!(names, vec!["/d/3", "/d/x/1", "/d/y/2"]);
    }

    #[test]
    fn delete_semantics() {
        let fs = InMemoryFs::new();
        fs.write_all("/d/a", b"").unwrap();
        fs.write_all("/d/b", b"").unwrap();
        assert!(matches!(fs.delete("/d", false), Err(FsError::DirectoryNotEmpty(_))));
        fs.delete("/d/a", false).unwrap();
        fs.delete("/d", true).unwrap();
        assert!(!fs.exists("/d"));
        assert!(matches!(fs.delete("/nope", false), Err(FsError::NotFound(_))));
    }

    #[test]
    fn cannot_create_file_over_directory() {
        let fs = InMemoryFs::new();
        fs.mkdirs("/dir").unwrap();
        assert!(matches!(fs.create("/dir"), Err(FsError::NotAFile(_))));
        fs.write_all("/file", b"").unwrap();
        assert!(matches!(fs.mkdirs("/file"), Err(FsError::NotADirectory(_))));
        assert!(matches!(fs.create("/file/child"), Err(FsError::NotADirectory(_))));
    }

    #[test]
    fn concurrent_writers_to_distinct_files() {
        let fs = InMemoryFs::new();
        std::thread::scope(|scope| {
            for worker in 0..8 {
                let fs = fs.clone();
                scope.spawn(move || {
                    let path = format!("/traces/worker_{worker}.trace");
                    let mut w = fs.create(&path).unwrap();
                    for record in 0..100 {
                        writeln!(w, "w{worker} r{record}").unwrap();
                    }
                    w.sync().unwrap();
                });
            }
        });
        let files = fs.list("/traces").unwrap();
        assert_eq!(files.len(), 8);
        for f in files {
            let data = fs.read_all(&f.path).unwrap();
            assert_eq!(data.split(|&b| b == b'\n').filter(|l| !l.is_empty()).count(), 100);
        }
    }

    #[test]
    fn append_extends_and_creates() {
        let fs = InMemoryFs::new();
        // Appending to a missing path creates it (parents included).
        let mut w = fs.append("/logs/w0/seg_0.log").unwrap();
        w.write_all(b"one ").unwrap();
        w.sync().unwrap();
        assert_eq!(fs.read_all("/logs/w0/seg_0.log").unwrap(), b"one ");
        drop(w);
        // A second append handle continues after the existing bytes.
        let mut w = fs.append("/logs/w0/seg_0.log").unwrap();
        w.write_all(b"two").unwrap();
        drop(w);
        assert_eq!(fs.read_all("/logs/w0/seg_0.log").unwrap(), b"one two");
        assert!(matches!(fs.append("/logs/w0"), Err(FsError::NotAFile(_))));
    }

    #[test]
    fn tail_skips_prefix_and_reports_remaining() {
        let fs = InMemoryFs::new();
        fs.write_all("/f", b"0123456789").unwrap();
        let mut r = fs.tail("/f", 4).unwrap();
        assert_eq!(r.len(), 6);
        let mut rest = Vec::new();
        r.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"456789");
        // Offsets past the end clamp to an empty reader.
        let mut r = fs.tail("/f", 99).unwrap();
        assert_eq!(r.len(), 0);
        let mut rest = Vec::new();
        r.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
    }

    #[test]
    fn rename_moves_and_replaces() {
        let fs = InMemoryFs::new();
        fs.write_all("/live/snap.json.tmp", b"{\"seq\":1}").unwrap();
        fs.rename("/live/snap.json.tmp", "/live/snap.json").unwrap();
        assert!(!fs.exists("/live/snap.json.tmp"));
        assert_eq!(fs.read_all("/live/snap.json").unwrap(), b"{\"seq\":1}");
        // Replacing an existing destination is allowed (commit protocol).
        fs.write_all("/live/snap.json.tmp", b"{\"seq\":2}").unwrap();
        fs.rename("/live/snap.json.tmp", "/live/snap.json").unwrap();
        assert_eq!(fs.read_all("/live/snap.json").unwrap(), b"{\"seq\":2}");
        // Parents of the destination are created as needed.
        fs.write_all("/tmp/x", b"x").unwrap();
        fs.rename("/tmp/x", "/deep/new/dir/x").unwrap();
        assert_eq!(fs.read_all("/deep/new/dir/x").unwrap(), b"x");
        assert!(matches!(fs.rename("/nope", "/b"), Err(FsError::NotFound(_))));
        fs.mkdirs("/adir").unwrap();
        assert!(matches!(fs.rename("/adir", "/b"), Err(FsError::NotAFile(_))));
        fs.write_all("/f2", b"").unwrap();
        assert!(matches!(fs.rename("/f2", "/adir"), Err(FsError::NotAFile(_))));
    }

    #[test]
    fn counters() {
        let fs = InMemoryFs::new();
        fs.write_all("/a", b"123").unwrap();
        fs.write_all("/b/c", b"4567").unwrap();
        assert_eq!(fs.total_bytes(), 7);
        assert_eq!(fs.file_count(), 2);
    }
}
