//! Local-disk backend rooted at a host directory.

use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::api::{FileKind, FileRead, FileStatus, FileSystem, FileWrite};
use crate::error::{FsError, FsResult};
use crate::path::DfsPath;

/// A [`FileSystem`] that maps DFS paths onto a directory on the local
/// disk, for users who want trace files to outlive the process.
pub struct LocalFs {
    root: PathBuf,
}

impl LocalFs {
    /// Creates a backend rooted at `root`, creating the directory if needed.
    pub fn new(root: impl Into<PathBuf>) -> FsResult<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// The host directory backing `/`.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn resolve(&self, path: &str) -> FsResult<(DfsPath, PathBuf)> {
        let dfs = DfsPath::parse(path)?;
        let mut host = self.root.clone();
        for component in dfs.components() {
            host.push(component);
        }
        Ok((dfs, host))
    }

    fn to_dfs_path(&self, host: &Path) -> String {
        let rel = host.strip_prefix(&self.root).unwrap_or(host);
        let mut out = String::from("/");
        let mut first = true;
        for c in rel.components() {
            if !first {
                out.push('/');
            }
            out.push_str(&c.as_os_str().to_string_lossy());
            first = false;
        }
        out
    }
}

impl FileSystem for LocalFs {
    fn create(&self, path: &str) -> FsResult<Box<dyn FileWrite>> {
        let (dfs, host) = self.resolve(path)?;
        if dfs.is_root() {
            return Err(FsError::NotAFile(dfs.to_string()));
        }
        if host.is_dir() {
            return Err(FsError::NotAFile(dfs.to_string()));
        }
        if let Some(parent) = host.parent() {
            fs::create_dir_all(parent)?;
        }
        let file = fs::File::create(&host)?;
        Ok(Box::new(LocalWriter { inner: std::io::BufWriter::new(file) }))
    }

    fn open(&self, path: &str) -> FsResult<Box<dyn FileRead>> {
        let (dfs, host) = self.resolve(path)?;
        let meta = fs::metadata(&host).map_err(|_| FsError::NotFound(dfs.to_string()))?;
        if meta.is_dir() {
            return Err(FsError::NotAFile(dfs.to_string()));
        }
        let file = fs::File::open(&host)?;
        Ok(Box::new(LocalReader { inner: std::io::BufReader::new(file), len: meta.len(), pos: 0 }))
    }

    fn list(&self, path: &str) -> FsResult<Vec<FileStatus>> {
        let (dfs, host) = self.resolve(path)?;
        let meta = fs::metadata(&host).map_err(|_| FsError::NotFound(dfs.to_string()))?;
        if !meta.is_dir() {
            return Err(FsError::NotADirectory(dfs.to_string()));
        }
        let mut out = Vec::new();
        for entry in fs::read_dir(&host)? {
            let entry = entry?;
            let meta = entry.metadata()?;
            out.push(FileStatus {
                path: self.to_dfs_path(&entry.path()),
                kind: if meta.is_dir() { FileKind::Directory } else { FileKind::File },
                len: if meta.is_dir() { 0 } else { meta.len() },
            });
        }
        out.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(out)
    }

    fn status(&self, path: &str) -> FsResult<FileStatus> {
        let (dfs, host) = self.resolve(path)?;
        let meta = fs::metadata(&host).map_err(|_| FsError::NotFound(dfs.to_string()))?;
        Ok(FileStatus {
            path: dfs.to_string(),
            kind: if meta.is_dir() { FileKind::Directory } else { FileKind::File },
            len: if meta.is_dir() { 0 } else { meta.len() },
        })
    }

    fn exists(&self, path: &str) -> bool {
        self.resolve(path).map(|(_, host)| host.exists()).unwrap_or(false)
    }

    fn mkdirs(&self, path: &str) -> FsResult<()> {
        let (dfs, host) = self.resolve(path)?;
        if host.is_file() {
            return Err(FsError::NotADirectory(dfs.to_string()));
        }
        fs::create_dir_all(&host)?;
        Ok(())
    }

    fn append(&self, path: &str) -> FsResult<Box<dyn FileWrite>> {
        let (dfs, host) = self.resolve(path)?;
        if dfs.is_root() || host.is_dir() {
            return Err(FsError::NotAFile(dfs.to_string()));
        }
        if let Some(parent) = host.parent() {
            fs::create_dir_all(parent)?;
        }
        let file = fs::OpenOptions::new().append(true).create(true).open(&host)?;
        Ok(Box::new(LocalWriter { inner: std::io::BufWriter::new(file) }))
    }

    fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        let (from_dfs, from_host) = self.resolve(from)?;
        let (to_dfs, to_host) = self.resolve(to)?;
        let meta = fs::metadata(&from_host).map_err(|_| FsError::NotFound(from_dfs.to_string()))?;
        if meta.is_dir() {
            return Err(FsError::NotAFile(from_dfs.to_string()));
        }
        if to_host.is_dir() {
            return Err(FsError::NotAFile(to_dfs.to_string()));
        }
        if let Some(parent) = to_host.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::rename(&from_host, &to_host)?;
        Ok(())
    }

    fn delete(&self, path: &str, recursive: bool) -> FsResult<()> {
        let (dfs, host) = self.resolve(path)?;
        let meta = fs::metadata(&host).map_err(|_| FsError::NotFound(dfs.to_string()))?;
        if meta.is_dir() {
            if recursive {
                fs::remove_dir_all(&host)?;
            } else {
                fs::remove_dir(&host).map_err(|_| FsError::DirectoryNotEmpty(dfs.to_string()))?;
            }
        } else {
            fs::remove_file(&host)?;
        }
        Ok(())
    }
}

struct LocalWriter {
    inner: std::io::BufWriter<fs::File>,
}

impl Write for LocalWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.inner.write(data)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

impl FileWrite for LocalWriter {
    fn sync(&mut self) -> FsResult<()> {
        self.inner.flush()?;
        Ok(())
    }
}

struct LocalReader {
    inner: std::io::BufReader<fs::File>,
    len: u64,
    pos: u64,
}

impl Read for LocalReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        // Clamp to the open-time length: a concurrent appender may have
        // grown the file since, and streaming past `len()` would expose
        // a torn mid-frame tail to readers that sized their decode on
        // it (message-log tails, spill segments).
        let remaining = self.len.saturating_sub(self.pos);
        if remaining == 0 {
            return Ok(0);
        }
        let cap = usize::try_from(remaining).unwrap_or(usize::MAX).min(out.len());
        let n = self.inner.read(&mut out[..cap])?;
        self.pos += n as u64;
        Ok(n)
    }
}

impl FileRead for LocalReader {
    fn len(&self) -> u64 {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "graft-dfs-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_on_disk() {
        let root = temp_root("roundtrip");
        let fs = LocalFs::new(&root).unwrap();
        fs.write_all("/traces/t.bin", b"\x00\x01\x02").unwrap();
        assert_eq!(fs.read_all("/traces/t.bin").unwrap(), b"\x00\x01\x02");
        assert_eq!(fs.status("/traces/t.bin").unwrap().len, 3);
        let listed = fs.list("/traces").unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].path, "/traces/t.bin");
        fs.delete("/traces", true).unwrap();
        assert!(!fs.exists("/traces"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_paths_error() {
        let root = temp_root("missing");
        let fs = LocalFs::new(&root).unwrap();
        assert!(matches!(fs.open("/nope"), Err(FsError::NotFound(_))));
        assert!(matches!(fs.list("/nope"), Err(FsError::NotFound(_))));
        assert!(matches!(fs.delete("/nope", false), Err(FsError::NotFound(_))));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn append_extends_existing_file() {
        let root = temp_root("append");
        let fs = LocalFs::new(&root).unwrap();
        let mut w = fs.append("/logs/seg.log").unwrap();
        w.write_all(b"alpha ").unwrap();
        w.sync().unwrap();
        drop(w);
        let mut w = fs.append("/logs/seg.log").unwrap();
        w.write_all(b"beta").unwrap();
        drop(w);
        assert_eq!(fs.read_all("/logs/seg.log").unwrap(), b"alpha beta");
        let mut r = fs.tail("/logs/seg.log", 6).unwrap();
        assert_eq!(r.len(), 4);
        let mut rest = Vec::new();
        r.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"beta");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn rename_commits_atomically_on_disk() {
        let root = temp_root("rename");
        let fs = LocalFs::new(&root).unwrap();
        fs.write_all("/live/snap.json.tmp", b"new").unwrap();
        fs.write_all("/live/snap.json", b"old").unwrap();
        fs.rename("/live/snap.json.tmp", "/live/snap.json").unwrap();
        assert!(!fs.exists("/live/snap.json.tmp"));
        assert_eq!(fs.read_all("/live/snap.json").unwrap(), b"new");
        assert!(matches!(fs.rename("/nope", "/x"), Err(FsError::NotFound(_))));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn reader_never_yields_bytes_appended_after_open() {
        let root = temp_root("torn");
        let fs = LocalFs::new(&root).unwrap();
        // A complete length-prefixed frame: [len=4][payload].
        fs.write_all("/seg/p0.seg", &[4, 1, 2, 3, 4]).unwrap();

        let mut reader = fs.open("/seg/p0.seg").unwrap();
        assert_eq!(reader.len(), 5);

        // A concurrent appender lands a torn half-frame after the open:
        // the length prefix of the next record but only part of its body.
        let mut w = fs.append("/seg/p0.seg").unwrap();
        w.write_all(&[4, 9, 9]).unwrap();
        w.sync().unwrap();
        drop(w);
        assert_eq!(fs.status("/seg/p0.seg").unwrap().len, 8);

        // The reader must stop at its open-time length: a frame decoder
        // sized on `len()` sees only whole frames, never the torn tail.
        let mut buf = Vec::new();
        reader.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, vec![4, 1, 2, 3, 4]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tail_never_yields_bytes_appended_after_open() {
        let root = temp_root("torn-tail");
        let fs = LocalFs::new(&root).unwrap();
        fs.write_all("/seg/log.seg", b"prefix-frame1").unwrap();

        let mut tail = fs.tail("/seg/log.seg", 7).unwrap();
        assert_eq!(tail.len(), 6);

        let mut w = fs.append("/seg/log.seg").unwrap();
        w.write_all(b"-torn").unwrap();
        w.sync().unwrap();
        drop(w);

        let mut buf = Vec::new();
        tail.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"frame1", "tail leaked bytes appended after open");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn non_empty_dir_requires_recursive() {
        let root = temp_root("nonempty");
        let fs = LocalFs::new(&root).unwrap();
        fs.write_all("/d/f", b"x").unwrap();
        assert!(matches!(fs.delete("/d", false), Err(FsError::DirectoryNotEmpty(_))));
        fs.delete("/d", true).unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }
}
