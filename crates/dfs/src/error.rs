//! Error type for file-system operations.

use std::fmt;

/// Result alias for DFS operations.
pub type FsResult<T> = Result<T, FsError>;

/// Errors returned by [`crate::FileSystem`] implementations.
#[derive(Debug)]
pub enum FsError {
    /// The path does not exist.
    NotFound(String),
    /// The path already exists and the operation requires it not to.
    AlreadyExists(String),
    /// A directory was found where a file was required, or vice versa.
    NotAFile(String),
    /// A file was found where a directory was required.
    NotADirectory(String),
    /// Attempted to delete a non-empty directory without `recursive`.
    DirectoryNotEmpty(String),
    /// The path string is malformed (empty, relative, or contains `..`).
    InvalidPath(String),
    /// A block has no live replica (cluster backend only).
    BlockUnavailable { path: String, block: u64 },
    /// A datanode id was out of range (cluster backend only).
    NoSuchDataNode(usize),
    /// Too few live datanodes to satisfy the replication factor.
    InsufficientDataNodes { live: usize, needed: usize },
    /// Underlying I/O error (local backend).
    Io(std::io::Error),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            FsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            FsError::NotAFile(p) => write!(f, "not a file: {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::DirectoryNotEmpty(p) => write!(f, "directory not empty: {p}"),
            FsError::InvalidPath(p) => write!(f, "invalid path: {p:?}"),
            FsError::BlockUnavailable { path, block } => {
                write!(f, "block {block} of {path} has no live replica")
            }
            FsError::NoSuchDataNode(id) => write!(f, "no such datanode: {id}"),
            FsError::InsufficientDataNodes { live, needed } => {
                write!(f, "only {live} datanode(s) live, {needed} needed for replication")
            }
            FsError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for FsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FsError {
    fn from(e: std::io::Error) -> Self {
        FsError::Io(e)
    }
}

impl From<FsError> for std::io::Error {
    fn from(e: FsError) -> Self {
        match e {
            FsError::Io(io) => io,
            FsError::NotFound(_) => std::io::Error::new(std::io::ErrorKind::NotFound, e),
            other => std::io::Error::other(other),
        }
    }
}
