//! # graft-dfs
//!
//! A small distributed-file-system simulation standing in for HDFS, which
//! is where the original Graft writes its trace files.
//!
//! Three backends implement the same [`FileSystem`] trait:
//!
//! * [`InMemoryFs`] — a thread-safe in-process tree; the default for tests
//!   and examples.
//! * [`LocalFs`] — a thin wrapper over a root directory on the local disk,
//!   for users who want traces to survive the process.
//! * [`ClusterFs`] — the HDFS simulation proper: files are split into
//!   fixed-size blocks, each block is replicated onto `r` simulated
//!   datanodes, a namenode tracks block locations, and datanodes can be
//!   killed and revived to exercise failure handling. As long as fewer
//!   than `r` datanodes holding a block's replicas are down, reads
//!   succeed.
//!
//! Paths are absolute, `/`-separated strings normalized by [`DfsPath`].
//!
//! ```
//! use graft_dfs::{FileSystem, InMemoryFs};
//!
//! let fs = InMemoryFs::new();
//! fs.write_all("/traces/job-1/superstep_0/worker_0.trace", b"hello").unwrap();
//! assert_eq!(fs.read_all("/traces/job-1/superstep_0/worker_0.trace").unwrap(), b"hello");
//! assert_eq!(fs.list("/traces/job-1").unwrap().len(), 1);
//! ```

#![forbid(unsafe_code)]

mod api;
mod cluster;
mod error;
mod local;
mod memory;
mod observer;
mod path;
mod watch;

pub use api::{FileKind, FileRead, FileStatus, FileSystem, FileWrite};
pub use cluster::{ClusterFs, ClusterFsConfig, ClusterStats};
pub use error::{FsError, FsResult};
pub use local::LocalFs;
pub use memory::InMemoryFs;
pub use observer::DfsObserver;
pub use path::DfsPath;
pub use watch::{TailEvent, TailWatcher};
