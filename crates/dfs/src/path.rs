//! Normalized absolute path handling for the DFS.

use crate::error::{FsError, FsResult};

/// An absolute, normalized, `/`-separated DFS path.
///
/// Invariants after construction:
/// * starts with `/`,
/// * contains no empty, `.`, or `..` components,
/// * has no trailing slash (except the root itself, which is `/`).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DfsPath {
    normalized: String,
}

impl DfsPath {
    /// Parses and normalizes `raw`.
    ///
    /// Accepts redundant slashes and `.` components; rejects relative
    /// paths and `..`.
    pub fn parse(raw: &str) -> FsResult<Self> {
        if !raw.starts_with('/') {
            return Err(FsError::InvalidPath(raw.to_string()));
        }
        let mut components = Vec::new();
        for part in raw.split('/') {
            match part {
                "" | "." => {}
                ".." => return Err(FsError::InvalidPath(raw.to_string())),
                other => components.push(other),
            }
        }
        let mut normalized = String::with_capacity(raw.len());
        if components.is_empty() {
            normalized.push('/');
        } else {
            for part in &components {
                normalized.push('/');
                normalized.push_str(part);
            }
        }
        Ok(Self { normalized })
    }

    /// The root path `/`.
    pub fn root() -> Self {
        Self { normalized: "/".to_string() }
    }

    /// The normalized string form.
    pub fn as_str(&self) -> &str {
        &self.normalized
    }

    /// Whether this is the root path.
    pub fn is_root(&self) -> bool {
        self.normalized == "/"
    }

    /// Path components, excluding the leading root.
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.normalized.split('/').filter(|c| !c.is_empty())
    }

    /// The final component, or `None` for the root.
    pub fn file_name(&self) -> Option<&str> {
        if self.is_root() {
            None
        } else {
            self.normalized.rsplit('/').next()
        }
    }

    /// The parent directory, or `None` for the root.
    pub fn parent(&self) -> Option<DfsPath> {
        if self.is_root() {
            return None;
        }
        match self.normalized.rfind('/') {
            Some(0) => Some(DfsPath::root()),
            Some(idx) => Some(DfsPath { normalized: self.normalized[..idx].to_string() }),
            None => None,
        }
    }

    /// Appends a single component, which must not contain `/`.
    pub fn join(&self, component: &str) -> FsResult<DfsPath> {
        if component.is_empty() || component.contains('/') || component == "." || component == ".."
        {
            return Err(FsError::InvalidPath(component.to_string()));
        }
        let mut normalized = self.normalized.clone();
        if !self.is_root() {
            normalized.push('/');
        }
        normalized.push_str(component);
        Ok(DfsPath { normalized })
    }

    /// Whether `self` is `ancestor` or lies underneath it.
    pub fn starts_with(&self, ancestor: &DfsPath) -> bool {
        if ancestor.is_root() {
            return true;
        }
        self.normalized == ancestor.normalized
            || self
                .normalized
                .strip_prefix(&ancestor.normalized)
                .is_some_and(|rest| rest.starts_with('/'))
    }
}

impl std::fmt::Display for DfsPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.normalized)
    }
}

impl std::str::FromStr for DfsPath {
    type Err = FsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DfsPath::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_redundant_slashes_and_dots() {
        assert_eq!(DfsPath::parse("//a///b/./c/").unwrap().as_str(), "/a/b/c");
        assert_eq!(DfsPath::parse("/").unwrap().as_str(), "/");
        assert_eq!(DfsPath::parse("/.").unwrap().as_str(), "/");
    }

    #[test]
    fn rejects_relative_and_dotdot() {
        assert!(DfsPath::parse("a/b").is_err());
        assert!(DfsPath::parse("").is_err());
        assert!(DfsPath::parse("/a/../b").is_err());
    }

    #[test]
    fn parent_and_file_name() {
        let p = DfsPath::parse("/a/b/c").unwrap();
        assert_eq!(p.file_name(), Some("c"));
        assert_eq!(p.parent().unwrap().as_str(), "/a/b");
        assert_eq!(DfsPath::parse("/a").unwrap().parent().unwrap().as_str(), "/");
        assert!(DfsPath::root().parent().is_none());
        assert!(DfsPath::root().file_name().is_none());
    }

    #[test]
    fn join_validates_components() {
        let p = DfsPath::parse("/a").unwrap();
        assert_eq!(p.join("b").unwrap().as_str(), "/a/b");
        assert_eq!(DfsPath::root().join("x").unwrap().as_str(), "/x");
        assert!(p.join("b/c").is_err());
        assert!(p.join("..").is_err());
        assert!(p.join("").is_err());
    }

    #[test]
    fn starts_with_respects_component_boundaries() {
        let a = DfsPath::parse("/a/b").unwrap();
        let ab = DfsPath::parse("/a/b/c").unwrap();
        let abx = DfsPath::parse("/a/bc").unwrap();
        assert!(ab.starts_with(&a));
        assert!(a.starts_with(&a));
        assert!(!abx.starts_with(&a));
        assert!(a.starts_with(&DfsPath::root()));
    }

    #[test]
    fn components_iterates_in_order() {
        let p = DfsPath::parse("/x/y/z").unwrap();
        assert_eq!(p.components().collect::<Vec<_>>(), vec!["x", "y", "z"]);
        assert_eq!(DfsPath::root().components().count(), 0);
    }
}
