//! Instrumentation hooks for the cluster file system.
//!
//! `graft-dfs` defines the observer trait but no implementation, so the
//! observability layer (`graft-obs`) can record cluster activity without
//! a dependency cycle. All methods have empty defaults; implementors
//! override what they care about.
//!
//! Hooks fire *after* the cluster's namespace lock is released, so an
//! observer may call back into the file system — but implementations
//! should still be cheap and non-blocking, as they sit on the write and
//! read paths.

/// Receives notifications about [`crate::ClusterFs`] activity.
#[allow(unused_variables)]
pub trait DfsObserver: Send + Sync {
    /// A block was sealed onto datanodes. `degraded` is true when fewer
    /// live datanodes than the replication factor were available, so the
    /// block entered the re-replication queue.
    fn block_written(&self, bytes: u64, replicas: usize, degraded: bool) {}

    /// A block was served to a reader. `failovers` counts dead or
    /// incomplete replicas skipped (including backoff retries) before a
    /// live one answered.
    fn block_read(&self, bytes: u64, failovers: u64) {}

    /// The namenode worked through (part of) its re-replication queue,
    /// creating `replicas_created` new replicas; `queue_depth` is the
    /// number of blocks still degraded afterwards.
    fn heal_completed(&self, replicas_created: u64, queue_depth: u64) {}

    /// A datanode was killed; `live` datanodes remain.
    fn datanode_killed(&self, node: usize, live: usize) {}

    /// A datanode came back; `live` datanodes are now up.
    fn datanode_revived(&self, node: usize, live: usize) {}
}
