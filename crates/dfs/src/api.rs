//! The `FileSystem` trait shared by every backend.

use std::io::{Read, Write};

use crate::error::FsResult;

/// Whether a path names a file or a directory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FileKind {
    /// A regular file.
    File,
    /// A directory.
    Directory,
}

/// Metadata for one directory entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FileStatus {
    /// Absolute normalized path.
    pub path: String,
    /// File or directory.
    pub kind: FileKind,
    /// Length in bytes (0 for directories).
    pub len: u64,
}

impl FileStatus {
    /// True when this entry is a regular file.
    pub fn is_file(&self) -> bool {
        self.kind == FileKind::File
    }
}

/// A writable handle to a file being created.
///
/// Data becomes visible to readers when the handle is dropped or
/// [`FileWrite::sync`] is called, mirroring HDFS's create-then-close
/// visibility model.
pub trait FileWrite: Write + Send {
    /// Flushes buffered data and makes it visible to readers.
    fn sync(&mut self) -> FsResult<()>;
}

/// A readable handle to an existing file.
pub trait FileRead: Read + Send {
    /// Total length of the file in bytes.
    fn len(&self) -> u64;

    /// True when the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A file system where Graft stores trace files.
///
/// All paths are absolute `/`-separated strings (see [`crate::DfsPath`]).
/// Implementations are safe to share across worker threads.
pub trait FileSystem: Send + Sync {
    /// Creates a file (and any missing parent directories), truncating an
    /// existing file at the same path.
    fn create(&self, path: &str) -> FsResult<Box<dyn FileWrite>>;

    /// Opens an existing file for reading.
    fn open(&self, path: &str) -> FsResult<Box<dyn FileRead>>;

    /// Lists the entries of a directory, sorted by path.
    fn list(&self, path: &str) -> FsResult<Vec<FileStatus>>;

    /// Returns metadata for a path.
    fn status(&self, path: &str) -> FsResult<FileStatus>;

    /// Whether the path exists (as a file or directory).
    fn exists(&self, path: &str) -> bool;

    /// Creates a directory and all missing ancestors.
    fn mkdirs(&self, path: &str) -> FsResult<()>;

    /// Deletes a path. Directories require `recursive` unless empty.
    fn delete(&self, path: &str, recursive: bool) -> FsResult<()>;

    /// Opens a file for appending, creating it (and any missing parent
    /// directories) if absent. Existing contents are preserved; writes
    /// land after them and become visible on [`FileWrite::sync`].
    ///
    /// The default implementation reads the file back and rewrites it
    /// through [`FileSystem::create`]; backends override it with a real
    /// append so message logs grow in O(delta), not O(file).
    fn append(&self, path: &str) -> FsResult<Box<dyn FileWrite>> {
        let existing = match self.open(path) {
            Ok(mut r) => {
                let mut buf = Vec::with_capacity(r.len() as usize);
                r.read_to_end(&mut buf).map_err(crate::FsError::from)?;
                buf
            }
            Err(crate::FsError::NotFound(_)) => Vec::new(),
            Err(e) => return Err(e),
        };
        let mut w = self.create(path)?;
        w.write_all(&existing).map_err(crate::FsError::from)?;
        Ok(w)
    }

    /// Opens a file for reading starting at byte `offset` (clamped to the
    /// file length). The returned reader's [`FileRead::len`] is the number
    /// of bytes remaining from `offset` to the end of the file.
    ///
    /// The default implementation opens the file and discards the prefix;
    /// block-based backends override it to skip whole blocks.
    fn tail(&self, path: &str, offset: u64) -> FsResult<Box<dyn FileRead>> {
        let mut r = self.open(path)?;
        let skip = offset.min(r.len());
        let remaining = r.len() - skip;
        std::io::copy(&mut r.by_ref().take(skip), &mut std::io::sink())
            .map_err(crate::FsError::from)?;
        Ok(Box::new(TailReader { inner: r, remaining, consumed: 0 }))
    }

    /// Renames the file at `from` to `to`, replacing any existing file at
    /// `to`. Missing parent directories of `to` are created.
    ///
    /// This is the commit step of write-temp-then-rename protocols:
    /// backends that can move a file in one step (in-memory, local disk)
    /// override this so readers observe either the old contents or the
    /// complete new contents, never a partial write. The default
    /// implementation copies then deletes — still torn-free on every
    /// backend because `create` + `sync` publishes whole contents at
    /// once, but not a single atomic step.
    fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        let data = self.read_all(from)?;
        self.write_all(to, &data)?;
        self.delete(from, false)
    }

    /// Convenience: writes an entire file in one call.
    fn write_all(&self, path: &str, data: &[u8]) -> FsResult<()> {
        let mut w = self.create(path)?;
        w.write_all(data).map_err(crate::FsError::from)?;
        w.sync()
    }

    /// Convenience: reads an entire file in one call.
    fn read_all(&self, path: &str) -> FsResult<Vec<u8>> {
        let mut r = self.open(path)?;
        let mut buf = Vec::with_capacity(r.len() as usize);
        r.read_to_end(&mut buf).map_err(crate::FsError::from)?;
        Ok(buf)
    }

    /// Convenience: lists only the files under `path`, recursively,
    /// sorted by path.
    fn list_files_recursive(&self, path: &str) -> FsResult<Vec<FileStatus>> {
        let mut out = Vec::new();
        let mut stack = vec![path.to_string()];
        while let Some(dir) = stack.pop() {
            for entry in self.list(&dir)? {
                match entry.kind {
                    FileKind::File => out.push(entry),
                    FileKind::Directory => stack.push(entry.path.clone()),
                }
            }
        }
        out.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(out)
    }
}

impl<F: FileSystem + ?Sized> FileSystem for std::sync::Arc<F> {
    fn create(&self, path: &str) -> FsResult<Box<dyn FileWrite>> {
        (**self).create(path)
    }

    fn open(&self, path: &str) -> FsResult<Box<dyn FileRead>> {
        (**self).open(path)
    }

    fn list(&self, path: &str) -> FsResult<Vec<FileStatus>> {
        (**self).list(path)
    }

    fn status(&self, path: &str) -> FsResult<FileStatus> {
        (**self).status(path)
    }

    fn exists(&self, path: &str) -> bool {
        (**self).exists(path)
    }

    fn mkdirs(&self, path: &str) -> FsResult<()> {
        (**self).mkdirs(path)
    }

    fn delete(&self, path: &str, recursive: bool) -> FsResult<()> {
        (**self).delete(path, recursive)
    }

    fn append(&self, path: &str) -> FsResult<Box<dyn FileWrite>> {
        (**self).append(path)
    }

    fn tail(&self, path: &str, offset: u64) -> FsResult<Box<dyn FileRead>> {
        (**self).tail(path, offset)
    }

    fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        (**self).rename(from, to)
    }
}

/// Reader returned by the default [`FileSystem::tail`]: the underlying
/// reader already positioned past the skipped prefix, with `len`
/// reporting only the bytes left.
struct TailReader {
    inner: Box<dyn FileRead>,
    remaining: u64,
    consumed: u64,
}

impl Read for TailReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        // Clamp to the remainder computed at open time, so a file grown
        // by a concurrent appender cannot leak a torn tail past the
        // advertised `len()` even when the inner reader would yield it.
        let left = self.remaining.saturating_sub(self.consumed);
        if left == 0 {
            return Ok(0);
        }
        let cap = usize::try_from(left).unwrap_or(usize::MAX).min(out.len());
        let n = self.inner.read(&mut out[..cap])?;
        self.consumed += n as u64;
        Ok(n)
    }
}

impl FileRead for TailReader {
    fn len(&self) -> u64 {
        self.remaining
    }
}
