//! The `FileSystem` trait shared by every backend.

use std::io::{Read, Write};

use crate::error::FsResult;

/// Whether a path names a file or a directory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FileKind {
    /// A regular file.
    File,
    /// A directory.
    Directory,
}

/// Metadata for one directory entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FileStatus {
    /// Absolute normalized path.
    pub path: String,
    /// File or directory.
    pub kind: FileKind,
    /// Length in bytes (0 for directories).
    pub len: u64,
}

impl FileStatus {
    /// True when this entry is a regular file.
    pub fn is_file(&self) -> bool {
        self.kind == FileKind::File
    }
}

/// A writable handle to a file being created.
///
/// Data becomes visible to readers when the handle is dropped or
/// [`FileWrite::sync`] is called, mirroring HDFS's create-then-close
/// visibility model.
pub trait FileWrite: Write + Send {
    /// Flushes buffered data and makes it visible to readers.
    fn sync(&mut self) -> FsResult<()>;
}

/// A readable handle to an existing file.
pub trait FileRead: Read + Send {
    /// Total length of the file in bytes.
    fn len(&self) -> u64;

    /// True when the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A file system where Graft stores trace files.
///
/// All paths are absolute `/`-separated strings (see [`crate::DfsPath`]).
/// Implementations are safe to share across worker threads.
pub trait FileSystem: Send + Sync {
    /// Creates a file (and any missing parent directories), truncating an
    /// existing file at the same path.
    fn create(&self, path: &str) -> FsResult<Box<dyn FileWrite>>;

    /// Opens an existing file for reading.
    fn open(&self, path: &str) -> FsResult<Box<dyn FileRead>>;

    /// Lists the entries of a directory, sorted by path.
    fn list(&self, path: &str) -> FsResult<Vec<FileStatus>>;

    /// Returns metadata for a path.
    fn status(&self, path: &str) -> FsResult<FileStatus>;

    /// Whether the path exists (as a file or directory).
    fn exists(&self, path: &str) -> bool;

    /// Creates a directory and all missing ancestors.
    fn mkdirs(&self, path: &str) -> FsResult<()>;

    /// Deletes a path. Directories require `recursive` unless empty.
    fn delete(&self, path: &str, recursive: bool) -> FsResult<()>;

    /// Convenience: writes an entire file in one call.
    fn write_all(&self, path: &str, data: &[u8]) -> FsResult<()> {
        let mut w = self.create(path)?;
        w.write_all(data).map_err(crate::FsError::from)?;
        w.sync()
    }

    /// Convenience: reads an entire file in one call.
    fn read_all(&self, path: &str) -> FsResult<Vec<u8>> {
        let mut r = self.open(path)?;
        let mut buf = Vec::with_capacity(r.len() as usize);
        r.read_to_end(&mut buf).map_err(crate::FsError::from)?;
        Ok(buf)
    }

    /// Convenience: lists only the files under `path`, recursively,
    /// sorted by path.
    fn list_files_recursive(&self, path: &str) -> FsResult<Vec<FileStatus>> {
        let mut out = Vec::new();
        let mut stack = vec![path.to_string()];
        while let Some(dir) = stack.pop() {
            for entry in self.list(&dir)? {
                match entry.kind {
                    FileKind::File => out.push(entry),
                    FileKind::Directory => stack.push(entry.path.clone()),
                }
            }
        }
        out.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(out)
    }
}

impl<F: FileSystem + ?Sized> FileSystem for std::sync::Arc<F> {
    fn create(&self, path: &str) -> FsResult<Box<dyn FileWrite>> {
        (**self).create(path)
    }

    fn open(&self, path: &str) -> FsResult<Box<dyn FileRead>> {
        (**self).open(path)
    }

    fn list(&self, path: &str) -> FsResult<Vec<FileStatus>> {
        (**self).list(path)
    }

    fn status(&self, path: &str) -> FsResult<FileStatus> {
        (**self).status(path)
    }

    fn exists(&self, path: &str) -> bool {
        (**self).exists(path)
    }

    fn mkdirs(&self, path: &str) -> FsResult<()> {
        (**self).mkdirs(path)
    }

    fn delete(&self, path: &str, recursive: bool) -> FsResult<()> {
        (**self).delete(path, recursive)
    }
}
