//! **RW** — random-walk simulation (paper Scenario 4.2; algorithm from
//! the GPS paper).
//!
//! Every vertex starts with a number of walkers. Each superstep, each
//! vertex keeps one counter per neighbor, randomly increments one
//! counter per walker it holds, then sends the counters as messages; a
//! vertex's walker count for the next superstep is the sum of its
//! incoming counters.
//!
//! [`RandomWalk::with_short_counters`] reproduces the scenario's bug: to
//! "optimize memory and network I/O" the counters are 16-bit, so when
//! more than 32767 walkers move along one edge the counter wraps and the
//! vertex sends a *negative* number of walkers — exactly what a Graft
//! message constraint `walkers >= 0` catches.

use graft_pregel::{Computation, ContextOf, VertexHandleOf};
use serde::{Deserialize, Serialize};

use crate::util::VertexRng;

/// Vertex value: the walkers currently at this vertex.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct RWValue {
    /// Walker count (may go negative under the 16-bit bug).
    pub walkers: i64,
}

/// The random-walk simulation.
pub struct RandomWalk {
    seed: u64,
    steps: u64,
    initial_walkers: i64,
    short_counters: bool,
}

impl RandomWalk {
    /// The correct implementation: 64-bit counters, the paper's default
    /// of 100 initial walkers per vertex.
    pub fn new(seed: u64, steps: u64) -> Self {
        Self { seed, steps, initial_walkers: 100, short_counters: false }
    }

    /// Overrides the number of walkers each vertex starts with.
    pub fn initial_walkers(mut self, walkers: i64) -> Self {
        self.initial_walkers = walkers;
        self
    }

    /// The Scenario 4.2 variant: per-neighbor counters are 16-bit and
    /// wrap silently, like Java `short` arithmetic.
    pub fn with_short_counters(mut self) -> Self {
        self.short_counters = true;
        self
    }

    /// Whether this instance carries the 16-bit counter bug.
    pub fn is_buggy(&self) -> bool {
        self.short_counters
    }
}

impl Computation for RandomWalk {
    type Id = u64;
    type VValue = RWValue;
    type EValue = ();
    type Message = i64;

    fn compute(
        &self,
        vertex: &mut VertexHandleOf<'_, Self>,
        messages: &[i64],
        ctx: &mut ContextOf<'_, Self>,
    ) {
        let walkers =
            if ctx.superstep() == 0 { self.initial_walkers } else { messages.iter().sum() };
        vertex.value_mut().walkers = walkers;

        if ctx.superstep() >= self.steps || vertex.num_edges() == 0 {
            vertex.vote_to_halt();
            return;
        }

        // One counter per neighbor; each walker increments one of them.
        let degree = vertex.num_edges() as u64;
        let mut rng = VertexRng::new(self.seed, vertex.id(), ctx.superstep());
        if self.short_counters {
            // BUG: Java-style `short` counters wrap silently past 32767.
            let mut counters: Vec<i16> = vec![0; degree as usize];
            for _ in 0..walkers.max(0) {
                let pick = rng.next_below(degree) as usize;
                counters[pick] = counters[pick].wrapping_add(1);
            }
            for (edge, &count) in vertex.edges().iter().zip(&counters) {
                let target = edge.target;
                ctx.send_message(target, count as i64);
            }
        } else {
            let mut counters: Vec<i64> = vec![0; degree as usize];
            for _ in 0..walkers.max(0) {
                let pick = rng.next_below(degree) as usize;
                counters[pick] += 1;
            }
            for (edge, &count) in vertex.edges().iter().zip(&counters) {
                let target = edge.target;
                ctx.send_message(target, count);
            }
        }
    }

    fn use_combiner(&self) -> bool {
        true
    }

    fn combine(&self, a: &i64, b: &i64) -> i64 {
        a + b
    }

    fn name(&self) -> String {
        if self.short_counters {
            "RandomWalkShort".into()
        } else {
            "RandomWalk".into()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_pregel::{Engine, Graph};

    fn walk_graph(edges: &[(u64, u64)], n: u64) -> Graph<u64, RWValue, ()> {
        let mut builder = Graph::builder();
        for v in 0..n {
            builder.add_vertex(v, RWValue::default()).unwrap();
        }
        for &(a, b) in edges {
            builder.add_undirected_edge(a, b, ()).unwrap();
        }
        builder.build().unwrap()
    }

    #[test]
    fn walker_mass_is_conserved() {
        let graph = walk_graph(&[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)], 4);
        let outcome = Engine::new(RandomWalk::new(9, 10)).num_workers(2).run(graph).unwrap();
        let total: i64 = outcome.graph.sorted_values().iter().map(|(_, v)| v.walkers).sum();
        assert_eq!(total, 400, "4 vertices x 100 walkers must be conserved");
        for (_, value) in outcome.graph.sorted_values() {
            assert!(value.walkers >= 0);
        }
    }

    #[test]
    fn runs_exactly_steps_supersteps_of_movement() {
        let graph = walk_graph(&[(0, 1)], 2);
        let outcome = Engine::new(RandomWalk::new(1, 5)).run(graph).unwrap();
        // steps supersteps send messages; superstep `steps` consumes the
        // final batch and halts; plus one superstep observing silence.
        assert_eq!(outcome.stats.superstep_count(), 6);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let graph = walk_graph(&[(0, 1), (1, 2), (2, 0), (1, 3)], 4);
            Engine::new(RandomWalk::new(seed, 8))
                .num_workers(3)
                .run(graph)
                .unwrap()
                .graph
                .sorted_values()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds should move walkers differently");
    }

    #[test]
    fn short_counters_overflow_on_heavy_edges() {
        // Two vertices joined by one edge, 40000 walkers each: every
        // superstep all walkers cross the single edge, counter 40000 >
        // 32767 wraps negative.
        let graph = walk_graph(&[(0, 1)], 2);
        let outcome =
            Engine::new(RandomWalk::new(1, 1).initial_walkers(40_000).with_short_counters())
                .run(graph)
                .unwrap();
        let values = outcome.graph.sorted_values();
        assert!(
            values.iter().any(|(_, v)| v.walkers < 0),
            "short counters must have overflowed: {values:?}"
        );
    }

    #[test]
    fn correct_counters_do_not_overflow_on_the_same_input() {
        let graph = walk_graph(&[(0, 1)], 2);
        let outcome =
            Engine::new(RandomWalk::new(1, 1).initial_walkers(40_000)).run(graph).unwrap();
        for (_, value) in outcome.graph.sorted_values() {
            assert_eq!(value.walkers, 40_000);
        }
    }

    #[test]
    fn walkers_stuck_on_isolated_vertices() {
        let graph = walk_graph(&[], 3);
        let outcome = Engine::new(RandomWalk::new(2, 4)).run(graph).unwrap();
        for (_, value) in outcome.graph.sorted_values() {
            assert_eq!(value.walkers, 100);
        }
    }
}
