//! **MWM** — the Preis ½-approximation of maximum-weight matching
//! (paper Scenario 4.3).
//!
//! Each round, every live vertex points at its maximum-weight live
//! neighbor and proposes; when two vertices propose to each other the
//! edge joins the matching and both endpoints (with all incident edges)
//! leave the graph. Rounds repeat until no vertices remain.
//!
//! On a well-formed undirected graph (symmetric weights) at least one
//! mutual proposal happens every round, so the algorithm terminates. If
//! the input erroneously has *asymmetric* weights on the symmetric
//! directed edges — Scenario 4.3's input corruption — remaining vertices
//! can point at each other in long cycles forever and the job never
//! converges, which is how the paper demonstrates using Graft to find
//! input-graph errors.

use graft_pregel::{Computation, ContextOf, VertexHandleOf};
use serde::{Deserialize, Serialize};

/// Vertex value of the matching algorithm.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct MWMValue {
    /// The partner this vertex matched with, once matched.
    pub matched_with: Option<u64>,
    /// The neighbor proposed to in the current round.
    pub proposed_to: Option<u64>,
}

/// Messages of the matching algorithm.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MWMMessage {
    /// "I propose to you" (sender id).
    Propose(u64),
    /// "I am matched; drop your edges to me" (sender id).
    Matched(u64),
}

/// The round phases, derived from `superstep % 3`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MWMPhase {
    /// Vertices point at their best neighbor and propose.
    Propose,
    /// Mutual proposals become matches; matches are announced.
    Match,
    /// Edges to matched vertices are removed; matched vertices retire.
    Cleanup,
}

impl MWMPhase {
    /// The phase of a superstep.
    pub fn of(superstep: u64) -> Self {
        match superstep % 3 {
            0 => MWMPhase::Propose,
            1 => MWMPhase::Match,
            _ => MWMPhase::Cleanup,
        }
    }
}

/// The Preis maximum-weight-matching computation.
pub struct MaxWeightMatching;

impl MaxWeightMatching {
    /// Creates the computation.
    pub fn new() -> Self {
        Self
    }
}

impl Default for MaxWeightMatching {
    fn default() -> Self {
        Self::new()
    }
}

impl Computation for MaxWeightMatching {
    type Id = u64;
    type VValue = MWMValue;
    type EValue = f64;
    type Message = MWMMessage;

    fn compute(
        &self,
        vertex: &mut VertexHandleOf<'_, Self>,
        messages: &[MWMMessage],
        ctx: &mut ContextOf<'_, Self>,
    ) {
        if vertex.value().matched_with.is_some() {
            // Already retired; ignore any stragglers.
            vertex.vote_to_halt();
            return;
        }

        match MWMPhase::of(ctx.superstep()) {
            MWMPhase::Propose => {
                // Point at the maximum-weight neighbor, ties broken by the
                // larger id (a consistent total order, so well-formed
                // inputs always produce at least one mutual pair).
                let best = vertex
                    .edges()
                    .iter()
                    .max_by(|a, b| {
                        a.value
                            .partial_cmp(&b.value)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.target.cmp(&b.target))
                    })
                    .map(|e| e.target);
                match best {
                    Some(target) => {
                        vertex.value_mut().proposed_to = Some(target);
                        let id = vertex.id();
                        ctx.send_message(target, MWMMessage::Propose(id));
                    }
                    None => {
                        // No live neighbors left: permanently unmatched.
                        vertex.vote_to_halt();
                    }
                }
            }
            MWMPhase::Match => {
                let proposed = vertex.value().proposed_to;
                let mutual = messages.iter().any(|m| match m {
                    MWMMessage::Propose(from) => Some(*from) == proposed,
                    MWMMessage::Matched(_) => false,
                });
                if mutual {
                    let partner = proposed.expect("mutual implies a proposal was made");
                    vertex.value_mut().matched_with = Some(partner);
                    let id = vertex.id();
                    ctx.send_message_to_all_edges(vertex, MWMMessage::Matched(id));
                    // Stay active one more superstep so cleanup retires us
                    // after neighbors have been told.
                }
            }
            MWMPhase::Cleanup => {
                for message in messages {
                    if let MWMMessage::Matched(from) = message {
                        while vertex.remove_edge(*from) {}
                    }
                }
                if vertex.value().matched_with.is_some() {
                    vertex.vote_to_halt();
                } else {
                    vertex.value_mut().proposed_to = None;
                }
            }
        }
    }

    fn name(&self) -> String {
        "MaxWeightMatching".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::validate_matching;
    use graft_pregel::{Engine, Graph, HaltReason};

    fn weighted_graph(edges: &[(u64, u64, f64)], n: u64) -> Graph<u64, MWMValue, f64> {
        let mut builder = Graph::builder();
        for v in 0..n {
            builder.add_vertex(v, MWMValue::default()).unwrap();
        }
        for &(a, b, w) in edges {
            builder.add_undirected_edge(a, b, w).unwrap();
        }
        builder.build().unwrap()
    }

    fn run_mwm(graph: Graph<u64, MWMValue, f64>) -> graft_pregel::JobOutcome<MaxWeightMatching> {
        Engine::new(MaxWeightMatching::new())
            .num_workers(3)
            .max_supersteps(1000)
            .run(graph)
            .unwrap()
    }

    #[test]
    fn matches_a_single_edge() {
        let outcome = run_mwm(weighted_graph(&[(0, 1, 5.0)], 2));
        assert_eq!(outcome.halt_reason, HaltReason::AllVerticesHalted);
        let values = outcome.graph.sorted_values();
        assert_eq!(values[0].1.matched_with, Some(1));
        assert_eq!(values[1].1.matched_with, Some(0));
    }

    #[test]
    fn picks_the_heavier_edge_on_a_path() {
        // 0 -1.0- 1 -9.0- 2 -1.0- 3 : the optimal (and greedy) matching
        // takes (1,2), leaving 0 and 3 unmatched... but then (0) and (3)
        // have no live partners. Greedy weight = 9; both side edges die.
        let outcome = run_mwm(weighted_graph(&[(0, 1, 1.0), (1, 2, 9.0), (2, 3, 1.0)], 4));
        let matched = validate_matching(&outcome.graph).unwrap();
        assert_eq!(matched, vec![(1, 2)]);
    }

    #[test]
    fn produces_a_valid_matching_on_random_graphs() {
        for seed in 0..5u64 {
            let mut edges = Vec::new();
            let n = 20u64;
            for a in 0..n {
                for b in a + 1..n {
                    let h = crate::util::vertex_rand(seed, a * 1000 + b, 0);
                    if h.is_multiple_of(5) {
                        edges.push((a, b, (h % 1000) as f64 / 10.0 + 0.1));
                    }
                }
            }
            let outcome = run_mwm(weighted_graph(&edges, n));
            assert_eq!(outcome.halt_reason, HaltReason::AllVerticesHalted, "seed {seed}");
            let matched = validate_matching(&outcome.graph).unwrap();
            // Half-approximation sanity: matched weight >= 1/2 greedy
            // (the Preis algorithm *is* a greedy variant, so compare to
            // the sequential greedy matching weight).
            let weight: f64 = matched
                .iter()
                .map(|&(a, b)| {
                    edges
                        .iter()
                        .find(|&&(x, y, _)| (x, y) == (a, b) || (y, x) == (a, b))
                        .map(|&(_, _, w)| w)
                        .unwrap_or(0.0)
                })
                .sum();
            let greedy = crate::reference::greedy_matching_weight(&edges);
            assert!(
                weight >= greedy / 2.0 - 1e-9,
                "seed {seed}: weight {weight} < half of greedy {greedy}"
            );
        }
    }

    #[test]
    fn asymmetric_weights_prevent_convergence() {
        // A 4-cycle where each vertex prefers its clockwise neighbor:
        // the "undirected" weights are asymmetric, so proposals chase
        // each other around the cycle forever.
        let mut builder = Graph::<u64, MWMValue, f64>::builder();
        for v in 0..4 {
            builder.add_vertex(v, MWMValue::default()).unwrap();
        }
        for v in 0..4u64 {
            let next = (v + 1) % 4;
            // v -> next is heavy, next -> v is light: everyone proposes
            // clockwise, nobody agrees.
            builder.add_edge(v, next, 10.0).unwrap();
            builder.add_edge(next, v, 1.0).unwrap();
        }
        let graph = builder.build().unwrap();
        assert_eq!(graph.asymmetric_edges().len(), 0, "edges exist in both directions");
        let outcome = Engine::new(MaxWeightMatching::new()).max_supersteps(300).run(graph).unwrap();
        assert_eq!(
            outcome.halt_reason,
            HaltReason::MaxSuperstepsReached,
            "asymmetric weights must loop forever"
        );
        for (_, value) in outcome.graph.sorted_values() {
            assert_eq!(value.matched_with, None);
        }
    }

    #[test]
    fn symmetric_version_of_the_same_cycle_converges() {
        let outcome =
            run_mwm(weighted_graph(&[(0, 1, 10.0), (1, 2, 1.0), (2, 3, 10.0), (3, 0, 1.0)], 4));
        assert_eq!(outcome.halt_reason, HaltReason::AllVerticesHalted);
        let matched = validate_matching(&outcome.graph).unwrap();
        assert_eq!(matched, vec![(0, 1), (2, 3)]);
    }
}
