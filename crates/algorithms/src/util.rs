//! Deterministic pseudo-randomness helpers shared by the algorithms.
//!
//! Vertex-centric algorithms must draw "random" values *reproducibly*:
//! Graft's replay promise (same vertex, same superstep, same messages ⇒
//! same behaviour) only holds if randomness is a pure function of the
//! vertex context. These helpers derive random streams from
//! `(seed, vertex id, superstep)` with a SplitMix64 finalizer.

/// SplitMix64 mix of a single value — fast, well-distributed.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derives a deterministic 64-bit value from a seed, a vertex id, and a
/// superstep.
#[inline]
pub fn vertex_rand(seed: u64, vertex: u64, superstep: u64) -> u64 {
    mix64(seed ^ mix64(vertex).wrapping_add(mix64(superstep).rotate_left(17)))
}

/// A tiny deterministic counter-mode generator for per-vertex streams
/// (used by the random-walk simulation to place each walker).
pub struct VertexRng {
    state: u64,
    counter: u64,
}

impl VertexRng {
    /// Creates a stream for `(seed, vertex, superstep)`.
    pub fn new(seed: u64, vertex: u64, superstep: u64) -> Self {
        Self { state: vertex_rand(seed, vertex, superstep), counter: 0 }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.counter = self.counter.wrapping_add(1);
        mix64(self.state ^ self.counter)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift range reduction (Lemire); bias is negligible for
        // the simulation's purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
        // Consecutive inputs differ in many bits.
        let a = mix64(1000);
        let b = mix64(1001);
        assert!((a ^ b).count_ones() > 16);
    }

    #[test]
    fn vertex_rand_varies_in_all_arguments() {
        let base = vertex_rand(1, 2, 3);
        assert_ne!(base, vertex_rand(9, 2, 3));
        assert_ne!(base, vertex_rand(1, 9, 3));
        assert_ne!(base, vertex_rand(1, 2, 9));
        assert_eq!(base, vertex_rand(1, 2, 3));
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut rng = VertexRng::new(7, 11, 13);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            let v = rng.next_below(4);
            assert!(v < 4);
            counts[v as usize] += 1;
        }
        for (bucket, &count) in counts.iter().enumerate() {
            assert!((800..1200).contains(&count), "bucket {bucket} has {count} of 4000 draws");
        }
    }

    #[test]
    fn streams_are_reproducible() {
        let a: Vec<u64> = {
            let mut rng = VertexRng::new(1, 2, 3);
            (0..10).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = VertexRng::new(1, 2, 3);
            (0..10).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
