//! Single-source shortest paths with a min combiner — the classic
//! message-driven Pregel example.

use graft_pregel::{Computation, ContextOf, VertexHandleOf};

/// Message-driven SSSP over non-negative `f64` edge weights. Unreached
/// vertices finish with `f64::INFINITY`.
pub struct ShortestPaths {
    source: u64,
}

impl ShortestPaths {
    /// Creates an SSSP run from `source`.
    pub fn new(source: u64) -> Self {
        Self { source }
    }
}

impl Computation for ShortestPaths {
    type Id = u64;
    type VValue = f64;
    type EValue = f64;
    type Message = f64;

    fn compute(
        &self,
        vertex: &mut VertexHandleOf<'_, Self>,
        messages: &[f64],
        ctx: &mut ContextOf<'_, Self>,
    ) {
        if ctx.superstep() == 0 {
            vertex.set_value(f64::INFINITY);
        }
        let candidate = if ctx.superstep() == 0 && vertex.id() == self.source {
            0.0
        } else {
            messages.iter().copied().fold(f64::INFINITY, f64::min)
        };
        if candidate < *vertex.value() {
            vertex.set_value(candidate);
            for edge in vertex.edges() {
                ctx.send_message(edge.target, candidate + edge.value);
            }
        }
        vertex.vote_to_halt();
    }

    fn use_combiner(&self) -> bool {
        true
    }

    fn combine(&self, a: &f64, b: &f64) -> f64 {
        a.min(*b)
    }

    fn name(&self) -> String {
        "ShortestPaths".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::dijkstra;
    use graft_pregel::{Engine, Graph};

    fn weighted(edges: &[(u64, u64, f64)], n: u64) -> Graph<u64, f64, f64> {
        let mut builder = Graph::builder();
        for v in 0..n {
            builder.add_vertex(v, f64::INFINITY).unwrap();
        }
        for &(a, b, w) in edges {
            builder.add_edge(a, b, w).unwrap();
        }
        builder.build().unwrap()
    }

    #[test]
    fn simple_path_distances() {
        let edges = [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 10.0)];
        let outcome = Engine::new(ShortestPaths::new(0)).run(weighted(&edges, 3)).unwrap();
        assert_eq!(outcome.graph.sorted_values(), vec![(0, 0.0), (1, 1.0), (2, 3.0)]);
    }

    #[test]
    fn unreachable_vertices_stay_infinite() {
        let edges = [(0, 1, 1.0)];
        let outcome = Engine::new(ShortestPaths::new(0)).run(weighted(&edges, 3)).unwrap();
        let values = outcome.graph.sorted_values();
        assert_eq!(values[2].1, f64::INFINITY);
    }

    #[test]
    fn agrees_with_dijkstra_on_pseudorandom_graphs() {
        for seed in 0..5u64 {
            let n = 40u64;
            let mut edges = Vec::new();
            for a in 0..n {
                for b in 0..n {
                    if a != b && crate::util::vertex_rand(seed, a * n + b, 2).is_multiple_of(8) {
                        let w = (crate::util::vertex_rand(seed, a * n + b, 3) % 100) as f64 + 1.0;
                        edges.push((a, b, w));
                    }
                }
            }
            let outcome =
                Engine::new(ShortestPaths::new(0)).num_workers(4).run(weighted(&edges, n)).unwrap();
            let expected = dijkstra(n, &edges, 0);
            for (vertex, value) in outcome.graph.sorted_values() {
                let want = expected[vertex as usize];
                assert!(
                    (value == want) || (value - want).abs() < 1e-9,
                    "seed {seed} vertex {vertex}: engine {value} vs dijkstra {want}"
                );
            }
        }
    }
}
