//! PageRank with a sum combiner — a standard Pregel workload, used here
//! as an engine-correctness yardstick and in examples.

use graft_pregel::{Computation, ContextOf, VertexHandleOf};

/// Fixed-iteration PageRank with damping 0.85.
///
/// Dangling vertices (no out-edges) leak their rank mass, as in the
/// original Pregel formulation; the reference implementation in
/// [`crate::reference::pagerank_reference`] models the same behaviour so
/// the two agree to floating-point precision.
pub struct PageRank {
    iterations: u64,
    damping: f64,
}

impl PageRank {
    /// Creates a PageRank run with the given iteration count.
    pub fn new(iterations: u64) -> Self {
        Self { iterations, damping: 0.85 }
    }

    /// Overrides the damping factor (default 0.85).
    pub fn damping(mut self, damping: f64) -> Self {
        self.damping = damping;
        self
    }
}

impl Computation for PageRank {
    type Id = u64;
    type VValue = f64;
    type EValue = ();
    type Message = f64;

    fn compute(
        &self,
        vertex: &mut VertexHandleOf<'_, Self>,
        messages: &[f64],
        ctx: &mut ContextOf<'_, Self>,
    ) {
        let n = ctx.num_vertices() as f64;
        if ctx.superstep() == 0 {
            vertex.set_value(1.0 / n);
        } else {
            let received: f64 = messages.iter().sum();
            vertex.set_value((1.0 - self.damping) / n + self.damping * received);
        }
        if ctx.superstep() < self.iterations {
            let degree = vertex.num_edges();
            if degree > 0 {
                let share = *vertex.value() / degree as f64;
                ctx.send_message_to_all_edges(vertex, share);
            }
        } else {
            vertex.vote_to_halt();
        }
    }

    fn use_combiner(&self) -> bool {
        true
    }

    fn combine(&self, a: &f64, b: &f64) -> f64 {
        a + b
    }

    fn name(&self) -> String {
        "PageRank".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::pagerank_reference;
    use graft_pregel::{Engine, Graph};

    fn directed(edges: &[(u64, u64)], n: u64) -> Graph<u64, f64, ()> {
        let mut builder = Graph::builder();
        for v in 0..n {
            builder.add_vertex(v, 0.0).unwrap();
        }
        for &(a, b) in edges {
            builder.add_edge(a, b, ()).unwrap();
        }
        builder.build().unwrap()
    }

    #[test]
    fn agrees_with_the_reference_power_iteration() {
        let edges = [(0, 1), (1, 2), (2, 0), (2, 1), (3, 2), (3, 0)];
        let graph = directed(&edges, 4);
        let outcome = Engine::new(PageRank::new(30)).num_workers(3).run(graph).unwrap();
        let expected = pagerank_reference(4, &edges, 30, 0.85);
        for (vertex, value) in outcome.graph.sorted_values() {
            assert!(
                (value - expected[vertex as usize]).abs() < 1e-12,
                "vertex {vertex}: engine {value} vs reference {}",
                expected[vertex as usize]
            );
        }
    }

    #[test]
    fn symmetric_cycle_gives_uniform_ranks() {
        let edges = [(0, 1), (1, 2), (2, 3), (3, 0)];
        let outcome = Engine::new(PageRank::new(20)).run(directed(&edges, 4)).unwrap();
        for (_, value) in outcome.graph.sorted_values() {
            assert!((value - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn hub_collects_more_rank() {
        // Everyone points at vertex 0; vertex 0 points at vertex 1.
        let edges = [(1, 0), (2, 0), (3, 0), (0, 1)];
        let outcome = Engine::new(PageRank::new(25)).run(directed(&edges, 4)).unwrap();
        let values = outcome.graph.sorted_values();
        assert!(values[0].1 > values[2].1 * 2.0, "hub should dominate: {values:?}");
    }
}
