//! Sequential reference implementations and validators used to check the
//! vertex-centric algorithms.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use graft_pregel::Graph;

use crate::coloring::GCValue;
use crate::matching::MWMValue;

/// Union-find connected components: returns, for each vertex `0..n`, the
/// minimum vertex id of its component (matching the min-label algorithm).
pub fn union_find_components(n: u64, edges: &[(u64, u64)]) -> Vec<u64> {
    let n = n as usize;
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for &(a, b) in edges {
        let (ra, rb) = (find(&mut parent, a as usize), find(&mut parent, b as usize));
        if ra != rb {
            // Union by min id keeps the min-label invariant trivially.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parent[hi] = lo;
        }
    }
    (0..n).map(|v| find(&mut parent, v) as u64).collect()
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    vertex: u64,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap, we need min-dist first.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then(other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra's algorithm over directed weighted edges; unreachable
/// vertices get `f64::INFINITY`.
pub fn dijkstra(n: u64, edges: &[(u64, u64, f64)], source: u64) -> Vec<f64> {
    let n = n as usize;
    let mut adjacency: Vec<Vec<(u64, f64)>> = vec![Vec::new(); n];
    for &(a, b, w) in edges {
        adjacency[a as usize].push((b, w));
    }
    let mut dist = vec![f64::INFINITY; n];
    dist[source as usize] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry { dist: 0.0, vertex: source });
    while let Some(HeapEntry { dist: d, vertex }) = heap.pop() {
        if d > dist[vertex as usize] {
            continue;
        }
        for &(next, weight) in &adjacency[vertex as usize] {
            let candidate = d + weight;
            if candidate < dist[next as usize] {
                dist[next as usize] = candidate;
                heap.push(HeapEntry { dist: candidate, vertex: next });
            }
        }
    }
    dist
}

/// Power-iteration PageRank matching the Pregel formulation: each
/// iteration, every vertex distributes `damping * rank / out_degree`
/// along its out-edges and resets to `(1 - damping) / n` plus what it
/// receives; dangling vertices leak their rank.
pub fn pagerank_reference(n: u64, edges: &[(u64, u64)], iterations: u64, damping: f64) -> Vec<f64> {
    let n_us = n as usize;
    let mut out_degree = vec![0usize; n_us];
    for &(a, _) in edges {
        out_degree[a as usize] += 1;
    }
    let mut rank = vec![1.0 / n as f64; n_us];
    for _ in 0..iterations {
        let mut next = vec![(1.0 - damping) / n as f64; n_us];
        for &(a, b) in edges {
            next[b as usize] += damping * rank[a as usize] / out_degree[a as usize] as f64;
        }
        rank = next;
    }
    rank
}

/// Validates a coloring result: every vertex colored, and no two
/// adjacent vertices share a color. Returns the number of distinct
/// colors used.
pub fn validate_coloring(graph: &Graph<u64, GCValue, ()>) -> Result<u64, String> {
    let mut colors = std::collections::BTreeSet::new();
    for (vertex, value, edges) in graph.iter() {
        let Some(color) = value.color else {
            return Err(format!("vertex {vertex} is uncolored"));
        };
        colors.insert(color);
        for edge in edges {
            if let Some(neighbor) = graph.value(edge.target) {
                if neighbor.color == Some(color) {
                    return Err(format!(
                        "adjacent vertices {vertex} and {} share color {color}",
                        edge.target
                    ));
                }
            }
        }
    }
    Ok(colors.len() as u64)
}

/// Validates a matching result: partner pointers must be symmetric and
/// unique. Returns the matched pairs `(a, b)` with `a < b`, sorted.
pub fn validate_matching(graph: &Graph<u64, MWMValue, f64>) -> Result<Vec<(u64, u64)>, String> {
    let mut pairs = std::collections::BTreeSet::new();
    for (vertex, value, _) in graph.iter() {
        if let Some(partner) = value.matched_with {
            let back = graph
                .value(partner)
                .ok_or_else(|| format!("vertex {vertex} matched with missing {partner}"))?;
            if back.matched_with != Some(vertex) {
                return Err(format!(
                    "vertex {vertex} matched with {partner}, but {partner} matched with {:?}",
                    back.matched_with
                ));
            }
            pairs.insert((vertex.min(partner), vertex.max(partner)));
        }
    }
    Ok(pairs.into_iter().collect())
}

/// Weight of the sequential greedy matching (repeatedly take the
/// heaviest remaining edge) — the classic ½-approximation baseline.
pub fn greedy_matching_weight(edges: &[(u64, u64, f64)]) -> f64 {
    let mut sorted: Vec<&(u64, u64, f64)> = edges.iter().collect();
    sorted.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(Ordering::Equal));
    let mut used = std::collections::BTreeSet::new();
    let mut weight = 0.0;
    for &&(a, b, w) in &sorted {
        if !used.contains(&a) && !used.contains(&b) {
            used.insert(a);
            used.insert(b);
            weight += w;
        }
    }
    weight
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_min_labels() {
        let labels = union_find_components(6, &[(0, 1), (1, 2), (4, 5)]);
        assert_eq!(labels, vec![0, 0, 0, 3, 4, 4]);
    }

    #[test]
    fn dijkstra_basics() {
        let dist = dijkstra(4, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)], 0);
        assert_eq!(dist, vec![0.0, 1.0, 2.0, f64::INFINITY]);
    }

    #[test]
    fn pagerank_reference_sums_below_one_with_dangling() {
        // Vertex 2 dangles; total rank leaks but stays positive.
        let rank = pagerank_reference(3, &[(0, 1), (1, 2)], 10, 0.85);
        let total: f64 = rank.iter().sum();
        assert!(total > 0.0 && total <= 1.0 + 1e-12);
    }

    #[test]
    fn greedy_weight() {
        let w = greedy_matching_weight(&[(0, 1, 5.0), (1, 2, 4.0), (2, 3, 3.0)]);
        assert_eq!(w, 8.0);
    }
}
