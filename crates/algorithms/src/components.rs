//! Connected components by min-label propagation — the algorithm behind
//! the paper's Figure 5 screenshot ("a connected components algorithm,
//! where the values are vertex IDs").

use graft_pregel::{Computation, ContextOf, VertexHandleOf};

/// Min-label propagation: every vertex converges to the smallest vertex
/// id in its (weakly) connected component. Works on undirected graphs
/// (symmetric directed edges).
pub struct ConnectedComponents;

impl ConnectedComponents {
    /// Creates the computation.
    pub fn new() -> Self {
        Self
    }
}

impl Default for ConnectedComponents {
    fn default() -> Self {
        Self::new()
    }
}

impl Computation for ConnectedComponents {
    type Id = u64;
    type VValue = u64;
    type EValue = ();
    type Message = u64;

    fn compute(
        &self,
        vertex: &mut VertexHandleOf<'_, Self>,
        messages: &[u64],
        ctx: &mut ContextOf<'_, Self>,
    ) {
        if ctx.superstep() == 0 {
            let id = vertex.id();
            vertex.set_value(id);
            ctx.send_message_to_all_edges(vertex, id);
            vertex.vote_to_halt();
            return;
        }
        let best = messages.iter().copied().min().expect("woken by a message");
        if best < *vertex.value() {
            vertex.set_value(best);
            ctx.send_message_to_all_edges(vertex, best);
        }
        vertex.vote_to_halt();
    }

    fn use_combiner(&self) -> bool {
        true
    }

    fn combine(&self, a: &u64, b: &u64) -> u64 {
        *a.min(b)
    }

    fn name(&self) -> String {
        "ConnectedComponents".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::union_find_components;
    use graft_pregel::{Engine, Graph};

    fn graph(edges: &[(u64, u64)], n: u64) -> Graph<u64, u64, ()> {
        let mut builder = Graph::builder();
        for v in 0..n {
            builder.add_vertex(v, u64::MAX).unwrap();
        }
        for &(a, b) in edges {
            builder.add_undirected_edge(a, b, ()).unwrap();
        }
        builder.build().unwrap()
    }

    #[test]
    fn labels_two_components() {
        let g = graph(&[(0, 1), (1, 2), (3, 4)], 5);
        let outcome = Engine::new(ConnectedComponents).num_workers(2).run(g).unwrap();
        let values = outcome.graph.sorted_values();
        assert_eq!(values, vec![(0, 0), (1, 0), (2, 0), (3, 3), (4, 3)]);
    }

    #[test]
    fn matches_union_find_on_pseudorandom_graphs() {
        for seed in 0..5u64 {
            let n = 60u64;
            let mut edges = Vec::new();
            for a in 0..n {
                for b in a + 1..n {
                    if crate::util::vertex_rand(seed, a * n + b, 1).is_multiple_of(50) {
                        edges.push((a, b));
                    }
                }
            }
            let outcome =
                Engine::new(ConnectedComponents).num_workers(4).run(graph(&edges, n)).unwrap();
            let expected = union_find_components(n, &edges);
            let actual: Vec<u64> =
                outcome.graph.sorted_values().into_iter().map(|(_, v)| v).collect();
            assert_eq!(actual, expected, "seed {seed}");
        }
    }

    #[test]
    fn isolated_vertices_label_themselves() {
        let outcome = Engine::new(ConnectedComponents).run(graph(&[], 3)).unwrap();
        assert_eq!(outcome.graph.sorted_values(), vec![(0, 0), (1, 1), (2, 2)]);
    }
}
