//! # graft-algorithms
//!
//! Vertex-centric algorithm implementations used by the Graft paper's
//! demo scenarios (Section 4), plus the standard Pregel algorithms its
//! figures reference:
//!
//! * [`coloring`] — **GC**, greedy graph coloring by iterative maximal
//!   independent sets (Gebremedhin–Manne style), master-coordinated
//!   phases; with [`coloring::GraphColoring::buggy`], which reproduces the
//!   paper's Scenario 4.1 bug (adjacent vertices entering the same MIS).
//! * [`random_walk`] — **RW**, random-walk simulation (from the GPS
//!   paper); with [`random_walk::RandomWalk::with_short_counters`], which reproduces the
//!   Scenario 4.2 bug (16-bit walker counters overflowing into negative
//!   message values).
//! * [`matching`] — **MWM**, the Preis ½-approximation of maximum-weight
//!   matching; loops forever on graphs with asymmetric "undirected" edge
//!   weights, Scenario 4.3's input error.
//! * [`components`] — connected components by min-label propagation (the
//!   algorithm behind the paper's Figure 5 screenshot).
//! * [`pagerank`] — PageRank with a sum combiner.
//! * [`sssp`] — single-source shortest paths with a min combiner.
//!
//! [`mod@reference`] holds sequential implementations (union-find, Dijkstra,
//! power iteration, coloring validation, matching validation) used to
//! verify the vertex-centric versions.

#![forbid(unsafe_code)]

pub mod coloring;
pub mod components;
pub mod matching;
pub mod pagerank;
pub mod random_walk;
pub mod reference;
pub mod sssp;
pub mod util;
