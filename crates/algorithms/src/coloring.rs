//! **GC** — greedy graph coloring by iterative maximal independent sets
//! (paper Scenario 4.1; algorithm from Gebremedhin–Manne and the
//! "Optimizing Graph Algorithms on Pregel-like Systems" paper).
//!
//! The algorithm repeatedly finds a maximal independent set (MIS) of the
//! uncolored vertices with Luby-style randomized rounds, assigns each
//! MIS a fresh color, and removes it, until every vertex is colored.
//! A master computation drives the phases through a `"phase"` aggregator
//! (whose value — e.g. `"CONFLICT-RESOLUTION"` — is exactly what shows
//! up in the paper's Figure 6 mock).
//!
//! [`GraphColoring::buggy`] reproduces the scenario's bug: during
//! conflict resolution it compares coarsened priorities with `>=` and no
//! id tie-break, so two adjacent vertices whose priorities collide both
//! enter the MIS and end up with the same color.

use graft_pregel::{
    AggOp, AggValue, AggregatorRegistry, Computation, ContextOf, MasterComputation, MasterContext,
    VertexHandleOf,
};
use serde::{Deserialize, Serialize};

use crate::util::vertex_rand;

/// Where a vertex stands in the current MIS construction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum GCState {
    /// Not yet decided for the current MIS.
    Undecided,
    /// Joined the current MIS.
    InSet,
    /// Excluded from the current MIS (has an InSet neighbor).
    OutOfSet,
    /// Colored and removed from the residual graph.
    Colored,
}

/// Vertex value of the coloring algorithm.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct GCValue {
    /// The assigned color, once colored.
    pub color: Option<u64>,
    /// MIS state.
    pub state: GCState,
    /// The priority drawn in the current selection phase.
    pub priority: u64,
}

impl Default for GCValue {
    fn default() -> Self {
        Self { color: None, state: GCState::Undecided, priority: 0 }
    }
}

/// Messages exchanged by the coloring algorithm.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum GCMessage {
    /// "My priority this round is `priority`" (with the sender id as the
    /// tie-breaker).
    Priority {
        /// The drawn priority.
        priority: u64,
        /// The sending vertex (total-order tie-break).
        sender: u64,
    },
    /// "I joined the MIS."
    InSet,
}

/// Phase names, stored in the `"phase"` aggregator.
pub mod phases {
    /// Before the master's first run.
    pub const INIT: &str = "INIT";
    /// Undecided vertices draw and broadcast priorities.
    pub const SELECTION: &str = "SELECTION";
    /// Local priority maxima join the MIS.
    pub const CONFLICT_RESOLUTION: &str = "CONFLICT-RESOLUTION";
    /// Neighbors of new MIS members drop out; undecided count taken.
    pub const NOTIFY: &str = "NOTIFY";
    /// The finished MIS takes the current color; the rest resets.
    pub const COLOR_ASSIGNMENT: &str = "COLOR-ASSIGNMENT";
}

/// Aggregator names used by GC.
pub mod aggregators {
    /// Current phase (Text, persistent, master-driven).
    pub const PHASE: &str = "phase";
    /// Number of still-undecided vertices (Long, per superstep).
    pub const UNDECIDED: &str = "undecided";
    /// Number of not-yet-colored vertices (Long, per superstep).
    pub const UNCOLORED: &str = "uncolored";
    /// The color the current MIS will receive (Long, persistent).
    pub const COLOR: &str = "color";
}

/// The graph-coloring vertex program. Requires [`GraphColoringMaster`].
pub struct GraphColoring {
    seed: u64,
    buggy: bool,
}

impl GraphColoring {
    /// The correct implementation.
    pub fn new(seed: u64) -> Self {
        Self { seed, buggy: false }
    }

    /// The Scenario 4.1 variant: coarsened priorities compared with `>=`
    /// and no tie-break, so adjacent vertices can both enter the MIS.
    pub fn buggy(seed: u64) -> Self {
        Self { seed, buggy: true }
    }

    fn priority(&self, vertex: u64, superstep: u64) -> u64 {
        let raw = vertex_rand(self.seed, vertex, superstep);
        if self.buggy {
            // The "optimized" priority keeps only 3 bits; collisions among
            // neighbors abound.
            raw & 0x7
        } else {
            raw
        }
    }

    fn wins_conflict(&self, mine: (u64, u64), theirs: &[(u64, u64)]) -> bool {
        if self.buggy {
            // BUG: ties are kept (>=) and the id tie-break is ignored, so
            // two adjacent vertices with equal priorities both "win".
            theirs.iter().all(|&(priority, _)| mine.0 >= priority)
        } else {
            theirs.iter().all(|&other| mine > other)
        }
    }
}

impl Computation for GraphColoring {
    type Id = u64;
    type VValue = GCValue;
    type EValue = ();
    type Message = GCMessage;

    fn compute(
        &self,
        vertex: &mut VertexHandleOf<'_, Self>,
        messages: &[GCMessage],
        ctx: &mut ContextOf<'_, Self>,
    ) {
        let phase = ctx
            .get_aggregated(aggregators::PHASE)
            .and_then(|v| v.as_text().map(str::to_string))
            .unwrap_or_else(|| phases::INIT.to_string());

        if vertex.value().state == GCState::Colored {
            // Done for good; only reactivated by stray neighbor messages.
            vertex.vote_to_halt();
            return;
        }

        match phase.as_str() {
            phases::SELECTION if vertex.value().state == GCState::Undecided => {
                let priority = self.priority(vertex.id(), ctx.superstep());
                vertex.value_mut().priority = priority;
                let id = vertex.id();
                ctx.send_message_to_all_edges(vertex, GCMessage::Priority { priority, sender: id });
            }
            phases::CONFLICT_RESOLUTION if vertex.value().state == GCState::Undecided => {
                let neighbor_priorities: Vec<(u64, u64)> = messages
                    .iter()
                    .filter_map(|m| match m {
                        GCMessage::Priority { priority, sender } => Some((*priority, *sender)),
                        GCMessage::InSet => None,
                    })
                    .collect();
                let mine = (vertex.value().priority, vertex.id());
                graft::trace_point!(
                    "conflict resolution",
                    "mine" => mine,
                    "neighbors" => neighbor_priorities
                );
                if self.wins_conflict(mine, &neighbor_priorities) {
                    graft::trace_point!("won conflict: joining MIS", "buggy_tie_break" => self.buggy);
                    vertex.value_mut().state = GCState::InSet;
                    ctx.send_message_to_all_edges(vertex, GCMessage::InSet);
                } else {
                    graft::trace_point!("lost conflict: staying undecided");
                }
            }
            phases::NOTIFY => {
                if vertex.value().state == GCState::Undecided
                    && messages.iter().any(|m| matches!(m, GCMessage::InSet))
                {
                    vertex.value_mut().state = GCState::OutOfSet;
                }
                if vertex.value().state == GCState::Undecided {
                    ctx.aggregate(aggregators::UNDECIDED, AggValue::Long(1));
                }
            }
            phases::COLOR_ASSIGNMENT => {
                let color =
                    ctx.get_aggregated(aggregators::COLOR)
                        .and_then(AggValue::as_long)
                        .expect("master maintains the color aggregator") as u64;
                match vertex.value().state {
                    GCState::InSet => {
                        vertex.value_mut().color = Some(color);
                        vertex.value_mut().state = GCState::Colored;
                        vertex.vote_to_halt();
                    }
                    GCState::OutOfSet | GCState::Undecided => {
                        vertex.value_mut().state = GCState::Undecided;
                        ctx.aggregate(aggregators::UNCOLORED, AggValue::Long(1));
                    }
                    GCState::Colored => unreachable!("handled above"),
                }
            }
            _ => {
                // INIT superstep: nothing to do until the master sets the
                // first phase.
            }
        }
    }

    fn register_aggregators(&self, registry: &mut AggregatorRegistry) {
        registry.register_persistent(
            aggregators::PHASE,
            AggOp::Overwrite,
            AggValue::Text(phases::INIT.into()),
        );
        registry.register(aggregators::UNDECIDED, AggOp::Sum, AggValue::Long(0));
        registry.register(aggregators::UNCOLORED, AggOp::Sum, AggValue::Long(0));
        registry.register_persistent(aggregators::COLOR, AggOp::Overwrite, AggValue::Long(0));
    }

    fn name(&self) -> String {
        if self.buggy {
            "BuggyGraphColoring".into()
        } else {
            "GraphColoring".into()
        }
    }
}

/// Master driving the GC phase machine.
///
/// Reads the phase it set for the previous superstep and the counts the
/// vertices aggregated, then decides the next phase:
/// `SELECTION → CONFLICT-RESOLUTION → NOTIFY → (SELECTION | COLOR-ASSIGNMENT)`,
/// and after color assignment either starts the next MIS with a fresh
/// color or halts.
pub struct GraphColoringMaster;

impl MasterComputation<GraphColoring> for GraphColoringMaster {
    fn compute(&self, master: &mut MasterContext<'_>) {
        let phase = master
            .get_aggregated(aggregators::PHASE)
            .and_then(|v| v.as_text().map(str::to_string))
            .expect("phase aggregator is registered");
        let next = match phase.as_str() {
            phases::INIT => phases::SELECTION,
            phases::SELECTION => phases::CONFLICT_RESOLUTION,
            phases::CONFLICT_RESOLUTION => phases::NOTIFY,
            phases::NOTIFY => {
                let undecided = master
                    .get_aggregated(aggregators::UNDECIDED)
                    .and_then(AggValue::as_long)
                    .unwrap_or(0);
                if undecided > 0 {
                    phases::SELECTION
                } else {
                    phases::COLOR_ASSIGNMENT
                }
            }
            phases::COLOR_ASSIGNMENT => {
                let uncolored = master
                    .get_aggregated(aggregators::UNCOLORED)
                    .and_then(AggValue::as_long)
                    .unwrap_or(0);
                if uncolored == 0 {
                    master.halt_computation();
                    return;
                }
                let color = master
                    .get_aggregated(aggregators::COLOR)
                    .and_then(AggValue::as_long)
                    .unwrap_or(0);
                master.set_aggregated(aggregators::COLOR, AggValue::Long(color + 1));
                phases::SELECTION
            }
            other => panic!("unknown GC phase {other:?}"),
        };
        master.set_aggregated(aggregators::PHASE, AggValue::Text(next.into()));
    }

    fn name(&self) -> String {
        "GraphColoringMaster".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::validate_coloring;
    use graft_pregel::{Engine, Graph, HaltReason};

    fn run_gc(
        graph: Graph<u64, GCValue, ()>,
        computation: GraphColoring,
    ) -> Graph<u64, GCValue, ()> {
        let outcome = Engine::new(computation)
            .with_master(GraphColoringMaster)
            .num_workers(3)
            .max_supersteps(10_000)
            .run(graph)
            .unwrap();
        // The job ends either when the master sees zero uncolored
        // vertices or when the final color assignment halts every vertex
        // first — both are success; only the superstep limit is failure.
        assert_ne!(outcome.halt_reason, HaltReason::MaxSuperstepsReached);
        outcome.graph
    }

    fn unit_graph(edges: &[(u64, u64)], n: u64) -> Graph<u64, GCValue, ()> {
        let mut builder = Graph::builder();
        for v in 0..n {
            builder.add_vertex(v, GCValue::default()).unwrap();
        }
        for &(a, b) in edges {
            builder.add_undirected_edge(a, b, ()).unwrap();
        }
        builder.build().unwrap()
    }

    #[test]
    fn colors_a_triangle_with_three_colors() {
        let graph = unit_graph(&[(0, 1), (1, 2), (2, 0)], 3);
        let result = run_gc(graph, GraphColoring::new(7));
        let colors = validate_coloring(&result).unwrap();
        assert_eq!(colors, 3, "a triangle needs exactly 3 colors");
    }

    #[test]
    fn colors_a_path_with_few_colors() {
        let graph = unit_graph(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)], 6);
        let result = run_gc(graph, GraphColoring::new(3));
        let colors = validate_coloring(&result).unwrap();
        assert!(colors <= 3, "MIS coloring of a path uses at most 3 colors, used {colors}");
    }

    #[test]
    fn colors_bipartite_graphs_validly_across_seeds() {
        // 3-regular bipartite-ish graph: left i -- right (i+k) mod m.
        let m = 8u64;
        let mut edges = Vec::new();
        for i in 0..m {
            for k in 0..3 {
                edges.push((i, m + (i + k) % m));
            }
        }
        for seed in [1, 2, 3, 4, 5] {
            let graph = unit_graph(&edges, 2 * m);
            let result = run_gc(graph, GraphColoring::new(seed));
            validate_coloring(&result).unwrap();
        }
    }

    #[test]
    fn isolated_vertices_get_the_first_color() {
        let graph = unit_graph(&[], 4);
        let result = run_gc(graph, GraphColoring::new(11));
        for (_, value) in result.sorted_values() {
            assert_eq!(value.color, Some(0));
        }
    }

    #[test]
    fn buggy_variant_violates_coloring_on_dense_graphs() {
        // With 3-bit priorities and >= comparison, collisions are common;
        // across seeds the buggy version must produce at least one
        // adjacent same-color pair on a clique-ish graph.
        let mut edges = Vec::new();
        let n = 16u64;
        for a in 0..n {
            for b in a + 1..n {
                if (a + b) % 3 != 0 {
                    edges.push((a, b));
                }
            }
        }
        let mut violated = false;
        for seed in 0..10 {
            let graph = unit_graph(&edges, n);
            let result = run_gc(graph, GraphColoring::buggy(seed));
            if validate_coloring(&result).is_err() {
                violated = true;
                break;
            }
        }
        assert!(violated, "the buggy tie-break never produced a conflict");
    }

    #[test]
    fn correct_variant_never_violates_on_the_same_graphs() {
        let mut edges = Vec::new();
        let n = 16u64;
        for a in 0..n {
            for b in a + 1..n {
                if (a + b) % 3 != 0 {
                    edges.push((a, b));
                }
            }
        }
        for seed in 0..10 {
            let graph = unit_graph(&edges, n);
            let result = run_gc(graph, GraphColoring::new(seed));
            validate_coloring(&result).unwrap();
        }
    }
}
