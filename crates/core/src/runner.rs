//! `GraftRunner`: submit a computation + `DebugConfig`, get back the job
//! outcome plus a trace directory ready for the debug session.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use graft_dfs::{ClusterFs, FileSystem, FsError, InMemoryFs};
use graft_obs::{DfsMetrics, Obs};
use graft_pregel::hash::FxHashSet;
use graft_pregel::{
    CheckpointConfig, Computation, Engine, EngineError, FaultPlan, Graph, JobObserver, JobOutcome,
    MasterComputation, MasterContext, OocConfig, SuperstepStats,
};
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;

use crate::config::DebugConfig;
use crate::instrument::{CaptureSets, GraftObserver, Instrumented};
use crate::session::{DebugSession, SessionError};
use crate::sink::TraceSink;
use crate::trace::{meta_path, JobMeta};

/// Errors from setting up a Graft run (engine errors are reported inside
/// [`GraftRun::outcome`] instead, because a failed job still has traces
/// worth inspecting).
#[derive(Debug)]
pub enum GraftError {
    /// The trace file system failed.
    Fs(FsError),
    /// Metadata could not be serialized.
    Meta(String),
}

impl std::fmt::Display for GraftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraftError::Fs(e) => write!(f, "trace file system error: {e}"),
            GraftError::Meta(e) => write!(f, "metadata error: {e}"),
        }
    }
}

impl std::error::Error for GraftError {}

impl From<FsError> for GraftError {
    fn from(e: FsError) -> Self {
        GraftError::Fs(e)
    }
}

/// Adapter lifting a user's `MasterComputation<C>` to run alongside
/// `Instrumented<C>` (the marker type parameter is all that differs).
struct MasterAdapter<C, M> {
    inner: M,
    _marker: std::marker::PhantomData<fn() -> C>,
}

impl<C, M> MasterComputation<Instrumented<C>> for MasterAdapter<C, M>
where
    C: Computation,
    M: MasterComputation<C>,
{
    fn compute(&self, master: &mut MasterContext<'_>) {
        self.inner.compute(master);
    }

    fn register_aggregators(&self, registry: &mut graft_pregel::AggregatorRegistry) {
        self.inner.register_aggregators(registry);
    }

    fn name(&self) -> String {
        self.inner.name()
    }
}

/// The entry point for debugging a computation with Graft.
///
/// ```ignore
/// let run = GraftRunner::new(GraphColoring::new(), config)
///     .num_workers(4)
///     .run(graph, "/traces/gc-debug")?;
/// let session = run.session()?;
/// ```
pub struct GraftRunner<C: Computation> {
    computation: Arc<C>,
    config: DebugConfig<C>,
    master: Option<Arc<dyn MasterComputation<Instrumented<C>>>>,
    master_name: Option<String>,
    fs: Arc<dyn FileSystem>,
    cluster: Option<ClusterFs>,
    num_workers: usize,
    max_supersteps: u64,
    executor: graft_pregel::ExecutorMode,
    combining: graft_pregel::CombineStrategy,
    checkpoint_every: Option<u64>,
    recovery_mode: graft_pregel::RecoveryMode,
    fault_plan: Option<FaultPlan>,
    memory_budget: Option<u64>,
    obs: Option<Arc<Obs>>,
    live_flush: bool,
    pace: Option<std::time::Duration>,
    straggler_threshold: Option<f64>,
}

/// Observer that kills datanodes of the trace cluster at planned
/// supersteps — the DFS half of a [`FaultPlan`]. Superstep-`s` kills fire
/// right before superstep `s` starts computing; each fires at most once,
/// so replayed supersteps after a recovery do not re-kill revived nodes.
struct DatanodeChaos {
    cluster: ClusterFs,
    kills: Vec<(usize, u64, AtomicBool)>,
}

impl DatanodeChaos {
    fn new(cluster: ClusterFs, plan: &FaultPlan) -> Self {
        let kills = plan
            .datanode_kills()
            .into_iter()
            .map(|(node, superstep)| (node, superstep, AtomicBool::new(false)))
            .collect();
        Self { cluster, kills }
    }

    fn fire(&self, superstep: u64) {
        for (node, at, fired) in &self.kills {
            if *at == superstep
                && fired.compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire).is_ok()
            {
                let _ = self.cluster.kill_datanode(*node);
            }
        }
    }
}

impl<C: Computation> JobObserver<C> for DatanodeChaos {
    fn on_job_start(&self, _global: &graft_pregel::GlobalData, _num_workers: usize) {
        self.fire(0);
    }

    fn on_superstep_end(&self, stats: &SuperstepStats) {
        self.fire(stats.superstep + 1);
    }
}

impl<C: Computation> GraftRunner<C> {
    /// Creates a runner over an in-memory trace file system.
    pub fn new(computation: C, config: DebugConfig<C>) -> Self {
        Self {
            computation: Arc::new(computation),
            config,
            master: None,
            master_name: None,
            fs: Arc::new(InMemoryFs::new()),
            cluster: None,
            num_workers: graft_pregel::EngineConfig::default().num_workers,
            max_supersteps: graft_pregel::EngineConfig::default().max_supersteps,
            executor: graft_pregel::EngineConfig::default().executor,
            combining: graft_pregel::EngineConfig::default().combining,
            checkpoint_every: None,
            recovery_mode: graft_pregel::RecoveryMode::default(),
            fault_plan: None,
            memory_budget: None,
            obs: None,
            live_flush: false,
            pace: None,
            straggler_threshold: None,
        }
    }

    /// Stores traces on the given file system (e.g. the `ClusterFs` HDFS
    /// simulation, or `LocalFs` for durable traces).
    pub fn with_fs(mut self, fs: Arc<dyn FileSystem>) -> Self {
        self.fs = fs;
        self
    }

    /// Stores traces (and checkpoints) on the given simulated HDFS
    /// cluster *and* enables datanode chaos: `kill-datanode` entries of a
    /// fault plan only take effect when the runner knows the cluster.
    pub fn with_cluster(mut self, cluster: ClusterFs) -> Self {
        if let Some(obs) = &self.obs {
            cluster.add_observer(Arc::new(DfsMetrics::new(Arc::clone(obs))));
        }
        self.fs = Arc::new(cluster.clone());
        self.cluster = Some(cluster);
        self
    }

    /// Attaches an observability handle: the engine, the trace sink, the
    /// instrumenter, and the cluster DFS (when one is attached) all
    /// record into it, and the run exports `events.jsonl`,
    /// `metrics.prom`, and `metrics.json` under `<trace_root>/obs/`.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        if let Some(cluster) = &self.cluster {
            cluster.add_observer(Arc::new(DfsMetrics::new(Arc::clone(&obs))));
        }
        self.obs = Some(obs);
        self
    }

    /// Streams live observability while the job runs: every superstep
    /// boundary appends the event-log delta to `obs/events.jsonl` and
    /// commits a `obs/live/snapshot_<seq>.json` document, so monitoring
    /// clients (`graft-server --follow`, `graft-cli watch`) can tail the
    /// job in flight. Requires [`GraftRunner::with_obs`] to have any
    /// effect — without an obs handle there is nothing to stream, which
    /// analyzer lint GA0017 flags.
    pub fn live_flush(mut self, enabled: bool) -> Self {
        self.live_flush = enabled;
        self
    }

    /// Sleeps this long after each superstep — a demo/test knob that
    /// slows a job down enough for a live tail to observe intermediate
    /// states. Has no effect on traces or metrics under the
    /// deterministic clock.
    pub fn pace_supersteps(mut self, pace: std::time::Duration) -> Self {
        self.pace = Some(pace);
        self
    }

    /// Flags workers whose per-superstep compute time exceeds this
    /// multiple of the across-worker median (engine default: 4.0).
    pub fn straggler_threshold(mut self, threshold: f64) -> Self {
        self.straggler_threshold = Some(threshold);
        self
    }

    /// Enables checkpoint/restart fault tolerance: vertex state,
    /// messages, and aggregators are snapshotted to
    /// `<trace_root>/checkpoints` every `every` supersteps, and the trace
    /// sink learns to rewind with the engine on restore.
    pub fn checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = Some(every);
        self
    }

    /// Selects how the engine recovers from worker faults: full restart
    /// from the last checkpoint (the default), or confined log-replay,
    /// where only the failed partitions rewind and survivors re-serve
    /// logged messages. Takes effect only when
    /// [`GraftRunner::checkpoint_every`] enables checkpointing.
    pub fn recovery_mode(mut self, mode: graft_pregel::RecoveryMode) -> Self {
        self.recovery_mode = mode;
        self
    }

    /// Caps resident memory (partitions + staged shuffle batches) at
    /// `bytes`: when the accounted footprint would exceed the budget,
    /// the engine spills partitions and outbound message batches to
    /// `<trace_root>/ooc` on the trace file system and streams them
    /// back on demand. Results stay bit-identical to the unbounded run;
    /// the spill directory is removed when the job finishes. Lint
    /// GA0018 flags budgets smaller than the largest single partition's
    /// estimated footprint.
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Injects deterministic faults (worker kills, compute panics,
    /// datanode kills) into the run. Worker faults need
    /// [`GraftRunner::checkpoint_every`] to be survivable; datanode kills
    /// need [`GraftRunner::with_cluster`] to have a cluster to kill in.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Attaches the user's master computation.
    pub fn with_master<M: MasterComputation<C>>(mut self, master: M) -> Self {
        self.master_name = Some(master.name());
        self.master =
            Some(Arc::new(MasterAdapter { inner: master, _marker: std::marker::PhantomData }));
        self
    }

    /// Sets the engine worker count.
    pub fn num_workers(mut self, n: usize) -> Self {
        self.num_workers = n.max(1);
        self
    }

    /// Sets the engine superstep limit.
    pub fn max_supersteps(mut self, n: u64) -> Self {
        self.max_supersteps = n;
        self
    }

    /// Selects the engine's thread executor. Deliberately *not* recorded
    /// in `meta.json`: traces are bit-identical across executors, and the
    /// equivalence tests depend on that.
    pub fn executor(mut self, mode: graft_pregel::ExecutorMode) -> Self {
        self.executor = mode;
        self
    }

    /// Selects where the engine applies the combiner (sender or receiver
    /// side). Like the executor, this is an execution detail that never
    /// reaches `meta.json`.
    pub fn combining(mut self, strategy: graft_pregel::CombineStrategy) -> Self {
        self.combining = strategy;
        self
    }

    /// The trace file system.
    pub fn fs(&self) -> &Arc<dyn FileSystem> {
        &self.fs
    }

    /// Resolves the pre-selected capture sets for `graph`: the listed
    /// ids, a deterministic random sample, and (optionally) the
    /// out-neighbors of both.
    pub fn resolve_capture_sets(
        &self,
        graph: &Graph<C::Id, C::VValue, C::EValue>,
    ) -> CaptureSets<C::Id> {
        let specified: FxHashSet<C::Id> =
            self.config.capture_ids.iter().copied().filter(|id| graph.contains(*id)).collect();

        let mut random: FxHashSet<C::Id> = FxHashSet::default();
        if self.config.num_random > 0 && graph.num_vertices() > 0 {
            let n = self.config.num_random.min(graph.num_vertices());
            let mut rng = StdRng::seed_from_u64(self.config.random_seed);
            for idx in sample(&mut rng, graph.num_vertices(), n) {
                let id = graph.vertex_ids()[idx];
                if !specified.contains(&id) {
                    random.insert(id);
                }
            }
        }

        let mut neighbors: FxHashSet<C::Id> = FxHashSet::default();
        if self.config.capture_neighbors {
            for id in specified.iter().chain(random.iter()) {
                if let Some(edges) = graph.out_edges(*id) {
                    for edge in edges {
                        if !specified.contains(&edge.target) && !random.contains(&edge.target) {
                            neighbors.insert(edge.target);
                        }
                    }
                }
            }
        }

        CaptureSets { specified, random, neighbors }
    }

    /// Runs the instrumented job, writing traces under `trace_root`.
    ///
    /// Setup failures return `Err`; a failing *job* (vertex panic with
    /// `ExceptionPolicy::Abort`) returns `Ok` with the engine error inside
    /// [`GraftRun::outcome`] — its traces are still complete and
    /// inspectable, which is the whole point of the tool.
    pub fn run(
        &self,
        graph: Graph<C::Id, C::VValue, C::EValue>,
        trace_root: &str,
    ) -> Result<GraftRun<C>, GraftError> {
        let sets = self.resolve_capture_sets(&graph);
        let sink = Arc::new(TraceSink::new(
            self.fs.clone(),
            trace_root,
            self.config.codec,
            self.config.max_captures,
            self.num_workers,
        )?);

        let meta = JobMeta {
            computation: self.computation.name(),
            computation_type: std::any::type_name::<C>().to_string(),
            master: self.master_name.clone(),
            value_types: (
                std::any::type_name::<C::Id>().to_string(),
                std::any::type_name::<C::VValue>().to_string(),
                std::any::type_name::<C::EValue>().to_string(),
                std::any::type_name::<C::Message>().to_string(),
            ),
            num_workers: self.num_workers,
            trace_format: Some(self.config.codec),
            config: self.config.describe(),
            facts: Some({
                let mut facts = self.config.facts();
                facts.max_supersteps = Some(self.max_supersteps);
                facts.checkpoint_every = self.checkpoint_every;
                facts.num_workers = Some(self.num_workers);
                facts.fault_plan = self.fault_plan.as_ref().map(|p| p.to_string());
                facts.recovery_mode = Some(self.recovery_mode.as_str().to_string());
                facts.live_flush = Some(self.live_flush);
                facts.obs_enabled = Some(self.obs.is_some());
                facts.memory_budget = self.memory_budget;
                facts.est_max_partition_bytes = self.memory_budget.map(|_| {
                    graft_pregel::estimate_max_partition_bytes::<C>(&graph, self.num_workers)
                });
                facts
            }),
        };
        let meta_bytes =
            serde_json::to_vec_pretty(&meta).map_err(|e| GraftError::Meta(e.to_string()))?;
        self.fs.write_all(&meta_path(trace_root), &meta_bytes)?;

        let mut instrumented = Instrumented::new(
            Arc::clone(&self.computation),
            self.config.clone(),
            sets,
            Arc::clone(&sink),
        );
        let mut observer = GraftObserver::new(
            Arc::clone(&sink),
            self.config.capture_master && self.master.is_some(),
        );
        let obs_dir = format!("{}/obs", trace_root.trim_end_matches('/'));
        let mut live = None;
        if let Some(obs) = &self.obs {
            instrumented = instrumented.with_obs(Arc::clone(obs));
            observer = observer.with_obs(Arc::clone(obs));
            if self.live_flush {
                let writer = Arc::new(parking_lot::Mutex::new(graft_obs::LiveWriter::new(
                    self.fs.clone(),
                    Arc::clone(obs),
                    &obs_dir,
                )));
                observer = observer.with_live(Arc::clone(&writer));
                live = Some(writer);
            }
        }
        if let Some(pace) = self.pace {
            observer = observer.with_pace(pace);
        }
        let instrumented = Arc::new(instrumented);

        let mut engine = Engine::from_arc(Arc::clone(&instrumented))
            .with_observer(Arc::new(observer))
            .num_workers(self.num_workers)
            .max_supersteps(self.max_supersteps)
            .executor(self.executor)
            .combining(self.combining);
        if let Some(threshold) = self.straggler_threshold {
            engine = engine.straggler_threshold(threshold);
        }
        if let Some(obs) = &self.obs {
            engine = engine.with_obs(Arc::clone(obs));
        }
        if let Some(master) = &self.master {
            engine = engine.with_master_arc(Arc::clone(master));
        }
        if let Some(every) = self.checkpoint_every {
            let root = format!("{}/checkpoints", trace_root.trim_end_matches('/'));
            engine = engine.with_checkpoints(
                self.fs.clone(),
                CheckpointConfig::new(every, root).recovery_mode(self.recovery_mode),
            );
        }
        if let Some(bytes) = self.memory_budget {
            let root = format!("{}/ooc", trace_root.trim_end_matches('/'));
            engine = engine.with_memory_budget(self.fs.clone(), OocConfig::new(bytes, root));
        }
        if let Some(plan) = &self.fault_plan {
            engine = engine.with_fault_plan(plan.clone());
            if let Some(cluster) = &self.cluster {
                if !plan.datanode_kills().is_empty() {
                    engine =
                        engine.with_observer(Arc::new(DatanodeChaos::new(cluster.clone(), plan)));
                }
            }
        }

        let outcome = engine.run(graph).map(|outcome| JobOutcome::<C> {
            graph: outcome.graph,
            stats: outcome.stats,
            halt_reason: outcome.halt_reason,
        });

        if let Some(obs) = &self.obs {
            match &live {
                // In live mode the event log was appended all along —
                // `finalize` commits the terminal snapshot and the metrics
                // artifacts without ever rewriting `events.jsonl`, so a
                // tail watcher never observes a truncation.
                Some(live) => {
                    let status = if outcome.is_ok() {
                        graft_obs::STATUS_FINISHED
                    } else {
                        graft_obs::STATUS_FAILED
                    };
                    live.lock().finalize(status)?;
                }
                None => obs.write_artifacts(self.fs.as_ref(), &obs_dir)?,
            }
        }

        Ok(GraftRun {
            outcome,
            captures: sink.captures(),
            violations: sink.violations(),
            exceptions: sink.exceptions(),
            capture_limit_hit: sink.limit_hit(),
            trace_root: trace_root.to_string(),
            fs: self.fs.clone(),
        })
    }
}

/// The result of an instrumented run: the job outcome plus capture
/// counters and a handle for opening the debug session.
pub struct GraftRun<C: Computation> {
    /// The engine outcome — `Err` when a vertex panicked under the
    /// `Abort` exception policy (the traces survive either way).
    pub outcome: Result<JobOutcome<C>, EngineError>,
    /// Vertex contexts captured.
    pub captures: u64,
    /// Constraint violations recorded.
    pub violations: u64,
    /// Exceptions recorded.
    pub exceptions: u64,
    /// Whether the capture safety net tripped.
    pub capture_limit_hit: bool,
    /// Where the traces live.
    pub trace_root: String,
    fs: Arc<dyn FileSystem>,
}

impl<C: Computation> GraftRun<C> {
    /// Opens the debug session over this run's traces.
    pub fn session(&self) -> Result<DebugSession<C>, SessionError> {
        DebugSession::open(self.fs.clone(), &self.trace_root)
    }

    /// The trace file system.
    pub fn fs(&self) -> &Arc<dyn FileSystem> {
        &self.fs
    }
}
