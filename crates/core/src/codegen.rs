//! A small `${name}`-substitution template engine — the stand-in for the
//! Apache Velocity templates the Java Graft uses to generate JUnit files
//! — plus helpers for rendering captured values as Rust literals.

use std::collections::BTreeMap;

use graft_pregel::AggValue;

/// A text template with `${name}` placeholders.
pub struct Template {
    source: &'static str,
}

/// Errors from rendering a template.
#[derive(Debug, PartialEq, Eq)]
pub enum TemplateError {
    /// A `${name}` placeholder had no binding.
    MissingVariable(String),
    /// A `${` was never closed.
    UnterminatedPlaceholder(usize),
}

impl std::fmt::Display for TemplateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TemplateError::MissingVariable(name) => {
                write!(f, "template variable ${{{name}}} is not bound")
            }
            TemplateError::UnterminatedPlaceholder(at) => {
                write!(f, "unterminated ${{ at byte {at}")
            }
        }
    }
}

impl std::error::Error for TemplateError {}

impl Template {
    /// Wraps a template string.
    pub const fn new(source: &'static str) -> Self {
        Self { source }
    }

    /// Substitutes every `${name}` with its binding.
    pub fn render(&self, vars: &BTreeMap<&str, String>) -> Result<String, TemplateError> {
        let mut out = String::with_capacity(self.source.len());
        let mut rest = self.source;
        let mut offset = 0;
        while let Some(start) = rest.find("${") {
            out.push_str(&rest[..start]);
            let after = &rest[start + 2..];
            let end =
                after.find('}').ok_or(TemplateError::UnterminatedPlaceholder(offset + start))?;
            let name = &after[..end];
            let value =
                vars.get(name).ok_or_else(|| TemplateError::MissingVariable(name.to_string()))?;
            out.push_str(value);
            offset += start + 2 + end + 1;
            rest = &after[end + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }
}

/// Renders an [`AggValue`] as a Rust constructor expression.
pub fn agg_value_literal(value: &AggValue) -> String {
    match value {
        AggValue::Long(v) => format!("AggValue::Long({v})"),
        AggValue::Double(v) => format!("AggValue::Double({v:?})"),
        AggValue::Bool(v) => format!("AggValue::Bool({v})"),
        AggValue::Text(v) => format!("AggValue::Text({v:?}.to_string())"),
        AggValue::Pair(k, v) => format!("AggValue::Pair({k}, {v:?})"),
    }
}

/// Best-effort cleanup of `std::any::type_name` output into paths a user
/// crate can actually write: strips `alloc`/`core` internals down to the
/// prelude names and drops crate-internal module chains for local types.
pub fn clean_type_name(raw: &str) -> String {
    let mut s = raw.to_string();
    for (from, to) in [
        ("alloc::string::String", "String"),
        ("alloc::vec::Vec", "Vec"),
        ("alloc::boxed::Box", "Box"),
        ("core::option::Option", "Option"),
        ("core::result::Result", "Result"),
    ] {
        s = s.replace(from, to);
    }
    s
}

/// Renders a `Debug`-formatted value, assuming (as the paper's generated
/// JUnit code does) that the user's types round-trip through their
/// constructor syntax. Primitives, tuples, `String`s (via `.to_string()`
/// hints are not needed for `&str` comparisons), and plain derive-Debug
/// structs/enums all render usably.
pub fn debug_literal<T: std::fmt::Debug>(value: &T) -> String {
    format!("{value:?}")
}

/// Renders a trace JSON value as a Rust literal, best-effort: the
/// type-erased analogue of [`debug_literal`] used when generating test
/// source from an untyped trace (the debug server's repro download).
/// Numbers and bools are exact (the writer keeps `.0` on integral
/// floats), `null` maps back to `()`, and composite values fall back to
/// their JSON rendering — readable, though the user may need to adjust
/// them to their constructor syntax.
pub fn json_literal(value: &serde_json::Value) -> String {
    use serde_json::Value;
    match value {
        Value::Null => "()".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Number(_) => value.to_string(),
        Value::String(s) => format!("{s:?}"),
        composite => composite.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitutes_in_order() {
        let t = Template::new("fn ${name}() -> ${ty} { ${body} }");
        let mut vars = BTreeMap::new();
        vars.insert("name", "answer".to_string());
        vars.insert("ty", "u32".to_string());
        vars.insert("body", "42".to_string());
        assert_eq!(t.render(&vars).unwrap(), "fn answer() -> u32 { 42 }");
    }

    #[test]
    fn repeated_and_adjacent_placeholders() {
        let t = Template::new("${a}${a}-${b}");
        let mut vars = BTreeMap::new();
        vars.insert("a", "x".to_string());
        vars.insert("b", "y".to_string());
        assert_eq!(t.render(&vars).unwrap(), "xx-y");
    }

    #[test]
    fn missing_variable_is_an_error() {
        let t = Template::new("${missing}");
        assert_eq!(
            t.render(&BTreeMap::new()),
            Err(TemplateError::MissingVariable("missing".into()))
        );
    }

    #[test]
    fn unterminated_placeholder_is_an_error() {
        let t = Template::new("abc ${oops");
        assert_eq!(t.render(&BTreeMap::new()), Err(TemplateError::UnterminatedPlaceholder(4)));
    }

    #[test]
    fn literal_text_without_placeholders_passes_through() {
        let t = Template::new("no placeholders here }{ $");
        assert_eq!(t.render(&BTreeMap::new()).unwrap(), "no placeholders here }{ $");
    }

    #[test]
    fn agg_literals() {
        assert_eq!(agg_value_literal(&AggValue::Long(-3)), "AggValue::Long(-3)");
        assert_eq!(agg_value_literal(&AggValue::Double(0.5)), "AggValue::Double(0.5)");
        assert_eq!(
            agg_value_literal(&AggValue::Text("MIS".into())),
            "AggValue::Text(\"MIS\".to_string())"
        );
        assert_eq!(agg_value_literal(&AggValue::Pair(1, 2.5)), "AggValue::Pair(1, 2.5)");
    }

    #[test]
    fn type_name_cleanup() {
        assert_eq!(clean_type_name("alloc::string::String"), "String");
        assert_eq!(
            clean_type_name("alloc::vec::Vec<core::option::Option<u64>>"),
            "Vec<Option<u64>>"
        );
        assert_eq!(clean_type_name("u64"), "u64");
    }
}
