//! Trace record types and their on-disk encoding.
//!
//! A Graft run writes, under its trace root:
//!
//! ```text
//! <root>/meta.json        job metadata (computation name, types, config)
//! <root>/worker_<w>.trace captured vertex contexts from worker w
//! <root>/master.trace     captured master contexts (one per superstep)
//! <root>/result.json      terminal job status and summary counters
//! ```
//!
//! Worker and master trace files hold a stream of records encoded per the
//! configured [`TraceCodec`]: JSON lines (default, human-inspectable) or
//! length-prefixed GraftBin frames.

use graft_pregel::{AggValue, GlobalData};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

use crate::config::{CaptureReason, ConfigFacts, TraceCodec};

/// A captured exception (panic) from `compute()`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExceptionInfo {
    /// The panic payload rendered as text.
    pub message: String,
    /// A captured backtrace, when available.
    pub backtrace: Option<String>,
}

/// What kind of constraint a violation record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// The vertex-value constraint failed.
    VertexValue,
    /// The message constraint failed for one outgoing message.
    Message,
}

/// One constraint violation, with the offending value rendered for the
/// Violations & Exceptions view. The full typed context lives in the
/// enclosing [`VertexTrace`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViolationRecord {
    /// Vertex-value or message violation.
    pub kind: ViolationKind,
    /// The offending vertex/message value, `Debug`-rendered.
    pub detail: String,
    /// For message violations, the target vertex (rendered).
    pub target: Option<String>,
}

/// The full captured context of one vertex in one superstep — the five
/// pieces of data the Giraph API exposes, plus what the vertex did.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VertexTrace<I, V, E, M> {
    /// Superstep of the capture.
    pub superstep: u64,
    /// The captured vertex (context piece 1: the vertex id).
    pub vertex: I,
    /// Vertex value when `compute()` started.
    pub value_before: V,
    /// Vertex value after `compute()` returned (or panicked).
    pub value_after: V,
    /// Outgoing edges at `compute()` entry (context piece 2).
    pub edges: Vec<(I, E)>,
    /// Incoming messages (context piece 3).
    pub incoming: Vec<M>,
    /// Messages the vertex sent, in send order.
    pub outgoing: Vec<(I, M)>,
    /// Aggregator values visible this superstep (context piece 4).
    pub aggregators: Vec<(String, AggValue)>,
    /// Default global data (context piece 5).
    pub global: GlobalData,
    /// Whether the vertex voted to halt.
    pub halted_after: bool,
    /// Why this context was captured (possibly several reasons).
    pub reasons: Vec<CaptureReason>,
    /// Constraint violations committed by this vertex this superstep.
    pub violations: Vec<ViolationRecord>,
    /// The exception, if `compute()` panicked.
    pub exception: Option<ExceptionInfo>,
}

/// Shorthand for the vertex trace of a computation `C`.
pub type VertexTraceOf<C> = VertexTrace<
    <C as graft_pregel::Computation>::Id,
    <C as graft_pregel::Computation>::VValue,
    <C as graft_pregel::Computation>::EValue,
    <C as graft_pregel::Computation>::Message,
>;

/// The captured context of one `master.compute()` call: the aggregator
/// values it saw/produced, plus global data.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MasterTrace {
    /// The superstep this master call preceded.
    pub superstep: u64,
    /// Global data at the start of the superstep.
    pub global: GlobalData,
    /// Aggregator values after the master ran (what gets broadcast).
    pub aggregators: Vec<(String, AggValue)>,
    /// Whether the master halted the job here.
    pub halted: bool,
}

/// Job metadata written at trace root as `meta.json`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobMeta {
    /// Computation name (for display and generated test code).
    pub computation: String,
    /// Fully-qualified computation type path (for generated test code).
    pub computation_type: String,
    /// Master computation name, if any.
    pub master: Option<String>,
    /// Rust type names of `(Id, VValue, EValue, Message)`.
    pub value_types: (String, String, String, String),
    /// Number of workers the job ran with.
    pub num_workers: usize,
    /// Trace encoding of the worker/master files.
    pub codec: TraceCodec,
    /// Human description of the active `DebugConfig`.
    pub config: Vec<String>,
    /// Machine-readable config summary for the analyzer's lints. `None`
    /// in traces written before the analyzer existed.
    pub facts: Option<ConfigFacts>,
}

/// Terminal job status written at trace root as `result.json`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobResultRecord {
    /// Supersteps fully executed.
    pub supersteps_executed: u64,
    /// `None` on success, the engine error text otherwise.
    pub error: Option<String>,
    /// Total vertex contexts captured.
    pub captures: u64,
    /// Total constraint violations recorded.
    pub violations: u64,
    /// Total exceptions recorded.
    pub exceptions: u64,
    /// Whether the capture safety net tripped.
    pub capture_limit_hit: bool,
}

/// Path of the job metadata file.
pub fn meta_path(root: &str) -> String {
    format!("{root}/meta.json")
}

/// Path of worker `w`'s trace file.
pub fn worker_trace_path(root: &str, worker: usize) -> String {
    format!("{root}/worker_{worker}.trace")
}

/// Path of the master trace file.
pub fn master_trace_path(root: &str) -> String {
    format!("{root}/master.trace")
}

/// Path of the terminal status file.
pub fn result_path(root: &str) -> String {
    format!("{root}/result.json")
}

/// Encodes one record onto the end of `buf` in the given codec.
pub fn encode_record<T: Serialize>(
    codec: TraceCodec,
    record: &T,
    buf: &mut Vec<u8>,
) -> Result<(), String> {
    match codec {
        TraceCodec::JsonLines => {
            let line = serde_json::to_vec(record).map_err(|e| e.to_string())?;
            buf.extend_from_slice(&line);
            buf.push(b'\n');
            Ok(())
        }
        TraceCodec::Binary => {
            let frame = graft_codec::to_framed_vec(record).map_err(|e| e.to_string())?;
            buf.extend_from_slice(&frame);
            Ok(())
        }
    }
}

/// Decodes all records from a trace file's bytes.
pub fn decode_records<T: DeserializeOwned>(
    codec: TraceCodec,
    bytes: &[u8],
) -> Result<Vec<T>, String> {
    match codec {
        TraceCodec::JsonLines => bytes
            .split(|&b| b == b'\n')
            .filter(|line| !line.is_empty())
            .map(|line| serde_json::from_slice(line).map_err(|e| e.to_string()))
            .collect(),
        TraceCodec::Binary => graft_codec::FramedIter::<T>::new(bytes)
            .collect::<Result<Vec<T>, _>>()
            .map_err(|e| e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> VertexTrace<u64, i64, (), i64> {
        VertexTrace {
            superstep: 41,
            vertex: 672,
            value_before: -1,
            value_after: 5,
            edges: vec![(671, ()), (673, ())],
            incoming: vec![1, 2, 3],
            outgoing: vec![(671, 5), (673, 5)],
            aggregators: vec![("phase".into(), AggValue::Text("MIS".into()))],
            global: GlobalData { superstep: 41, num_vertices: 100, num_edges: 300 },
            halted_after: false,
            reasons: vec![CaptureReason::SpecifiedId, CaptureReason::MessageViolation],
            violations: vec![ViolationRecord {
                kind: ViolationKind::Message,
                detail: "-7".into(),
                target: Some("673".into()),
            }],
            exception: None,
        }
    }

    #[test]
    fn roundtrip_both_codecs() {
        for codec in [TraceCodec::JsonLines, TraceCodec::Binary] {
            let mut buf = Vec::new();
            encode_record(codec, &sample_trace(), &mut buf).unwrap();
            encode_record(codec, &sample_trace(), &mut buf).unwrap();
            let decoded: Vec<VertexTrace<u64, i64, (), i64>> = decode_records(codec, &buf).unwrap();
            assert_eq!(decoded.len(), 2);
            assert_eq!(decoded[0].vertex, 672);
            assert_eq!(decoded[0].violations[0].detail, "-7");
            assert_eq!(decoded[1].aggregators[0].0, "phase");
        }
    }

    #[test]
    fn binary_is_denser_than_json() {
        let mut json = Vec::new();
        let mut bin = Vec::new();
        encode_record(TraceCodec::JsonLines, &sample_trace(), &mut json).unwrap();
        encode_record(TraceCodec::Binary, &sample_trace(), &mut bin).unwrap();
        assert!(bin.len() < json.len() / 2, "bin {} vs json {}", bin.len(), json.len());
    }

    #[test]
    fn json_lines_are_actual_json() {
        let mut buf = Vec::new();
        encode_record(TraceCodec::JsonLines, &sample_trace(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
        assert_eq!(parsed["vertex"], 672);
        assert_eq!(parsed["superstep"], 41);
    }

    #[test]
    fn master_trace_roundtrip() {
        let record = MasterTrace {
            superstep: 3,
            global: GlobalData { superstep: 3, num_vertices: 10, num_edges: 20 },
            aggregators: vec![("phase".into(), AggValue::Text("DRAIN".into()))],
            halted: true,
        };
        for codec in [TraceCodec::JsonLines, TraceCodec::Binary] {
            let mut buf = Vec::new();
            encode_record(codec, &record, &mut buf).unwrap();
            let decoded: Vec<MasterTrace> = decode_records(codec, &buf).unwrap();
            assert_eq!(decoded, vec![record.clone()]);
        }
    }

    #[test]
    fn meta_without_facts_still_loads() {
        // Traces written before the analyzer existed have no `facts`
        // key; they must keep loading (as None), or old trace
        // directories would become unreadable by every command.
        let json = r#"{
            "computation": "PageRank",
            "computation_type": "graft_algorithms::pagerank::PageRank",
            "master": null,
            "value_types": ["u64", "f64", "()", "f64"],
            "num_workers": 2,
            "codec": "JsonLines",
            "config": []
        }"#;
        let meta: JobMeta = serde_json::from_str(json).unwrap();
        assert_eq!(meta.computation, "PageRank");
        assert!(meta.facts.is_none());
    }

    #[test]
    fn paths_are_stable() {
        assert_eq!(meta_path("/t/job"), "/t/job/meta.json");
        assert_eq!(worker_trace_path("/t/job", 3), "/t/job/worker_3.trace");
        assert_eq!(master_trace_path("/t/job"), "/t/job/master.trace");
        assert_eq!(result_path("/t/job"), "/t/job/result.json");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_records::<MasterTrace>(TraceCodec::JsonLines, b"{not json}\n").is_err());
        assert!(decode_records::<MasterTrace>(TraceCodec::Binary, &[0xff, 0xff, 0xff]).is_err());
    }
}
