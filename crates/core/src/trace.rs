//! Trace record types and their on-disk encoding.
//!
//! A Graft run writes, under its trace root:
//!
//! ```text
//! <root>/meta.json        job metadata (computation name, types, config)
//! <root>/worker_<w>.trace captured vertex contexts from worker w
//! <root>/master.trace     captured master contexts (one per superstep)
//! <root>/result.json      terminal job status and summary counters
//! ```
//!
//! Worker and master trace files hold a stream of records encoded per the
//! configured [`TraceCodec`]:
//!
//! * **Binary** (the default): kind-tagged GraftBin frames,
//!   `[len varint][kind u8][payload]` (see `graft_codec::frame`). Worker
//!   channels carry [`FRAME_VERTEX`] records — a [`WireVertexTrace`]
//!   whose computation-specific fields are type-erased
//!   [`graft_codec::BinValue`] trees — preceded, at every superstep
//!   transition, by a [`FRAME_INDEX`] record that lets readers hop whole
//!   superstep groups without touching payloads. The master channel
//!   carries [`FRAME_MASTER`] records.
//! * **JsonLines** (fallback): one JSON document per line,
//!   human-inspectable with any editor.
//!
//! The two encodings reconstruct *identical* dynamic values: binary
//! leaves are normalized at capture time (`graft_codec::to_bin_value`) to
//! the exact `serde_json::Value` a JSON text round-trip yields, so every
//! view served over either format is byte-for-byte the same.

use graft_pregel::{AggValue, GlobalData};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::config::{CaptureReason, ConfigFacts, TraceCodec};

/// Frame kind of a captured vertex context ([`WireVertexTrace`] payload).
pub const FRAME_VERTEX: u8 = 1;
/// Frame kind of a captured master context ([`MasterTrace`] payload).
pub const FRAME_MASTER: u8 = 2;
/// Frame kind of a superstep index record ([`IndexRecord`] payload).
pub const FRAME_INDEX: u8 = 3;

/// A captured exception (panic) from `compute()`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExceptionInfo {
    /// The panic payload rendered as text.
    pub message: String,
    /// A captured backtrace, when available.
    pub backtrace: Option<String>,
}

/// What kind of constraint a violation record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// The vertex-value constraint failed.
    VertexValue,
    /// The message constraint failed for one outgoing message.
    Message,
}

/// One constraint violation, with the offending value rendered for the
/// Violations & Exceptions view. The full typed context lives in the
/// enclosing [`VertexTrace`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViolationRecord {
    /// Vertex-value or message violation.
    pub kind: ViolationKind,
    /// The offending vertex/message value, `Debug`-rendered.
    pub detail: String,
    /// For message violations, the target vertex (rendered).
    pub target: Option<String>,
}

/// The full captured context of one vertex in one superstep — the five
/// pieces of data the Giraph API exposes, plus what the vertex did.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VertexTrace<I, V, E, M> {
    /// Superstep of the capture.
    pub superstep: u64,
    /// The captured vertex (context piece 1: the vertex id).
    pub vertex: I,
    /// Vertex value when `compute()` started.
    pub value_before: V,
    /// Vertex value after `compute()` returned (or panicked).
    pub value_after: V,
    /// Outgoing edges at `compute()` entry (context piece 2).
    pub edges: Vec<(I, E)>,
    /// Incoming messages (context piece 3).
    pub incoming: Vec<M>,
    /// Messages the vertex sent, in send order.
    pub outgoing: Vec<(I, M)>,
    /// Aggregator values visible this superstep (context piece 4).
    pub aggregators: Vec<(String, AggValue)>,
    /// Default global data (context piece 5).
    pub global: GlobalData,
    /// Whether the vertex voted to halt.
    pub halted_after: bool,
    /// Why this context was captured (possibly several reasons).
    pub reasons: Vec<CaptureReason>,
    /// Constraint violations committed by this vertex this superstep.
    pub violations: Vec<ViolationRecord>,
    /// The exception, if `compute()` panicked.
    pub exception: Option<ExceptionInfo>,
}

/// Shorthand for the vertex trace of a computation `C`.
pub type VertexTraceOf<C> = VertexTrace<
    <C as graft_pregel::Computation>::Id,
    <C as graft_pregel::Computation>::VValue,
    <C as graft_pregel::Computation>::EValue,
    <C as graft_pregel::Computation>::Message,
>;

/// The shape binary frames store on disk: a vertex trace whose
/// computation-specific fields (id, values, edges, messages) are
/// type-erased [`graft_codec::BinValue`] trees, so any tool can decode
/// a binary trace without the computation's Rust types.
pub type WireVertexTrace = VertexTrace<
    graft_codec::BinValue,
    graft_codec::BinValue,
    graft_codec::BinValue,
    graft_codec::BinValue,
>;

/// The captured context of one `master.compute()` call: the aggregator
/// values it saw/produced, plus global data.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MasterTrace {
    /// The superstep this master call preceded.
    pub superstep: u64,
    /// Global data at the start of the superstep.
    pub global: GlobalData,
    /// Aggregator values after the master ran (what gets broadcast).
    pub aggregators: Vec<(String, AggValue)>,
    /// Whether the master halted the job here.
    pub halted: bool,
}

/// A superstep index record. The binary sink emits one into a worker
/// channel immediately before the first vertex record of each superstep,
/// so a reader scanning frame headers knows — without decoding a single
/// vertex payload — which superstep the following group belongs to and
/// how much of the channel precedes it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexRecord {
    /// The superstep of the vertex records that follow.
    pub superstep: u64,
    /// Vertex records written to this channel before this frame.
    pub records_before: u64,
    /// Channel bytes written before this frame (its own offset).
    pub bytes_before: u64,
}

/// Job metadata written at trace root as `meta.json`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobMeta {
    /// Computation name (for display and generated test code).
    pub computation: String,
    /// Fully-qualified computation type path (for generated test code).
    pub computation_type: String,
    /// Master computation name, if any.
    pub master: Option<String>,
    /// Rust type names of `(Id, VValue, EValue, Message)`.
    pub value_types: (String, String, String, String),
    /// Number of workers the job ran with.
    pub num_workers: usize,
    /// Trace encoding of the worker/master files. `None` in meta.json
    /// files written before the binary pipeline existed, which always
    /// meant JSON lines — use [`JobMeta::codec`] for the effective value.
    pub trace_format: Option<TraceCodec>,
    /// Human description of the active `DebugConfig`.
    pub config: Vec<String>,
    /// Machine-readable config summary for the analyzer's lints. `None`
    /// in traces written before the analyzer existed.
    pub facts: Option<ConfigFacts>,
}

impl JobMeta {
    /// The effective trace codec: the recorded `trace_format`, or JSON
    /// lines for legacy trace directories that predate the field.
    pub fn codec(&self) -> TraceCodec {
        self.trace_format.unwrap_or(TraceCodec::JsonLines)
    }
}

/// Terminal job status written at trace root as `result.json`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobResultRecord {
    /// Supersteps fully executed.
    pub supersteps_executed: u64,
    /// `None` on success, the engine error text otherwise.
    pub error: Option<String>,
    /// Total vertex contexts captured.
    pub captures: u64,
    /// Total constraint violations recorded.
    pub violations: u64,
    /// Total exceptions recorded.
    pub exceptions: u64,
    /// Whether the capture safety net tripped.
    pub capture_limit_hit: bool,
}

/// Path of the job metadata file.
pub fn meta_path(root: &str) -> String {
    format!("{root}/meta.json")
}

/// Path of worker `w`'s trace file.
pub fn worker_trace_path(root: &str, worker: usize) -> String {
    format!("{root}/worker_{worker}.trace")
}

/// Path of the master trace file.
pub fn master_trace_path(root: &str) -> String {
    format!("{root}/master.trace")
}

/// Path of the terminal status file.
pub fn result_path(root: &str) -> String {
    format!("{root}/result.json")
}

/// A record the trace sink can write to a channel: serializable (for the
/// JSON codec) plus a superstep and a kind-tagged binary frame (for the
/// binary codec and its index frames).
pub trait TraceRecord: Serialize {
    /// The record's superstep, which the binary sink groups frames by.
    fn record_superstep(&self) -> u64;

    /// Appends the record's binary frame (`[len][kind][payload]`) to `buf`.
    fn encode_binary_frame(&self, buf: &mut Vec<u8>) -> Result<(), String>;
}

fn leaf<T: Serialize>(value: &T) -> Result<graft_codec::BinValue, String> {
    graft_codec::to_bin_value(value).map_err(|e| e.to_string())
}

/// Converts a typed vertex trace to its type-erased wire form. Leaves go
/// through `graft_codec::to_bin_value`, so the wire record reconstructs
/// the same dynamic values a JSON text round-trip would.
pub fn wire_vertex_trace<I, V, E, M>(
    trace: &VertexTrace<I, V, E, M>,
) -> Result<WireVertexTrace, String>
where
    I: Serialize,
    V: Serialize,
    E: Serialize,
    M: Serialize,
{
    Ok(WireVertexTrace {
        superstep: trace.superstep,
        vertex: leaf(&trace.vertex)?,
        value_before: leaf(&trace.value_before)?,
        value_after: leaf(&trace.value_after)?,
        edges: trace
            .edges
            .iter()
            .map(|(i, e)| Ok((leaf(i)?, leaf(e)?)))
            .collect::<Result<_, String>>()?,
        incoming: trace.incoming.iter().map(leaf).collect::<Result<_, String>>()?,
        outgoing: trace
            .outgoing
            .iter()
            .map(|(i, m)| Ok((leaf(i)?, leaf(m)?)))
            .collect::<Result<_, String>>()?,
        aggregators: trace.aggregators.clone(),
        global: trace.global,
        halted_after: trace.halted_after,
        reasons: trace.reasons.clone(),
        violations: trace.violations.clone(),
        exception: trace.exception.clone(),
    })
}

impl<I, V, E, M> TraceRecord for VertexTrace<I, V, E, M>
where
    I: Serialize,
    V: Serialize,
    E: Serialize,
    M: Serialize,
{
    fn record_superstep(&self) -> u64 {
        self.superstep
    }

    fn encode_binary_frame(&self, buf: &mut Vec<u8>) -> Result<(), String> {
        let wire = wire_vertex_trace(self)?;
        graft_codec::frame::write_value_frame(buf, FRAME_VERTEX, &wire).map_err(|e| e.to_string())
    }
}

impl TraceRecord for MasterTrace {
    fn record_superstep(&self) -> u64 {
        self.superstep
    }

    fn encode_binary_frame(&self, buf: &mut Vec<u8>) -> Result<(), String> {
        graft_codec::frame::write_value_frame(buf, FRAME_MASTER, self).map_err(|e| e.to_string())
    }
}

/// Encodes one record onto the end of `buf` in the given codec: a JSON
/// line, or a kind-tagged binary frame. (Binary superstep *index* frames
/// are the sink's job — see [`encode_index_frame`].)
pub fn encode_record<T: TraceRecord>(
    codec: TraceCodec,
    record: &T,
    buf: &mut Vec<u8>,
) -> Result<(), String> {
    match codec {
        TraceCodec::JsonLines => {
            let line = serde_json::to_vec(record).map_err(|e| e.to_string())?;
            buf.extend_from_slice(&line);
            buf.push(b'\n');
            Ok(())
        }
        TraceCodec::Binary => record.encode_binary_frame(buf),
    }
}

/// Appends a superstep index frame to `buf`.
pub fn encode_index_frame(record: &IndexRecord, buf: &mut Vec<u8>) -> Result<(), String> {
    graft_codec::frame::write_value_frame(buf, FRAME_INDEX, record).map_err(|e| e.to_string())
}

/// Decodes a binary vertex frame's payload into the normalized dynamic
/// value — the exact `Value` that parsing the record's JSON-lines
/// rendition would produce.
pub fn vertex_value_from_payload(payload: &[u8]) -> Result<Value, String> {
    let wire: WireVertexTrace = graft_codec::from_slice(payload).map_err(|e| e.to_string())?;
    let mut value = serde_json::to_value(&wire).map_err(|e| e.to_string())?;
    graft_codec::normalize(&mut value);
    Ok(value)
}

/// Decodes a binary index frame's payload.
pub fn index_record_from_payload(payload: &[u8]) -> Result<IndexRecord, String> {
    graft_codec::from_slice(payload).map_err(|e| e.to_string())
}

/// Decodes all vertex records from a worker trace file's bytes. For the
/// binary codec the typed records are reconstructed through their
/// normalized dynamic values, so `T` can be a `VertexTraceOf<C>` or
/// `serde_json::Value` alike; index frames are validated and skipped.
pub fn decode_vertex_records<T: DeserializeOwned>(
    codec: TraceCodec,
    bytes: &[u8],
) -> Result<Vec<T>, String> {
    match codec {
        TraceCodec::JsonLines => bytes
            .split(|&b| b == b'\n')
            .filter(|line| !line.is_empty())
            .map(|line| serde_json::from_slice(line).map_err(|e| e.to_string()))
            .collect(),
        TraceCodec::Binary => {
            let mut out = Vec::new();
            let mut scanner = graft_codec::frame::FrameScanner::new(bytes);
            while let Some(frame) = scanner.next_frame().map_err(|e| e.to_string())? {
                match frame.kind {
                    FRAME_INDEX => {
                        index_record_from_payload(frame.payload)?;
                    }
                    FRAME_VERTEX => {
                        let value = vertex_value_from_payload(frame.payload)?;
                        out.push(serde_json::from_value(&value).map_err(|e| e.to_string())?);
                    }
                    other => {
                        return Err(format!(
                            "unexpected record kind {other} at byte {} of a vertex trace",
                            frame.start
                        ))
                    }
                }
            }
            Ok(out)
        }
    }
}

/// Decodes all master records from the master trace file's bytes.
pub fn decode_master_records(codec: TraceCodec, bytes: &[u8]) -> Result<Vec<MasterTrace>, String> {
    match codec {
        TraceCodec::JsonLines => bytes
            .split(|&b| b == b'\n')
            .filter(|line| !line.is_empty())
            .map(|line| serde_json::from_slice(line).map_err(|e| e.to_string()))
            .collect(),
        TraceCodec::Binary => {
            let mut out = Vec::new();
            let mut scanner = graft_codec::frame::FrameScanner::new(bytes);
            while let Some(frame) = scanner.next_frame().map_err(|e| e.to_string())? {
                if frame.kind != FRAME_MASTER {
                    return Err(format!(
                        "unexpected record kind {} at byte {} of the master trace",
                        frame.kind, frame.start
                    ));
                }
                out.push(graft_codec::from_slice(frame.payload).map_err(|e| e.to_string())?);
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> VertexTrace<u64, i64, (), i64> {
        VertexTrace {
            superstep: 41,
            vertex: 672,
            value_before: -1,
            value_after: 5,
            edges: vec![(671, ()), (673, ())],
            incoming: vec![1, 2, 3],
            outgoing: vec![(671, 5), (673, 5)],
            aggregators: vec![("phase".into(), AggValue::Text("MIS".into()))],
            global: GlobalData { superstep: 41, num_vertices: 100, num_edges: 300 },
            halted_after: false,
            reasons: vec![CaptureReason::SpecifiedId, CaptureReason::MessageViolation],
            violations: vec![ViolationRecord {
                kind: ViolationKind::Message,
                detail: "-7".into(),
                target: Some("673".into()),
            }],
            exception: None,
        }
    }

    #[test]
    fn roundtrip_both_codecs() {
        for codec in [TraceCodec::JsonLines, TraceCodec::Binary] {
            let mut buf = Vec::new();
            encode_record(codec, &sample_trace(), &mut buf).unwrap();
            encode_record(codec, &sample_trace(), &mut buf).unwrap();
            let decoded: Vec<VertexTrace<u64, i64, (), i64>> =
                decode_vertex_records(codec, &buf).unwrap();
            assert_eq!(decoded.len(), 2);
            assert_eq!(decoded[0].vertex, 672);
            assert_eq!(decoded[0].violations[0].detail, "-7");
            assert_eq!(decoded[1].aggregators[0].0, "phase");
        }
    }

    #[test]
    fn binary_is_denser_than_json() {
        let mut json = Vec::new();
        let mut bin = Vec::new();
        encode_record(TraceCodec::JsonLines, &sample_trace(), &mut json).unwrap();
        encode_record(TraceCodec::Binary, &sample_trace(), &mut bin).unwrap();
        assert!(bin.len() < json.len() / 2, "bin {} vs json {}", bin.len(), json.len());
    }

    #[test]
    fn json_lines_are_actual_json() {
        let mut buf = Vec::new();
        encode_record(TraceCodec::JsonLines, &sample_trace(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
        assert_eq!(parsed["vertex"], 672);
        assert_eq!(parsed["superstep"], 41);
    }

    /// The pipeline's central invariant: a binary vertex frame decodes to
    /// the *same* dynamic value that parsing the record's JSON line
    /// yields, so views over either format are byte-identical.
    #[test]
    fn binary_frame_reconstructs_the_json_parsed_value() {
        let mut json = Vec::new();
        encode_record(TraceCodec::JsonLines, &sample_trace(), &mut json).unwrap();
        let from_json: Value = serde_json::from_slice(json.split_last().unwrap().1).unwrap();

        let mut bin = Vec::new();
        encode_record(TraceCodec::Binary, &sample_trace(), &mut bin).unwrap();
        let mut scanner = graft_codec::frame::FrameScanner::new(&bin);
        let frame = scanner.next_frame().unwrap().unwrap();
        assert_eq!(frame.kind, FRAME_VERTEX);
        let from_bin = vertex_value_from_payload(frame.payload).unwrap();

        assert_eq!(from_bin, from_json);
        assert_eq!(serde_json::to_vec(&from_bin).unwrap(), serde_json::to_vec(&from_json).unwrap());
    }

    #[test]
    fn index_frames_roundtrip_and_are_skipped_by_decode() {
        let mut buf = Vec::new();
        let index = IndexRecord { superstep: 41, records_before: 0, bytes_before: 0 };
        encode_index_frame(&index, &mut buf).unwrap();
        encode_record(TraceCodec::Binary, &sample_trace(), &mut buf).unwrap();

        let mut scanner = graft_codec::frame::FrameScanner::new(&buf);
        let frame = scanner.next_frame().unwrap().unwrap();
        assert_eq!(frame.kind, FRAME_INDEX);
        assert_eq!(index_record_from_payload(frame.payload).unwrap(), index);

        let decoded: Vec<VertexTrace<u64, i64, (), i64>> =
            decode_vertex_records(TraceCodec::Binary, &buf).unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].superstep, 41);
    }

    #[test]
    fn master_trace_roundtrip() {
        let record = MasterTrace {
            superstep: 3,
            global: GlobalData { superstep: 3, num_vertices: 10, num_edges: 20 },
            aggregators: vec![("phase".into(), AggValue::Text("DRAIN".into()))],
            halted: true,
        };
        for codec in [TraceCodec::JsonLines, TraceCodec::Binary] {
            let mut buf = Vec::new();
            encode_record(codec, &record, &mut buf).unwrap();
            let decoded: Vec<MasterTrace> = decode_master_records(codec, &buf).unwrap();
            assert_eq!(decoded, vec![record.clone()]);
        }
    }

    #[test]
    fn meta_without_trace_format_is_legacy_json() {
        // Traces written before the binary pipeline carried a `codec`
        // key (and before the analyzer, no `facts`); they must keep
        // loading — with JSON lines as the effective format — or old
        // trace directories would become unreadable by every command.
        let json = r#"{
            "computation": "PageRank",
            "computation_type": "graft_algorithms::pagerank::PageRank",
            "master": null,
            "value_types": ["u64", "f64", "()", "f64"],
            "num_workers": 2,
            "codec": "JsonLines",
            "config": []
        }"#;
        let meta: JobMeta = serde_json::from_str(json).unwrap();
        assert_eq!(meta.computation, "PageRank");
        assert!(meta.facts.is_none());
        assert!(meta.trace_format.is_none());
        assert_eq!(meta.codec(), TraceCodec::JsonLines);
    }

    #[test]
    fn paths_are_stable() {
        assert_eq!(meta_path("/t/job"), "/t/job/meta.json");
        assert_eq!(worker_trace_path("/t/job", 3), "/t/job/worker_3.trace");
        assert_eq!(master_trace_path("/t/job"), "/t/job/master.trace");
        assert_eq!(result_path("/t/job"), "/t/job/result.json");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_master_records(TraceCodec::JsonLines, b"{not json}\n").is_err());
        assert!(decode_master_records(TraceCodec::Binary, &[0xff, 0xff, 0xff]).is_err());
        assert!(decode_vertex_records::<Value>(TraceCodec::Binary, &[0xff, 0xff, 0xff]).is_err());
        // A master frame inside a worker file is a kind error, not a panic.
        let mut buf = Vec::new();
        graft_codec::frame::write_frame(&mut buf, FRAME_MASTER, b"");
        let err = decode_vertex_records::<Value>(TraceCodec::Binary, &buf).unwrap_err();
        assert!(err.contains("record kind"), "{err}");
    }
}
