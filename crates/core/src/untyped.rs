//! Type-erased trace reading for external tools.
//!
//! A [`crate::DebugSession`] needs the computation's Rust types to decode
//! traces. Tools like `graft-cli` — the browser-GUI stand-in — must work
//! on *any* job's traces, so this module reads JSON-lines traces into
//! dynamic values instead. (Binary traces carry no field names and cannot
//! be read untyped; rerun with `TraceCodec::JsonLines` to browse them.)

use std::collections::BTreeMap;
use std::sync::Arc;

use graft_dfs::FileSystem;
use serde_json::Value;

use crate::config::TraceCodec;
use crate::session::{Indicators, SessionError};
use crate::trace::{
    master_trace_path, meta_path, result_path, worker_trace_path, JobMeta, JobResultRecord,
    MasterTrace,
};

/// One captured vertex context, as dynamic JSON.
#[derive(Clone, Debug)]
pub struct UntypedTrace(Value);

fn compact(value: &Value) -> String {
    match value {
        Value::String(s) => s.clone(),
        other => other.to_string(),
    }
}

impl UntypedTrace {
    /// The capture's superstep.
    pub fn superstep(&self) -> u64 {
        self.0["superstep"].as_u64().unwrap_or(0)
    }

    /// The vertex id, rendered.
    pub fn vertex(&self) -> String {
        compact(&self.0["vertex"])
    }

    /// The value at compute entry, rendered.
    pub fn value_before(&self) -> String {
        compact(&self.0["value_before"])
    }

    /// The value after compute, rendered.
    pub fn value_after(&self) -> String {
        compact(&self.0["value_after"])
    }

    /// The outgoing edges as `(target, edge value)` rendered pairs.
    pub fn edges(&self) -> Vec<(String, String)> {
        self.0["edges"]
            .as_array()
            .map(|edges| {
                edges
                    .iter()
                    .map(|pair| {
                        let target = pair.get(0).map(compact).unwrap_or_default();
                        let value = pair.get(1).map(compact).unwrap_or_default();
                        (target, value)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Number of incoming messages.
    pub fn incoming_count(&self) -> usize {
        self.0["incoming"].as_array().map(Vec::len).unwrap_or(0)
    }

    /// Number of outgoing messages.
    pub fn outgoing_count(&self) -> usize {
        self.0["outgoing"].as_array().map(Vec::len).unwrap_or(0)
    }

    /// Whether the vertex voted to halt.
    pub fn halted_after(&self) -> bool {
        self.0["halted_after"].as_bool().unwrap_or(false)
    }

    /// Capture reasons, rendered.
    pub fn reasons(&self) -> Vec<String> {
        self.0["reasons"]
            .as_array()
            .map(|reasons| reasons.iter().map(compact).collect())
            .unwrap_or_default()
    }

    /// Violations as `(kind, detail, target)` rendered triples.
    pub fn violations(&self) -> Vec<(String, String, Option<String>)> {
        self.0["violations"]
            .as_array()
            .map(|violations| {
                violations
                    .iter()
                    .map(|v| {
                        (
                            compact(&v["kind"]),
                            compact(&v["detail"]),
                            v["target"].as_str().map(str::to_string),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The exception `(message, backtrace)`, if any.
    pub fn exception(&self) -> Option<(String, Option<String>)> {
        let exc = self.0.get("exception")?;
        if exc.is_null() {
            return None;
        }
        Some((compact(&exc["message"]), exc["backtrace"].as_str().map(str::to_string)))
    }

    /// Aggregator `(name, rendered value)` pairs.
    pub fn aggregators(&self) -> Vec<(String, String)> {
        self.0["aggregators"]
            .as_array()
            .map(|aggs| {
                aggs.iter()
                    .map(|pair| {
                        (
                            pair.get(0).map(compact).unwrap_or_default(),
                            pair.get(1).map(compact).unwrap_or_default(),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The raw JSON record.
    pub fn raw(&self) -> &Value {
        &self.0
    }
}

/// A type-erased debug session over JSON-lines traces.
pub struct UntypedSession {
    meta: JobMeta,
    result: Option<JobResultRecord>,
    by_superstep: BTreeMap<u64, Vec<UntypedTrace>>,
    master: Vec<MasterTrace>,
}

impl UntypedSession {
    /// Loads the traces under `root`. Fails on binary-encoded traces.
    pub fn open(fs: Arc<dyn FileSystem>, root: &str) -> Result<Self, SessionError> {
        let meta_bytes = fs.read_all(&meta_path(root))?;
        let meta: JobMeta = serde_json::from_slice(&meta_bytes)
            .map_err(|e| SessionError::Decode { path: meta_path(root), error: e.to_string() })?;
        if meta.codec != TraceCodec::JsonLines {
            return Err(SessionError::Decode {
                path: meta_path(root),
                error: "binary traces cannot be browsed untyped; use TraceCodec::JsonLines"
                    .to_string(),
            });
        }

        let mut by_superstep: BTreeMap<u64, Vec<UntypedTrace>> = BTreeMap::new();
        for worker in 0..meta.num_workers {
            let path = worker_trace_path(root, worker);
            if !fs.exists(&path) {
                continue;
            }
            let bytes = fs.read_all(&path)?;
            for line in bytes.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
                let value: Value = serde_json::from_slice(line).map_err(|e| {
                    SessionError::Decode { path: path.clone(), error: e.to_string() }
                })?;
                let trace = UntypedTrace(value);
                by_superstep.entry(trace.superstep()).or_default().push(trace);
            }
        }
        for traces in by_superstep.values_mut() {
            traces.sort_by_key(|t| t.vertex());
        }

        let mut master = Vec::new();
        let master_path = master_trace_path(root);
        if fs.exists(&master_path) {
            let bytes = fs.read_all(&master_path)?;
            for line in bytes.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
                master.push(serde_json::from_slice(line).map_err(|e| SessionError::Decode {
                    path: master_path.clone(),
                    error: e.to_string(),
                })?);
            }
        }

        let result = if fs.exists(&result_path(root)) {
            let bytes = fs.read_all(&result_path(root))?;
            Some(serde_json::from_slice(&bytes).map_err(|e| SessionError::Decode {
                path: result_path(root),
                error: e.to_string(),
            })?)
        } else {
            None
        };

        Ok(Self { meta, result, by_superstep, master })
    }

    /// Job metadata.
    pub fn meta(&self) -> &JobMeta {
        &self.meta
    }

    /// Terminal status, if present.
    pub fn result(&self) -> Option<&JobResultRecord> {
        self.result.as_ref()
    }

    /// Supersteps with captures.
    pub fn supersteps(&self) -> Vec<u64> {
        self.by_superstep.keys().copied().collect()
    }

    /// Captures in one superstep.
    pub fn captured_at(&self, superstep: u64) -> &[UntypedTrace] {
        self.by_superstep.get(&superstep).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Every capture of one vertex, in superstep order.
    pub fn history(&self, vertex: &str) -> Vec<&UntypedTrace> {
        self.by_superstep
            .values()
            .flat_map(|traces| traces.iter().filter(|t| t.vertex() == vertex))
            .collect()
    }

    /// The M/V/E indicator state of a superstep.
    pub fn indicators(&self, superstep: u64) -> Indicators {
        let mut ind = Indicators::default();
        for trace in self.captured_at(superstep) {
            for (kind, _, _) in trace.violations() {
                match kind.as_str() {
                    "Message" => ind.message_violation = true,
                    "VertexValue" => ind.value_violation = true,
                    _ => {}
                }
            }
            if trace.exception().is_some() {
                ind.exception = true;
            }
        }
        ind
    }

    /// All violating/excepting captures.
    pub fn violations(&self) -> Vec<&UntypedTrace> {
        self.by_superstep
            .values()
            .flat_map(|traces| {
                traces.iter().filter(|t| !t.violations().is_empty() || t.exception().is_some())
            })
            .collect()
    }

    /// Captured master contexts.
    pub fn master_traces(&self) -> &[MasterTrace] {
        &self.master
    }

    /// Total captures.
    pub fn total_captures(&self) -> usize {
        self.by_superstep.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::premade;
    use crate::{DebugConfig, GraftRunner};
    use graft_pregel::{Computation, ContextOf, VertexHandleOf};

    struct Doubler;
    impl Computation for Doubler {
        type Id = u64;
        type VValue = i64;
        type EValue = ();
        type Message = i64;
        fn compute(
            &self,
            vertex: &mut VertexHandleOf<'_, Self>,
            messages: &[i64],
            ctx: &mut ContextOf<'_, Self>,
        ) {
            let sum: i64 = messages.iter().sum();
            vertex.set_value(vertex.value() * 2 + sum);
            if ctx.superstep() < 2 {
                ctx.send_message_to_all_edges(vertex, *vertex.value());
            } else {
                vertex.vote_to_halt();
            }
        }
    }

    #[test]
    fn untyped_session_reads_what_typed_wrote() {
        let config = DebugConfig::<Doubler>::builder()
            .capture_ids([1, 2])
            .message_constraint(|m, _, _, _| *m < 100)
            .catch_exceptions(false)
            .build();
        let run = GraftRunner::new(Doubler, config)
            .num_workers(2)
            .run(premade::cycle(5, 3i64), "/t/untyped")
            .unwrap();
        let session = UntypedSession::open(run.fs().clone(), "/t/untyped").unwrap();
        assert_eq!(session.meta().computation, "Doubler");
        assert_eq!(session.total_captures() as u64, run.captures);
        assert!(!session.supersteps().is_empty());
        let trace = &session.captured_at(0)[0];
        assert_eq!(trace.vertex(), "1");
        assert_eq!(trace.value_before(), "3");
        assert_eq!(trace.edges().len(), 2);
        assert!(!session.history("1").is_empty());
        let result = session.result().unwrap();
        assert!(result.error.is_none());
    }

    #[test]
    fn binary_traces_are_rejected_with_a_clear_error() {
        let config = DebugConfig::<Doubler>::builder()
            .capture_ids([1])
            .codec(crate::TraceCodec::Binary)
            .catch_exceptions(false)
            .build();
        let run = GraftRunner::new(Doubler, config)
            .num_workers(2)
            .run(premade::cycle(4, 1i64), "/t/untyped-bin")
            .unwrap();
        let err = UntypedSession::open(run.fs().clone(), "/t/untyped-bin").map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("JsonLines"));
    }
}
