//! Type-erased trace reading for external tools.
//!
//! A [`crate::DebugSession`] needs the computation's Rust types to decode
//! traces. Tools like `graft-cli` and `graft-server` — the browser-GUI
//! stand-ins — must work on *any* job's traces, so this module reads
//! traces into dynamic values instead. Both codecs are supported: JSON
//! lines parse directly, and binary frames carry their computation-
//! specific fields as tagged `BinValue` trees that reconstruct the exact
//! same dynamic values (see `graft_codec::value`), so everything built on
//! this module is byte-identical across formats.
//!
//! Rows are *not* materialized up front: [`UntypedSession::open`] scans
//! the trace files once to validate every record and build a per-superstep
//! index of byte ranges — JSON lines, or binary frame payloads located by
//! walking frame headers — then parses individual rows on demand. A
//! superstep with a million captures costs three words of index per row
//! until somebody actually asks for a page of it — which is what lets the
//! debug server paginate large supersteps without holding parsed JSON
//! trees for whole jobs in memory. In binary traces, the per-superstep
//! index frames let [`UntypedSession::open_partial`] skip decoding whole
//! superstep groups beyond the live watermark.

use std::collections::BTreeMap;
use std::sync::Arc;

use graft_dfs::FileSystem;
use serde_json::Value;

use crate::config::TraceCodec;
use crate::session::{Indicators, SessionError};
use crate::trace::{
    index_record_from_payload, master_trace_path, meta_path, result_path,
    vertex_value_from_payload, worker_trace_path, JobMeta, JobResultRecord, MasterTrace,
    FRAME_INDEX, FRAME_MASTER, FRAME_VERTEX,
};

/// One captured vertex context, as dynamic JSON.
#[derive(Clone, Debug)]
pub struct UntypedTrace(Value);

fn compact(value: &Value) -> String {
    match value {
        Value::String(s) => s.clone(),
        other => other.to_string(),
    }
}

impl UntypedTrace {
    /// The capture's superstep.
    pub fn superstep(&self) -> u64 {
        self.0["superstep"].as_u64().unwrap_or(0)
    }

    /// The vertex id, rendered.
    pub fn vertex(&self) -> String {
        compact(&self.0["vertex"])
    }

    /// The value at compute entry, rendered.
    pub fn value_before(&self) -> String {
        compact(&self.0["value_before"])
    }

    /// The value after compute, rendered.
    pub fn value_after(&self) -> String {
        compact(&self.0["value_after"])
    }

    /// The outgoing edges as `(target, edge value)` rendered pairs.
    pub fn edges(&self) -> Vec<(String, String)> {
        self.0["edges"]
            .as_array()
            .map(|edges| {
                edges
                    .iter()
                    .map(|pair| {
                        let target = pair.get(0).map(compact).unwrap_or_default();
                        let value = pair.get(1).map(compact).unwrap_or_default();
                        (target, value)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Number of incoming messages.
    pub fn incoming_count(&self) -> usize {
        self.0["incoming"].as_array().map(Vec::len).unwrap_or(0)
    }

    /// Number of outgoing messages.
    pub fn outgoing_count(&self) -> usize {
        self.0["outgoing"].as_array().map(Vec::len).unwrap_or(0)
    }

    /// Whether the vertex voted to halt.
    pub fn halted_after(&self) -> bool {
        self.0["halted_after"].as_bool().unwrap_or(false)
    }

    /// The default global data `(superstep, num_vertices, num_edges)` the
    /// vertex observed, if recorded.
    pub fn global(&self) -> Option<(u64, u64, u64)> {
        let global = self.0.get("global")?;
        Some((
            global["superstep"].as_u64()?,
            global["num_vertices"].as_u64()?,
            global["num_edges"].as_u64()?,
        ))
    }

    /// Capture reasons, rendered.
    pub fn reasons(&self) -> Vec<String> {
        self.0["reasons"]
            .as_array()
            .map(|reasons| reasons.iter().map(compact).collect())
            .unwrap_or_default()
    }

    /// Violations as `(kind, detail, target)` rendered triples.
    pub fn violations(&self) -> Vec<(String, String, Option<String>)> {
        self.0["violations"]
            .as_array()
            .map(|violations| {
                violations
                    .iter()
                    .map(|v| {
                        (
                            compact(&v["kind"]),
                            compact(&v["detail"]),
                            v["target"].as_str().map(str::to_string),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The exception `(message, backtrace)`, if any.
    pub fn exception(&self) -> Option<(String, Option<String>)> {
        let exc = self.0.get("exception")?;
        if exc.is_null() {
            return None;
        }
        Some((compact(&exc["message"]), exc["backtrace"].as_str().map(str::to_string)))
    }

    /// Aggregator `(name, rendered value)` pairs.
    pub fn aggregators(&self) -> Vec<(String, String)> {
        self.0["aggregators"]
            .as_array()
            .map(|aggs| {
                aggs.iter()
                    .map(|pair| {
                        (
                            pair.get(0).map(compact).unwrap_or_default(),
                            pair.get(1).map(compact).unwrap_or_default(),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The raw JSON record.
    pub fn raw(&self) -> &Value {
        &self.0
    }
}

/// Walks one worker trace file, invoking `row` for every vertex record
/// within the watermark, with the record's payload byte range (the JSON
/// line, or the binary frame payload). Shared by [`JobSummary::scan`] and
/// [`UntypedSession::open`] so a job summarizes if and only if it opens.
///
/// With `up_to: Some(w)` (the live watermark of `open_partial`), rows of
/// supersteps beyond `w` are excluded — in binary traces whole superstep
/// groups are hopped via their index frames without decoding a payload —
/// and a torn tail (a JSON line without its newline, or a binary frame
/// overrunning the end of the file) is skipped instead of failing. Any
/// other malformed record is an error in both modes: the watermark
/// protocol guarantees completed supersteps are durable and well-formed,
/// so mid-file corruption is real corruption.
fn walk_worker_rows(
    codec: TraceCodec,
    bytes: &[u8],
    path: &str,
    up_to: Option<u64>,
    mut row: impl FnMut(UntypedTrace, usize, usize),
) -> Result<(), SessionError> {
    match codec {
        TraceCodec::JsonLines => {
            let mut start = 0usize;
            for line in bytes.split(|&b| b == b'\n') {
                let len = line.len();
                if len > 0 {
                    let torn_tail =
                        up_to.is_some() && start + len == bytes.len() && !bytes.ends_with(b"\n");
                    let value: Value = match serde_json::from_slice(line) {
                        Ok(value) => value,
                        Err(_) if torn_tail => break,
                        Err(e) => {
                            return Err(SessionError::Decode {
                                path: path.to_string(),
                                error: e.to_string(),
                            })
                        }
                    };
                    let trace = UntypedTrace(value);
                    if up_to.is_none_or(|w| trace.superstep() <= w) {
                        row(trace, start, len);
                    }
                }
                start += len + 1;
            }
            Ok(())
        }
        TraceCodec::Binary => {
            let mut scanner = graft_codec::frame::FrameScanner::new(bytes);
            // Set while the current index group lies beyond the live
            // watermark; its vertex payloads are hopped, not decoded.
            let mut skip_group = false;
            loop {
                let frame = match scanner.next_frame() {
                    Ok(None) => break,
                    Ok(Some(frame)) => frame,
                    Err(graft_codec::Error::UnexpectedEof) if up_to.is_some() => break,
                    Err(e) => {
                        return Err(SessionError::Decode {
                            path: path.to_string(),
                            error: e.to_string(),
                        })
                    }
                };
                match frame.kind {
                    FRAME_INDEX => {
                        let index = index_record_from_payload(frame.payload).map_err(|error| {
                            SessionError::Decode { path: path.to_string(), error }
                        })?;
                        skip_group = up_to.is_some_and(|w| index.superstep > w);
                    }
                    FRAME_VERTEX => {
                        if skip_group {
                            continue;
                        }
                        let value = vertex_value_from_payload(frame.payload).map_err(|error| {
                            SessionError::Decode { path: path.to_string(), error }
                        })?;
                        let trace = UntypedTrace(value);
                        if up_to.is_none_or(|w| trace.superstep() <= w) {
                            row(trace, frame.payload_start, frame.payload.len());
                        }
                    }
                    other => {
                        return Err(SessionError::Decode {
                            path: path.to_string(),
                            error: format!(
                                "unexpected record kind {other} at byte {} of a vertex trace",
                                frame.start
                            ),
                        })
                    }
                }
            }
            Ok(())
        }
    }
}

/// Walks the master trace file with the same watermark and torn-tail
/// semantics as [`walk_worker_rows`].
fn walk_master_records(
    codec: TraceCodec,
    bytes: &[u8],
    path: &str,
    up_to: Option<u64>,
    master: &mut Vec<MasterTrace>,
) -> Result<(), SessionError> {
    match codec {
        TraceCodec::JsonLines => {
            let mut start = 0usize;
            for line in bytes.split(|&b| b == b'\n') {
                let len = line.len();
                if len > 0 {
                    let torn_tail =
                        up_to.is_some() && start + len == bytes.len() && !bytes.ends_with(b"\n");
                    match serde_json::from_slice::<MasterTrace>(line) {
                        Ok(trace) => {
                            if up_to.is_none_or(|w| trace.superstep <= w) {
                                master.push(trace);
                            }
                        }
                        Err(_) if torn_tail => break,
                        Err(e) => {
                            return Err(SessionError::Decode {
                                path: path.to_string(),
                                error: e.to_string(),
                            })
                        }
                    }
                }
                start += len + 1;
            }
            Ok(())
        }
        TraceCodec::Binary => {
            let mut scanner = graft_codec::frame::FrameScanner::new(bytes);
            loop {
                let frame = match scanner.next_frame() {
                    Ok(None) => break,
                    Ok(Some(frame)) => frame,
                    Err(graft_codec::Error::UnexpectedEof) if up_to.is_some() => break,
                    Err(e) => {
                        return Err(SessionError::Decode {
                            path: path.to_string(),
                            error: e.to_string(),
                        })
                    }
                };
                if frame.kind != FRAME_MASTER {
                    return Err(SessionError::Decode {
                        path: path.to_string(),
                        error: format!(
                            "unexpected record kind {} at byte {} of the master trace",
                            frame.kind, frame.start
                        ),
                    });
                }
                let trace: MasterTrace = graft_codec::from_slice(frame.payload).map_err(|e| {
                    SessionError::Decode { path: path.to_string(), error: e.to_string() }
                })?;
                if up_to.is_none_or(|w| trace.superstep <= w) {
                    master.push(trace);
                }
            }
            Ok(())
        }
    }
}

/// The listing-only facts of a job: metadata, terminal status, and
/// per-superstep capture counts — everything a `/jobs` landing page needs
/// — gathered in one streaming pass that retains no trace bytes and
/// builds no row index. A server can enumerate a trace root far larger
/// than its session cache through this without evicting a single parsed
/// session.
pub struct JobSummary {
    meta: JobMeta,
    result: Option<JobResultRecord>,
    counts: BTreeMap<u64, usize>,
}

impl JobSummary {
    /// Scans the traces under `root`, validating exactly what
    /// [`UntypedSession::open`] validates (every record, in either codec)
    /// — a job summarizes if and only if it opens, with identical counts.
    pub fn scan(fs: &dyn FileSystem, root: &str) -> Result<Self, SessionError> {
        let meta_bytes = fs.read_all(&meta_path(root))?;
        let meta: JobMeta = serde_json::from_slice(&meta_bytes)
            .map_err(|e| SessionError::Decode { path: meta_path(root), error: e.to_string() })?;
        let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
        for worker in 0..meta.num_workers {
            let path = worker_trace_path(root, worker);
            if !fs.exists(&path) {
                continue;
            }
            let bytes = fs.read_all(&path)?;
            walk_worker_rows(meta.codec(), &bytes, &path, None, |trace, _, _| {
                *counts.entry(trace.superstep()).or_default() += 1;
            })?;
        }
        let result = if fs.exists(&result_path(root)) {
            let bytes = fs.read_all(&result_path(root))?;
            Some(serde_json::from_slice(&bytes).map_err(|e| SessionError::Decode {
                path: result_path(root),
                error: e.to_string(),
            })?)
        } else {
            None
        };
        Ok(Self { meta, result, counts })
    }

    /// Job metadata.
    pub fn meta(&self) -> &JobMeta {
        &self.meta
    }

    /// Terminal status, if present.
    pub fn result(&self) -> Option<&JobResultRecord> {
        self.result.as_ref()
    }

    /// Supersteps with captures, ascending.
    pub fn supersteps(&self) -> Vec<u64> {
        self.counts.keys().copied().collect()
    }

    /// Number of captures in one superstep.
    pub fn count_at(&self, superstep: u64) -> usize {
        self.counts.get(&superstep).copied().unwrap_or(0)
    }

    /// Total captures.
    pub fn total_captures(&self) -> usize {
        self.counts.values().sum()
    }
}

/// A byte range of one trace record inside a worker file: the JSON line,
/// or the binary frame's payload.
#[derive(Clone, Copy, Debug)]
struct RowRef {
    worker: usize,
    start: usize,
    len: usize,
}

/// A type-erased debug session over a run's traces, in either codec.
///
/// Holds the raw trace bytes plus a per-superstep row index sorted by
/// rendered vertex id; individual rows are parsed on demand (see the
/// module docs).
pub struct UntypedSession {
    meta: JobMeta,
    codec: TraceCodec,
    result: Option<JobResultRecord>,
    workers: Vec<Vec<u8>>,
    index: BTreeMap<u64, Vec<RowRef>>,
    master: Vec<MasterTrace>,
}

impl UntypedSession {
    /// Loads the traces under `root`. Fails on any record that does not
    /// decode — after `open` succeeds, every indexed row is known to
    /// parse.
    pub fn open(fs: Arc<dyn FileSystem>, root: &str) -> Result<Self, SessionError> {
        Self::open_impl(fs, root, None)
    }

    /// Loads an *in-flight* job's traces: everything [`UntypedSession::open`]
    /// loads, except that rows of supersteps beyond `up_to` (the live
    /// watermark — supersteps still executing, or mid-rewrite by a
    /// recovery) are dropped from the index, and a torn tail record in a
    /// trace file — a JSON line caught mid-append without its newline, or
    /// a binary frame overrunning the end of the file — is skipped
    /// instead of failing the open. A malformed record anywhere else
    /// still fails: the watermark protocol guarantees completed
    /// supersteps are durable and well-formed, so mid-file corruption is
    /// real corruption.
    pub fn open_partial(
        fs: Arc<dyn FileSystem>,
        root: &str,
        up_to: u64,
    ) -> Result<Self, SessionError> {
        Self::open_impl(fs, root, Some(up_to))
    }

    fn open_impl(
        fs: Arc<dyn FileSystem>,
        root: &str,
        up_to: Option<u64>,
    ) -> Result<Self, SessionError> {
        let meta_bytes = fs.read_all(&meta_path(root))?;
        let meta: JobMeta = serde_json::from_slice(&meta_bytes)
            .map_err(|e| SessionError::Decode { path: meta_path(root), error: e.to_string() })?;
        let codec = meta.codec();

        // One validation scan: each record is decoded to extract its sort
        // key (superstep, rendered vertex) and immediately dropped; only
        // the raw bytes and the byte-range index survive.
        let mut workers: Vec<Vec<u8>> = Vec::new();
        let mut by_superstep: BTreeMap<u64, Vec<(String, RowRef)>> = BTreeMap::new();
        for worker in 0..meta.num_workers {
            let path = worker_trace_path(root, worker);
            if !fs.exists(&path) {
                continue;
            }
            let bytes = fs.read_all(&path)?;
            let worker_slot = workers.len();
            walk_worker_rows(codec, &bytes, &path, up_to, |trace, start, len| {
                by_superstep
                    .entry(trace.superstep())
                    .or_default()
                    .push((trace.vertex(), RowRef { worker: worker_slot, start, len }));
            })?;
            workers.push(bytes);
        }
        let index = by_superstep
            .into_iter()
            .map(|(superstep, mut rows)| {
                rows.sort_by(|a, b| a.0.cmp(&b.0));
                (superstep, rows.into_iter().map(|(_, row)| row).collect())
            })
            .collect();

        let mut master: Vec<MasterTrace> = Vec::new();
        let master_path = master_trace_path(root);
        if fs.exists(&master_path) {
            let bytes = fs.read_all(&master_path)?;
            walk_master_records(codec, &bytes, &master_path, up_to, &mut master)?;
        }

        let result = if fs.exists(&result_path(root)) {
            let bytes = fs.read_all(&result_path(root))?;
            Some(serde_json::from_slice(&bytes).map_err(|e| SessionError::Decode {
                path: result_path(root),
                error: e.to_string(),
            })?)
        } else {
            None
        };

        Ok(Self { meta, codec, result, workers, index, master })
    }

    fn parse_row(&self, row: &RowRef) -> UntypedTrace {
        let bytes = &self.workers[row.worker][row.start..row.start + row.len];
        let value = match self.codec {
            TraceCodec::JsonLines => {
                serde_json::from_slice(bytes).expect("rows were validated by open()")
            }
            TraceCodec::Binary => {
                vertex_value_from_payload(bytes).expect("rows were validated by open()")
            }
        };
        UntypedTrace(value)
    }

    /// Job metadata.
    pub fn meta(&self) -> &JobMeta {
        &self.meta
    }

    /// Terminal status, if present.
    pub fn result(&self) -> Option<&JobResultRecord> {
        self.result.as_ref()
    }

    /// Supersteps with captures.
    pub fn supersteps(&self) -> Vec<u64> {
        self.index.keys().copied().collect()
    }

    /// Number of captures in one superstep, without parsing any row.
    pub fn count_at(&self, superstep: u64) -> usize {
        self.index.get(&superstep).map(Vec::len).unwrap_or(0)
    }

    /// Streams the captures of one superstep in vertex order, parsing
    /// each row only as the iterator reaches it.
    pub fn traces_at(&self, superstep: u64) -> impl Iterator<Item = UntypedTrace> + '_ {
        self.index
            .get(&superstep)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .map(|row| self.parse_row(row))
    }

    /// Captures in one superstep, materialized. Prefer
    /// [`UntypedSession::traces_at`] or [`UntypedSession::rows_window`]
    /// on large supersteps.
    pub fn captured_at(&self, superstep: u64) -> Vec<UntypedTrace> {
        self.traces_at(superstep).collect()
    }

    /// One page of a superstep: rows `[offset, offset + limit)` in vertex
    /// order. Only the requested rows are parsed, so paging through a
    /// huge superstep costs O(page), not O(superstep).
    pub fn rows_window(&self, superstep: u64, offset: usize, limit: usize) -> Vec<UntypedTrace> {
        self.index
            .get(&superstep)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .skip(offset)
            .take(limit)
            .map(|row| self.parse_row(row))
            .collect()
    }

    /// The capture of one vertex in one superstep, if any.
    pub fn vertex_at(&self, superstep: u64, vertex: &str) -> Option<UntypedTrace> {
        self.traces_at(superstep).find(|t| t.vertex() == vertex)
    }

    /// Every capture of one vertex, in superstep order.
    pub fn history(&self, vertex: &str) -> Vec<UntypedTrace> {
        self.index
            .keys()
            .flat_map(|ss| self.traces_at(*ss).filter(|t| t.vertex() == vertex))
            .collect()
    }

    /// The M/V/E indicator state of a superstep.
    pub fn indicators(&self, superstep: u64) -> Indicators {
        let mut ind = Indicators::default();
        for trace in self.traces_at(superstep) {
            for (kind, _, _) in trace.violations() {
                match kind.as_str() {
                    "Message" => ind.message_violation = true,
                    "VertexValue" => ind.value_violation = true,
                    _ => {}
                }
            }
            if trace.exception().is_some() {
                ind.exception = true;
            }
        }
        ind
    }

    /// All violating/excepting captures.
    pub fn violations(&self) -> Vec<UntypedTrace> {
        self.index
            .keys()
            .flat_map(|ss| {
                self.traces_at(*ss)
                    .filter(|t| !t.violations().is_empty() || t.exception().is_some())
            })
            .collect()
    }

    /// Captured master contexts.
    pub fn master_traces(&self) -> &[MasterTrace] {
        &self.master
    }

    /// Total captures.
    pub fn total_captures(&self) -> usize {
        self.index.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::premade;
    use crate::{DebugConfig, GraftRunner};
    use graft_pregel::{Computation, ContextOf, VertexHandleOf};

    struct Doubler;
    impl Computation for Doubler {
        type Id = u64;
        type VValue = i64;
        type EValue = ();
        type Message = i64;
        fn compute(
            &self,
            vertex: &mut VertexHandleOf<'_, Self>,
            messages: &[i64],
            ctx: &mut ContextOf<'_, Self>,
        ) {
            let sum: i64 = messages.iter().sum();
            vertex.set_value(vertex.value() * 2 + sum);
            if ctx.superstep() < 2 {
                ctx.send_message_to_all_edges(vertex, *vertex.value());
            } else {
                vertex.vote_to_halt();
            }
        }
    }

    #[test]
    fn untyped_session_reads_what_typed_wrote() {
        let config = DebugConfig::<Doubler>::builder()
            .capture_ids([1, 2])
            .message_constraint(|m, _, _, _| *m < 100)
            .catch_exceptions(false)
            .build();
        let run = GraftRunner::new(Doubler, config)
            .num_workers(2)
            .run(premade::cycle(5, 3i64), "/t/untyped")
            .unwrap();
        let session = UntypedSession::open(run.fs().clone(), "/t/untyped").unwrap();
        assert_eq!(session.meta().computation, "Doubler");
        assert_eq!(session.total_captures() as u64, run.captures);
        assert!(!session.supersteps().is_empty());
        let trace = &session.captured_at(0)[0];
        assert_eq!(trace.vertex(), "1");
        assert_eq!(trace.value_before(), "3");
        assert_eq!(trace.edges().len(), 2);
        assert!(!session.history("1").is_empty());
        let result = session.result().unwrap();
        assert!(result.error.is_none());
    }

    #[test]
    fn job_summary_agrees_with_the_full_session() {
        let config = DebugConfig::<Doubler>::builder()
            .capture_ids([1, 2, 3])
            .catch_exceptions(false)
            .build();
        let run = GraftRunner::new(Doubler, config)
            .num_workers(3)
            .run(premade::cycle(6, 2i64), "/t/untyped-summary")
            .unwrap();
        let session = UntypedSession::open(run.fs().clone(), "/t/untyped-summary").unwrap();
        let summary = JobSummary::scan(run.fs().as_ref(), "/t/untyped-summary").unwrap();
        assert_eq!(summary.supersteps(), session.supersteps());
        assert_eq!(summary.total_captures(), session.total_captures());
        assert_eq!(summary.meta().computation, session.meta().computation);
        assert_eq!(summary.result().map(|r| r.captures), session.result().map(|r| r.captures));
        for ss in session.supersteps() {
            assert_eq!(summary.count_at(ss), session.count_at(ss));
        }
    }

    /// The tentpole invariant end to end: a binary run browses untyped to
    /// the *same* dynamic rows a JSON-lines run of the identical job
    /// yields, and the binary trace directory is smaller on disk.
    #[test]
    fn binary_traces_read_identically_to_json_traces() {
        let run_with = |codec, root: &str| {
            let config = DebugConfig::<Doubler>::builder()
                .capture_ids([1, 2])
                .message_constraint(|m, _, _, _| *m < 100)
                .codec(codec)
                .catch_exceptions(false)
                .build();
            GraftRunner::new(Doubler, config)
                .num_workers(2)
                .run(premade::cycle(5, 3i64), root)
                .unwrap()
        };
        let json_run = run_with(TraceCodec::JsonLines, "/t/untyped-eq-json");
        let bin_run = run_with(TraceCodec::Binary, "/t/untyped-eq-bin");
        let json = UntypedSession::open(json_run.fs().clone(), "/t/untyped-eq-json").unwrap();
        let bin = UntypedSession::open(bin_run.fs().clone(), "/t/untyped-eq-bin").unwrap();

        assert_eq!(bin.meta().codec(), TraceCodec::Binary);
        assert_eq!(bin.supersteps(), json.supersteps());
        assert_eq!(bin.total_captures(), json.total_captures());
        assert!(bin.total_captures() > 0);
        for ss in json.supersteps() {
            let bin_rows = bin.captured_at(ss);
            let json_rows = json.captured_at(ss);
            assert_eq!(bin_rows.len(), json_rows.len());
            for (b, j) in bin_rows.iter().zip(&json_rows) {
                assert_eq!(b.raw(), j.raw(), "superstep {ss}");
            }
        }
        assert_eq!(bin.master_traces(), json.master_traces());

        let summary = JobSummary::scan(bin_run.fs().as_ref(), "/t/untyped-eq-bin").unwrap();
        assert_eq!(summary.total_captures(), bin.total_captures());

        let dir_bytes = |fs: &Arc<dyn FileSystem>, root: &str| -> usize {
            (0..2).map(|w| fs.read_all(&worker_trace_path(root, w)).unwrap().len()).sum::<usize>()
                + fs.read_all(&master_trace_path(root)).unwrap().len()
        };
        let json_bytes = dir_bytes(json_run.fs(), "/t/untyped-eq-json");
        let bin_bytes = dir_bytes(bin_run.fs(), "/t/untyped-eq-bin");
        assert!(
            bin_bytes < json_bytes,
            "binary traces must be smaller: {bin_bytes} vs {json_bytes}"
        );
    }

    /// The frame-corruption matrix: a torn tail, a truncated length
    /// varint, a bad record kind, and mid-file garbage each yield a clean
    /// `SessionError` (or a lenient tail skip under `open_partial`) —
    /// never a panic.
    #[test]
    fn corrupt_binary_traces_fail_cleanly_never_panic() {
        let config = DebugConfig::<Doubler>::builder()
            .capture_all_active(true)
            .codec(TraceCodec::Binary)
            .catch_exceptions(false)
            .build();
        let root = "/t/untyped-corrupt";
        let run = GraftRunner::new(Doubler, config)
            .num_workers(1)
            .run(premade::cycle(4, 1i64), root)
            .unwrap();
        let fs = run.fs().clone();
        let path = worker_trace_path(root, 0);
        let pristine = fs.read_all(&path).unwrap();
        let full = UntypedSession::open(fs.clone(), root).unwrap().total_captures();
        assert!(full > 0);

        // Torn tail: the last frame is cut short. A strict open reports
        // it; a live (partial) open skips the tail and keeps every
        // complete record.
        fs.write_all(&path, &pristine[..pristine.len() - 3]).unwrap();
        let err = UntypedSession::open(fs.clone(), root).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("unexpected end"), "{err}");
        let partial = UntypedSession::open_partial(fs.clone(), root, u64::MAX).unwrap();
        assert_eq!(partial.total_captures(), full - 1);

        // Truncated length varint at the tail (a lone continuation byte):
        // same torn-tail shape, so partial opens keep everything.
        let mut torn = pristine.clone();
        torn.push(0x80);
        fs.write_all(&path, &torn).unwrap();
        assert!(UntypedSession::open(fs.clone(), root).is_err());
        let partial = UntypedSession::open_partial(fs.clone(), root, u64::MAX).unwrap();
        assert_eq!(partial.total_captures(), full);

        // A complete frame with an unknown record kind is hard corruption
        // in both modes — a torn write can only truncate, never invent a
        // whole frame.
        let mut bad_kind = pristine.clone();
        graft_codec::frame::write_frame(&mut bad_kind, 9, b"junk");
        fs.write_all(&path, &bad_kind).unwrap();
        let err = UntypedSession::open(fs.clone(), root).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("record kind"), "{err}");
        assert!(UntypedSession::open_partial(fs.clone(), root, u64::MAX).is_err());

        // Mid-file garbage, deterministic shape: a zeroed length prefix
        // on a frame in the middle of the stream is structural corruption
        // in both modes, lenient tailing included.
        let mut starts = Vec::new();
        let mut scanner = graft_codec::frame::FrameScanner::new(&pristine);
        while let Some(frame) = scanner.next_frame().unwrap() {
            starts.push(frame.start);
        }
        let mut garbled = pristine.clone();
        garbled[starts[starts.len() / 2]] = 0x00;
        fs.write_all(&path, &garbled).unwrap();
        assert!(UntypedSession::open(fs.clone(), root).is_err());
        assert!(UntypedSession::open_partial(fs.clone(), root, u64::MAX).is_err());

        // Mid-file garbage, arbitrary shape: flipped payload bytes must
        // fail cleanly on a strict open; a partial open may only ever
        // drop records, never panic or invent them.
        let mut flipped = pristine.clone();
        let mid = flipped.len() / 2;
        for b in &mut flipped[mid..mid + 4] {
            *b ^= 0xff;
        }
        fs.write_all(&path, &flipped).unwrap();
        assert!(UntypedSession::open(fs.clone(), root).is_err());
        if let Ok(partial) = UntypedSession::open_partial(fs.clone(), root, u64::MAX) {
            assert!(partial.total_captures() <= full);
        }

        // JobSummary::scan applies the same validation as open.
        assert!(JobSummary::scan(fs.as_ref(), root).is_err());

        // The pristine bytes still open after all that.
        fs.write_all(&path, &pristine).unwrap();
        assert_eq!(UntypedSession::open(fs.clone(), root).unwrap().total_captures(), full);
    }

    /// Regression for the streaming/pagination rewrite: a 10k-vertex
    /// superstep is served page by page without materializing the whole
    /// superstep, and the pages stitched together equal the full listing.
    #[test]
    fn large_superstep_paginates_without_materializing() {
        let config = DebugConfig::<Doubler>::builder()
            .capture_all_active(true)
            .catch_exceptions(false)
            .build();
        let run = GraftRunner::new(Doubler, config)
            .num_workers(4)
            .max_supersteps(1)
            .run(premade::cycle(10_000, 1i64), "/t/untyped-large")
            .unwrap();
        let session = UntypedSession::open(run.fs().clone(), "/t/untyped-large").unwrap();
        assert_eq!(session.count_at(0), 10_000);
        assert_eq!(session.total_captures(), 10_000);

        // A deep page parses only its 25 rows, stays in vertex order, and
        // matches the same slice of the full listing byte for byte.
        let page = session.rows_window(0, 9_950, 25);
        assert_eq!(page.len(), 25);
        let all = session.captured_at(0);
        for (paged, full) in page.iter().zip(&all[9_950..9_975]) {
            assert_eq!(paged.raw().to_string(), full.raw().to_string());
        }
        let mut keys: Vec<String> = all.iter().map(|t| t.vertex()).collect();
        let sorted = {
            let mut s = keys.clone();
            s.sort();
            s
        };
        assert_eq!(keys, sorted, "rows must be sorted by rendered vertex id");

        // Stitching every page back together reproduces the full set.
        let mut stitched = Vec::new();
        let mut offset = 0;
        loop {
            let chunk = session.rows_window(0, offset, 1_000);
            if chunk.is_empty() {
                break;
            }
            offset += chunk.len();
            stitched.extend(chunk.into_iter().map(|t| t.vertex()));
        }
        keys.sort();
        stitched.sort();
        assert_eq!(stitched, keys);

        // Point lookups and the past-the-end window behave.
        assert!(session.vertex_at(0, "777").is_some());
        assert!(session.vertex_at(0, "10000").is_none());
        assert!(session.rows_window(0, 10_000, 10).is_empty());
    }
}
