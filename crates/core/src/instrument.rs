//! The Graft instrumenter: wraps a user computation the way the paper's
//! Javassist instrumenter wraps `vertex.compute()`.
//!
//! [`Instrumented<C>`] implements [`Computation`] with the same
//! associated types as `C`, so the engine runs it unchanged. Each call:
//!
//! 1. decides whether this vertex may need capturing (pre-selected set,
//!    or any post-hoc category is active) and snapshots its pre-compute
//!    state if so,
//! 2. invokes the user's `compute()` under a panic guard,
//! 3. checks message and vertex-value constraints on what the vertex did,
//! 4. writes a [`VertexTrace`] if any capture reason applies, and
//! 5. re-raises or suppresses the panic per the exception policy.

use std::sync::Arc;

use graft_pregel::hash::FxHashSet;
use graft_pregel::{
    AggregatorRegistry, Computation, ContextOf, JobEnd, JobObserver, SuperstepStats, VertexHandleOf,
};

use crate::config::{CaptureReason, DebugConfig, ExceptionPolicy};
use crate::panic_capture;
use crate::sink::TraceSink;
use crate::trace::{ExceptionInfo, MasterTrace, VertexTrace, ViolationKind, ViolationRecord};

/// The sets of vertices selected for capture before the job starts.
pub struct CaptureSets<I> {
    /// Vertices listed by id in the config.
    pub specified: FxHashSet<I>,
    /// Vertices chosen by random sampling.
    pub random: FxHashSet<I>,
    /// Out-neighbors of specified/random vertices (when enabled).
    pub neighbors: FxHashSet<I>,
}

impl<I: std::hash::Hash + Eq> CaptureSets<I> {
    /// Total number of pre-selected vertices.
    pub fn len(&self) -> usize {
        self.specified.len() + self.random.len() + self.neighbors.len()
    }

    /// Whether no vertex is pre-selected.
    pub fn is_empty(&self) -> bool {
        self.specified.is_empty() && self.random.is_empty() && self.neighbors.is_empty()
    }
}

/// A user computation wrapped with Graft's capture logic.
pub struct Instrumented<C: Computation> {
    inner: Arc<C>,
    config: DebugConfig<C>,
    sets: CaptureSets<C::Id>,
    sink: Arc<TraceSink>,
    obs: Option<Arc<graft_obs::Obs>>,
}

impl<C: Computation> Instrumented<C> {
    /// Wraps `inner` with the given config, pre-selected sets, and sink.
    pub fn new(
        inner: Arc<C>,
        config: DebugConfig<C>,
        sets: CaptureSets<C::Id>,
        sink: Arc<TraceSink>,
    ) -> Self {
        Self { inner, config, sets, sink, obs: None }
    }

    /// Times every `compute()` call into `obs`, feeding the profiler's
    /// per-vertex skew table.
    pub fn with_obs(mut self, obs: Arc<graft_obs::Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The wrapped computation.
    pub fn inner(&self) -> &Arc<C> {
        &self.inner
    }

    /// The capture sets resolved for this run.
    pub fn capture_sets(&self) -> &CaptureSets<C::Id> {
        &self.sets
    }

    /// The capture pipeline for one `compute()` call (steps 1–5 of the
    /// module docs). Kept separate from the trait method so the optional
    /// per-vertex timing wraps it without touching its early returns.
    fn compute_traced(
        &self,
        vertex: &mut VertexHandleOf<'_, Self>,
        messages: &[C::Message],
        ctx: &mut ContextOf<'_, Self>,
    ) {
        let superstep = ctx.superstep();
        let in_filter = self.config.superstep_filter.matches(superstep);
        if !in_filter {
            // Outside the superstep selection Graft is a pure pass-through.
            self.inner.compute(vertex, messages, ctx);
            return;
        }

        let id = vertex.id();
        let preselected = self.preselect_reason(&id);
        let may_capture = preselected.is_some() || self.config.has_posthoc_captures();
        if !may_capture {
            self.inner.compute(vertex, messages, ctx);
            return;
        }

        // Snapshot the context as it is at compute entry — this is what a
        // generated reproduction test must recreate. The vertex value is
        // cloned up front; the edge list — which can be large on hub
        // vertices — is *not*: `VertexHandle` snapshots it lazily on the
        // first local mutation, so `edges_at_entry()` recovers the exact
        // entry adjacency after compute for free on the (overwhelmingly
        // common) non-mutating vertices. This keeps the constraint-check
        // configs (DC-msg, DC-vv) from paying an O(degree) clone on every
        // vertex of every superstep.
        let value_before = vertex.value().clone();

        let outcome = panic_capture::guarded(std::panic::AssertUnwindSafe(|| {
            self.inner.compute(vertex, messages, ctx)
        }));

        let mut reasons = Vec::new();
        if let Some(reason) = preselected {
            reasons.push(reason);
        }
        if self.config.capture_all_active {
            reasons.push(CaptureReason::AllActive);
        }

        let mut violations = Vec::new();
        if let Some(constraint) = &self.config.message_constraint {
            for (target, message) in ctx.staged_sends() {
                if !constraint(message, &id, target, superstep) {
                    violations.push(ViolationRecord {
                        kind: ViolationKind::Message,
                        detail: format!("{message:?}"),
                        target: Some(target.to_string()),
                    });
                }
            }
            if violations.iter().any(|v| v.kind == ViolationKind::Message) {
                reasons.push(CaptureReason::MessageViolation);
            }
        }
        if let Some(constraint) = &self.config.vertex_value_constraint {
            if !constraint(vertex.value(), &id, superstep) {
                violations.push(ViolationRecord {
                    kind: ViolationKind::VertexValue,
                    detail: format!("{:?}", vertex.value()),
                    target: None,
                });
                reasons.push(CaptureReason::VertexValueViolation);
            }
        }
        for _ in &violations {
            self.sink.count_violation(ctx.worker_id());
        }

        let exception = match &outcome {
            Ok(()) => None,
            Err((message, site)) => {
                self.sink.count_exception(ctx.worker_id());
                if self.config.catch_exceptions {
                    reasons.push(CaptureReason::Exception);
                }
                Some(ExceptionInfo {
                    message: match site.as_ref().and_then(|s| s.location.clone()) {
                        Some(location) => format!("{message} (at {location})"),
                        None => message.clone(),
                    },
                    backtrace: site.as_ref().map(|s| s.backtrace.clone()),
                })
            }
        };

        if !reasons.is_empty() {
            let record = VertexTrace {
                superstep,
                vertex: id,
                value_before,
                value_after: vertex.value().clone(),
                edges: vertex
                    .edges_at_entry()
                    .iter()
                    .map(|e| (e.target, e.value.clone()))
                    .collect(),
                incoming: messages.to_vec(),
                outgoing: ctx.staged_sends().to_vec(),
                aggregators: ctx.aggregator_snapshot(),
                global: ctx.global(),
                halted_after: vertex.has_voted_halt(),
                reasons,
                violations,
                exception,
            };
            self.sink.record_vertex(ctx.worker_id(), &record);
        }

        if let Err((message, _)) = outcome {
            match self.config.exception_policy {
                ExceptionPolicy::Abort => {
                    // Flush what we have, then let the job fail as Giraph
                    // jobs do on uncaught exceptions.
                    self.sink.flush();
                    std::panic::resume_unwind(Box::new(message));
                }
                ExceptionPolicy::SuppressAndHalt => {
                    vertex.vote_to_halt();
                }
            }
        }
    }

    fn preselect_reason(&self, id: &C::Id) -> Option<CaptureReason> {
        if self.sets.specified.contains(id) {
            Some(CaptureReason::SpecifiedId)
        } else if self.sets.random.contains(id) {
            Some(CaptureReason::RandomSample)
        } else if self.sets.neighbors.contains(id) {
            Some(CaptureReason::NeighborOfCaptured)
        } else {
            None
        }
    }
}

impl<C: Computation> Computation for Instrumented<C> {
    type Id = C::Id;
    type VValue = C::VValue;
    type EValue = C::EValue;
    type Message = C::Message;

    fn compute(
        &self,
        vertex: &mut VertexHandleOf<'_, Self>,
        messages: &[Self::Message],
        ctx: &mut ContextOf<'_, Self>,
    ) {
        let Some(obs) = &self.obs else {
            self.compute_traced(vertex, messages, ctx);
            return;
        };
        // Per-vertex skew timing: timers are worker-thread safe, and the
        // registry's accumulation commutes, so this cannot perturb the
        // deterministic exports. A panicking compute loses its sample —
        // the exception path is profiled through the event log instead.
        let id = vertex.id().to_string();
        let timer = obs.timer();
        self.compute_traced(vertex, messages, ctx);
        obs.registry().record_vertex_compute(&id, timer.stop());
    }

    fn use_combiner(&self) -> bool {
        self.inner.use_combiner()
    }

    fn combine(&self, a: &Self::Message, b: &Self::Message) -> Self::Message {
        self.inner.combine(a, b)
    }

    fn register_aggregators(&self, registry: &mut AggregatorRegistry) {
        self.inner.register_aggregators(registry);
    }

    fn name(&self) -> String {
        self.inner.name()
    }
}

/// The engine observer through which Graft flushes trace buffers at
/// superstep boundaries, captures master contexts, and writes the final
/// `result.json` — on success *and* on job failure.
pub struct GraftObserver {
    sink: Arc<TraceSink>,
    capture_master: bool,
    obs: Option<Arc<graft_obs::Obs>>,
    /// Sink bytes that were durable after the previous flush, for the
    /// per-flush byte delta in `trace.flush` spans.
    flushed_bytes: std::sync::atomic::AtomicU64,
    live: Option<Arc<parking_lot::Mutex<graft_obs::LiveWriter>>>,
    pace: Option<std::time::Duration>,
}

impl GraftObserver {
    /// Creates the observer for a run.
    pub fn new(sink: Arc<TraceSink>, capture_master: bool) -> Self {
        Self {
            sink,
            capture_master,
            obs: None,
            flushed_bytes: std::sync::atomic::AtomicU64::new(0),
            live: None,
            pace: None,
        }
    }

    /// Emits `trace.flush` spans (with byte counts) into `obs` around the
    /// per-superstep trace flushes.
    pub fn with_obs(mut self, obs: Arc<graft_obs::Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Streams live snapshots through `live` at every superstep boundary:
    /// the watermark advances to the completed superstep *after* the
    /// trace flush, so everything a committed snapshot covers is durable
    /// by the time a monitoring client can see its sequence number.
    pub fn with_live(mut self, live: Arc<parking_lot::Mutex<graft_obs::LiveWriter>>) -> Self {
        self.live = Some(live);
        self
    }

    /// Sleeps this long after each superstep's flush — a demo/test knob
    /// that slows the job down enough for live tailing to observe
    /// intermediate states.
    pub fn with_pace(mut self, pace: std::time::Duration) -> Self {
        self.pace = Some(pace);
        self
    }

    /// Best-effort live flush: a failing trace DFS must not take the job
    /// down with it — monitoring is strictly weaker than the run.
    fn live_flush(&self, advance_to: Option<u64>) {
        if let Some(live) = &self.live {
            let mut live = live.lock();
            if let Some(superstep) = advance_to {
                live.advance_watermark(superstep);
            }
            if let Err(e) = live.flush(graft_obs::STATUS_RUNNING) {
                eprintln!("graft: live flush failed: {e}");
            }
        }
    }
}

impl<C: Computation> JobObserver<C> for GraftObserver {
    fn on_job_start(&self, _global: &graft_pregel::GlobalData, _num_workers: usize) {
        // Commit a seq-1 snapshot before superstep 0 so a monitoring
        // client sees the job as `running` (with no watermark yet) as
        // soon as it exists.
        self.live_flush(None);
    }

    fn on_master_computed(
        &self,
        superstep: u64,
        global: &graft_pregel::GlobalData,
        aggregators: &[(String, graft_pregel::AggValue)],
        halted: bool,
    ) {
        if self.capture_master {
            self.sink.record_master(&MasterTrace {
                superstep,
                global: *global,
                aggregators: aggregators.to_vec(),
                halted,
            });
        }
    }

    fn on_superstep_end(&self, stats: &SuperstepStats) {
        if let Some(obs) = &self.obs {
            let superstep = stats.superstep;
            let begin = obs.begin("trace.flush", Some(superstep), None);
            self.sink.flush();
            let total = self.sink.bytes_written();
            let total_before = self.flushed_bytes.swap(total, std::sync::atomic::Ordering::Relaxed);
            let bytes = total - total_before.min(total);
            let dur = obs.end(
                "trace.flush",
                Some(superstep),
                None,
                begin,
                &[("bytes", bytes.to_string()), ("total_bytes", total.to_string())],
            );
            let reg = obs.registry();
            reg.inc("trace_flush_bytes_total", graft_obs::Scope::GLOBAL, bytes);
            reg.observe_bytes("trace_flush_bytes", graft_obs::Scope::GLOBAL, bytes);
            reg.observe_time("trace_flush_nanos", graft_obs::Scope::GLOBAL, dur);
            reg.set_gauge("trace_bytes_written", graft_obs::Scope::GLOBAL, total as i64);
        } else {
            self.sink.flush();
        }
        // The superstep's traces are durable now, so it may enter the
        // immutable frontier and be announced to live readers.
        self.live_flush(Some(stats.superstep));
        if let Some(pace) = self.pace {
            std::thread::sleep(pace);
        }
    }

    fn on_checkpoint(&self, superstep: u64) {
        // Snapshot the trace state in lock-step with the engine's
        // checkpoint, so a restore can rewind the traces to the same
        // boundary.
        self.sink.snapshot(superstep);
    }

    fn on_restore(&self, superstep: u64) {
        // Discard everything recorded by the aborted execution: the
        // replayed supersteps will rewrite those records identically.
        self.sink.rollback(superstep);
    }

    fn on_confined_restore(&self, superstep: u64, workers: &[usize]) {
        // Confined recovery replays only the failed partitions, so only
        // their trace channels are rewound; survivors' records stand.
        self.sink.rollback_workers(superstep, workers);
    }

    fn on_job_end(&self, end: &JobEnd) {
        self.sink.finalize(end.supersteps_executed, end.error.clone());
    }
}
