//! The trace sink: buffered, per-worker trace file writers with the
//! global capture-count safety net.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use graft_dfs::{FileSystem, FileWrite};
// Channel locks and the global counters are graft-sched shims: identical
// to parking_lot + std atomics in production, scheduler yield points
// with happens-before tracking under `check-sched` — the capture-slot
// reservation protocol is model-checked against real interleavings.
use graft_sched::atomic::{AtomicBool, AtomicU64};
use graft_sched::sync::Mutex;

use crate::config::TraceCodec;
use crate::trace::{
    encode_index_frame, encode_record, master_trace_path, result_path, worker_trace_path,
    IndexRecord, JobResultRecord, TraceRecord,
};

struct Channel {
    writer: Box<dyn FileWrite>,
    /// Encode buffer reused across records.
    scratch: Vec<u8>,
    /// The file this channel writes to (needed for rollback).
    path: String,
    /// Bytes handed to the writer so far; after a `flush` this is the
    /// durable file length, which rollback and the finalize durability
    /// check both rely on.
    written: u64,
    /// Records written to this channel (binary index-frame bookkeeping).
    records: u64,
    /// Superstep of the last record, so the binary codec can emit one
    /// index frame per superstep transition. `None` before any record.
    last_superstep: Option<u64>,
}

impl Channel {
    fn new(fs: &Arc<dyn FileSystem>, path: String) -> Result<Self, graft_dfs::FsError> {
        let writer = fs.create(&path)?;
        Ok(Self { writer, scratch: Vec::new(), path, written: 0, records: 0, last_superstep: None })
    }
}

/// Placeholder writer installed while a channel's file is being rewound.
struct NullWrite;

impl std::io::Write for NullWrite {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl FileWrite for NullWrite {
    fn sync(&mut self) -> Result<(), graft_dfs::FsError> {
        Ok(())
    }
}

/// Per-worker contribution counters, kept alongside the global ones so a
/// *confined* rollback can rewind one worker's share while survivors'
/// counts stand.
struct WorkerCounts {
    captures: AtomicU64,
    violations: AtomicU64,
    exceptions: AtomicU64,
}

impl WorkerCounts {
    fn new() -> Self {
        Self {
            captures: AtomicU64::new(0),
            violations: AtomicU64::new(0),
            exceptions: AtomicU64::new(0),
        }
    }
}

/// One channel's rewind point: durable length plus the binary codec's
/// index-frame bookkeeping, so a replayed superstep emits its index frame
/// exactly where (and only where) the discarded execution did.
#[derive(Clone, Copy)]
struct ChannelMark {
    written: u64,
    records: u64,
    last_superstep: Option<u64>,
}

/// Everything needed to rewind the sink to a checkpoint boundary: the
/// per-channel durable lengths and the global and per-worker counters.
#[derive(Clone)]
struct SinkSnapshot {
    superstep: u64,
    worker_marks: Vec<ChannelMark>,
    master_written: u64,
    captures: u64,
    violations: u64,
    exceptions: u64,
    /// Per-worker `[captures, violations, exceptions]` at the boundary.
    worker_counts: Vec<[u64; 3]>,
    limit_hit: bool,
}

/// Thread-safe trace writer shared by the instrumenter (vertex captures,
/// from worker threads) and the job observer (master captures, flushes).
///
/// Each engine worker writes to its own file through its own lock, so
/// capture recording never contends across workers — the design point
/// behind the paper's low overhead numbers.
pub struct TraceSink {
    codec: TraceCodec,
    max_captures: u64,
    captures: AtomicU64,
    violations: AtomicU64,
    exceptions: AtomicU64,
    limit_hit: AtomicBool,
    worker_counts: Vec<WorkerCounts>,
    workers: Vec<Mutex<Channel>>,
    master: Mutex<Channel>,
    fs: Arc<dyn FileSystem>,
    root: String,
    /// Trace-state snapshots taken at checkpoint boundaries, oldest first.
    snapshots: Mutex<Vec<SinkSnapshot>>,
    /// First write error encountered, surfaced in `result.json`.
    poisoned: Mutex<Option<String>>,
}

impl TraceSink {
    /// Creates the sink and its trace files under `root`.
    pub fn new(
        fs: Arc<dyn FileSystem>,
        root: &str,
        codec: TraceCodec,
        max_captures: u64,
        num_workers: usize,
    ) -> Result<Self, graft_dfs::FsError> {
        fs.mkdirs(root)?;
        let mut workers = Vec::with_capacity(num_workers);
        for w in 0..num_workers {
            workers.push(Mutex::new(Channel::new(&fs, worker_trace_path(root, w))?));
        }
        let master = Mutex::new(Channel::new(&fs, master_trace_path(root))?);
        Ok(Self {
            codec,
            max_captures,
            captures: AtomicU64::new(0),
            violations: AtomicU64::new(0),
            exceptions: AtomicU64::new(0),
            limit_hit: AtomicBool::new(false),
            worker_counts: (0..num_workers).map(|_| WorkerCounts::new()).collect(),
            workers,
            master,
            fs,
            root: root.to_string(),
            snapshots: Mutex::new(Vec::new()),
            poisoned: Mutex::new(None),
        })
    }

    /// Records one captured vertex context from `worker`. Returns `false`
    /// when the capture safety net has tripped and nothing was written.
    ///
    /// Under the binary codec, the first record of each superstep is
    /// preceded by an index frame. Emission is a pure function of the
    /// per-channel record stream, so a replayed execution reproduces the
    /// discarded one byte for byte.
    pub fn record_vertex<T: TraceRecord>(&self, worker: usize, record: &T) -> bool {
        // Reserve a capture slot first so the threshold is global across
        // workers, as the paper describes.
        let slot = self.captures.fetch_add(1, Ordering::Relaxed);
        if slot >= self.max_captures {
            self.captures.fetch_sub(1, Ordering::Relaxed);
            self.limit_hit.store(true, Ordering::Relaxed);
            return false;
        }
        self.worker_counts[worker].captures.fetch_add(1, Ordering::Relaxed);
        let superstep = record.record_superstep();
        let mut channel = self.workers[worker].lock();
        let channel = &mut *channel;
        channel.scratch.clear();
        if self.codec == TraceCodec::Binary && channel.last_superstep != Some(superstep) {
            let index = IndexRecord {
                superstep,
                records_before: channel.records,
                bytes_before: channel.written,
            };
            if let Err(e) = encode_index_frame(&index, &mut channel.scratch) {
                self.poison(e);
                return false;
            }
        }
        if let Err(e) = encode_record(self.codec, record, &mut channel.scratch) {
            self.poison(e);
            return false;
        }
        if let Err(e) = std::io::Write::write_all(&mut channel.writer, &channel.scratch) {
            self.poison(e.to_string());
            return false;
        }
        channel.written += channel.scratch.len() as u64;
        channel.records += 1;
        channel.last_superstep = Some(superstep);
        true
    }

    /// Records one captured master context. The master channel carries at
    /// most one record per superstep, so it gets no index frames.
    pub fn record_master<T: TraceRecord>(&self, record: &T) {
        let mut channel = self.master.lock();
        let channel = &mut *channel;
        channel.scratch.clear();
        if let Err(e) = encode_record(self.codec, record, &mut channel.scratch) {
            self.poison(e);
            return;
        }
        if let Err(e) = std::io::Write::write_all(&mut channel.writer, &channel.scratch) {
            self.poison(e.to_string());
            return;
        }
        channel.written += channel.scratch.len() as u64;
    }

    /// Counts a constraint violation observed by `worker`.
    pub fn count_violation(&self, worker: usize) {
        self.violations.fetch_add(1, Ordering::Relaxed);
        self.worker_counts[worker].violations.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an exception captured by `worker`.
    pub fn count_exception(&self, worker: usize) {
        self.exceptions.fetch_add(1, Ordering::Relaxed);
        self.worker_counts[worker].exceptions.fetch_add(1, Ordering::Relaxed);
    }

    /// Makes everything written so far visible to readers (called at
    /// superstep boundaries, like the paper's per-superstep HDFS flush).
    pub fn flush(&self) {
        for worker in &self.workers {
            if let Err(e) = worker.lock().writer.sync() {
                self.poison(e.to_string());
            }
        }
        if let Err(e) = self.master.lock().writer.sync() {
            self.poison(e.to_string());
        }
    }

    /// Snapshots the sink's durable state at a checkpoint boundary for
    /// `superstep`, so a later [`TraceSink::rollback`] can rewind the
    /// trace files in lock-step with the engine's recovery. Replaces any
    /// earlier snapshot for the same or a later superstep (a replayed
    /// checkpoint supersedes the pre-failure one).
    pub fn snapshot(&self, superstep: u64) {
        self.flush();
        let worker_marks: Vec<ChannelMark> = self
            .workers
            .iter()
            .map(|w| {
                let channel = w.lock();
                ChannelMark {
                    written: channel.written,
                    records: channel.records,
                    last_superstep: channel.last_superstep,
                }
            })
            .collect();
        let master_written = self.master.lock().written;
        let worker_counts: Vec<[u64; 3]> = self
            .worker_counts
            .iter()
            .map(|c| {
                [
                    c.captures.load(Ordering::Relaxed),
                    c.violations.load(Ordering::Relaxed),
                    c.exceptions.load(Ordering::Relaxed),
                ]
            })
            .collect();
        let mut snapshots = self.snapshots.lock();
        snapshots.retain(|s| s.superstep < superstep);
        snapshots.push(SinkSnapshot {
            superstep,
            worker_marks,
            master_written,
            captures: self.captures(),
            violations: self.violations(),
            exceptions: self.exceptions(),
            worker_counts,
            limit_hit: self.limit_hit(),
        });
    }

    /// Rewinds every trace file and counter to the snapshot taken for
    /// `superstep`, discarding records from the aborted execution so the
    /// replayed supersteps land exactly where the lost ones did. Poisons
    /// the sink if no snapshot exists or a file cannot be rewound.
    pub fn rollback(&self, superstep: u64) {
        let Some(snapshot) = self.take_snapshot(superstep) else { return };
        for (worker, channel) in self.workers.iter().enumerate() {
            let mut channel = channel.lock();
            if let Err(e) = Self::rewind(&self.fs, &mut channel, &snapshot.worker_marks[worker]) {
                self.poison(e);
            }
        }
        {
            let mut channel = self.master.lock();
            let mark =
                ChannelMark { written: snapshot.master_written, records: 0, last_superstep: None };
            if let Err(e) = Self::rewind(&self.fs, &mut channel, &mark) {
                self.poison(e);
            }
        }
        for (counts, snap) in self.worker_counts.iter().zip(&snapshot.worker_counts) {
            counts.captures.store(snap[0], Ordering::Relaxed);
            counts.violations.store(snap[1], Ordering::Relaxed);
            counts.exceptions.store(snap[2], Ordering::Relaxed);
        }
        self.captures.store(snapshot.captures, Ordering::Relaxed);
        self.violations.store(snapshot.violations, Ordering::Relaxed);
        self.exceptions.store(snapshot.exceptions, Ordering::Relaxed);
        self.limit_hit.store(snapshot.limit_hit, Ordering::Relaxed);
    }

    /// Rewinds *only* the listed workers' trace files and counter shares
    /// to the snapshot taken for `superstep`, leaving the survivors' (and
    /// the master's) records in place — the trace-side mirror of the
    /// engine's confined recovery. The global counters are recomputed as
    /// the snapshot values plus the survivors' contributions since.
    pub fn rollback_workers(&self, superstep: u64, workers: &[usize]) {
        let Some(snapshot) = self.take_snapshot(superstep) else { return };
        for &worker in workers {
            let mut channel = self.workers[worker].lock();
            if let Err(e) = Self::rewind(&self.fs, &mut channel, &snapshot.worker_marks[worker]) {
                self.poison(e);
            }
        }
        let mut totals = [snapshot.captures, snapshot.violations, snapshot.exceptions];
        for (worker, (counts, snap)) in
            self.worker_counts.iter().zip(&snapshot.worker_counts).enumerate()
        {
            if workers.contains(&worker) {
                counts.captures.store(snap[0], Ordering::Relaxed);
                counts.violations.store(snap[1], Ordering::Relaxed);
                counts.exceptions.store(snap[2], Ordering::Relaxed);
            } else {
                totals[0] += counts.captures.load(Ordering::Relaxed) - snap[0];
                totals[1] += counts.violations.load(Ordering::Relaxed) - snap[1];
                totals[2] += counts.exceptions.load(Ordering::Relaxed) - snap[2];
            }
        }
        self.captures.store(totals[0], Ordering::Relaxed);
        self.violations.store(totals[1], Ordering::Relaxed);
        self.exceptions.store(totals[2], Ordering::Relaxed);
        self.limit_hit
            .store(snapshot.limit_hit || totals[0] >= self.max_captures, Ordering::Relaxed);
    }

    /// Finds the snapshot for `superstep`, dropping any later ones (a
    /// rewind invalidates them); poisons the sink when none exists.
    fn take_snapshot(&self, superstep: u64) -> Option<SinkSnapshot> {
        let mut snapshots = self.snapshots.lock();
        let Some(pos) = snapshots.iter().position(|s| s.superstep == superstep) else {
            self.poison(format!("no trace snapshot for restored superstep {superstep}"));
            return None;
        };
        snapshots.truncate(pos + 1);
        Some(snapshots[pos].clone())
    }

    /// Truncates a channel's file back to the mark's byte length by
    /// committing the current writer, re-reading the durable prefix, and
    /// recreating the file with exactly that prefix; the binary codec's
    /// index-frame bookkeeping is rewound with it.
    fn rewind(
        fs: &Arc<dyn FileSystem>,
        channel: &mut Channel,
        mark: &ChannelMark,
    ) -> Result<(), String> {
        let keep = mark.written;
        if channel.written == keep {
            // Nothing was written since the snapshot, so the index-frame
            // bookkeeping is still at the mark too.
            return Ok(());
        }
        channel.records = mark.records;
        channel.last_superstep = mark.last_superstep;
        // Dropping the writer commits any buffered bytes; install a
        // placeholder so the channel stays structurally valid if the
        // rewrite below fails part-way.
        drop(std::mem::replace(&mut channel.writer, Box::new(NullWrite)));
        let bytes = fs.read_all(&channel.path).map_err(|e| e.to_string())?;
        let keep_len = usize::try_from(keep).map_err(|e| e.to_string())?;
        if bytes.len() < keep_len {
            return Err(format!(
                "trace file {} truncated below its snapshot ({} < {keep} bytes)",
                channel.path,
                bytes.len()
            ));
        }
        let mut writer = fs.create(&channel.path).map_err(|e| e.to_string())?;
        std::io::Write::write_all(&mut writer, &bytes[..keep_len]).map_err(|e| e.to_string())?;
        writer.sync().map_err(|e| e.to_string())?;
        channel.writer = writer;
        channel.written = keep;
        Ok(())
    }

    /// Final flush plus `result.json`. Called exactly once at job end.
    ///
    /// Durability-hardened: after the final sync, every trace file's
    /// length on the file system is verified against the bytes this sink
    /// wrote to it — a short file means the backing store lost data, and
    /// that is reported in `result.json` rather than silently producing a
    /// truncated trace.
    pub fn finalize(&self, supersteps_executed: u64, error: Option<String>) {
        self.flush();
        self.verify_durable();
        let error = error.or_else(|| self.poisoned.lock().clone());
        let record = JobResultRecord {
            supersteps_executed,
            error,
            captures: self.captures(),
            violations: self.violations(),
            exceptions: self.exceptions(),
            capture_limit_hit: self.limit_hit(),
        };
        let rendered = serde_json::to_vec_pretty(&record).expect("result record serializes");
        if let Err(e) = self.fs.write_all(&result_path(&self.root), &rendered) {
            self.poison(e.to_string());
        }
    }

    /// Vertex contexts captured so far.
    pub fn captures(&self) -> u64 {
        self.captures.load(Ordering::Relaxed)
    }

    /// Constraint violations recorded so far.
    pub fn violations(&self) -> u64 {
        self.violations.load(Ordering::Relaxed)
    }

    /// Exceptions recorded so far.
    pub fn exceptions(&self) -> u64 {
        self.exceptions.load(Ordering::Relaxed)
    }

    /// Whether the capture safety net has tripped.
    pub fn limit_hit(&self) -> bool {
        self.limit_hit.load(Ordering::Relaxed)
    }

    /// Total bytes handed to all trace writers (worker files plus the
    /// master file) so far. After a [`TraceSink::flush`] this is the
    /// durable trace volume — the number the observability layer surfaces.
    pub fn bytes_written(&self) -> u64 {
        let workers: u64 = self.workers.iter().map(|w| w.lock().written).sum();
        workers + self.master.lock().written
    }

    /// Checks that every synced trace file is exactly as long as the
    /// bytes written to it.
    fn verify_durable(&self) {
        let channels = self.workers.iter().chain(std::iter::once(&self.master));
        for channel in channels {
            let channel = channel.lock();
            match self.fs.status(&channel.path) {
                Ok(status) if status.len == channel.written => {}
                Ok(status) => self.poison(format!(
                    "trace file {} not durable: {} bytes on disk, {} written",
                    channel.path, status.len, channel.written
                )),
                Err(e) => {
                    self.poison(format!("trace file {} unreadable at finalize: {e}", channel.path))
                }
            }
        }
    }

    fn poison(&self, error: String) {
        let mut slot = self.poisoned.lock();
        if slot.is_none() {
            *slot = Some(error);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{decode_vertex_records, FRAME_INDEX, FRAME_VERTEX};
    use graft_dfs::InMemoryFs;
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Rec {
        worker: usize,
        seq: u64,
    }

    // The sink is generic over TraceRecord; the test record's sequence
    // number doubles as its superstep so index-frame emission is easy to
    // steer.
    impl TraceRecord for Rec {
        fn record_superstep(&self) -> u64 {
            self.seq
        }

        fn encode_binary_frame(&self, buf: &mut Vec<u8>) -> Result<(), String> {
            graft_codec::frame::write_value_frame(buf, FRAME_VERTEX, self)
                .map_err(|e| e.to_string())
        }
    }

    fn sink(max: u64) -> (Arc<InMemoryFs>, TraceSink) {
        let fs = Arc::new(InMemoryFs::new());
        let sink =
            TraceSink::new(fs.clone(), "/traces/job", TraceCodec::JsonLines, max, 4).unwrap();
        (fs, sink)
    }

    fn binary_sink(max: u64) -> (Arc<InMemoryFs>, TraceSink) {
        let fs = Arc::new(InMemoryFs::new());
        let sink = TraceSink::new(fs.clone(), "/traces/job", TraceCodec::Binary, max, 4).unwrap();
        (fs, sink)
    }

    fn frame_kinds(bytes: &[u8]) -> Vec<u8> {
        let mut scanner = graft_codec::frame::FrameScanner::new(bytes);
        let mut kinds = Vec::new();
        while let Some(frame) = scanner.next_frame().unwrap() {
            kinds.push(frame.kind);
        }
        kinds
    }

    #[test]
    fn per_worker_files_receive_their_records() {
        let (fs, sink) = sink(1000);
        for worker in 0..4 {
            for seq in 0..10 {
                assert!(sink.record_vertex(worker, &Rec { worker, seq }));
            }
        }
        sink.flush();
        for worker in 0..4 {
            let bytes = fs.read_all(&worker_trace_path("/traces/job", worker)).unwrap();
            let records: Vec<Rec> = decode_vertex_records(TraceCodec::JsonLines, &bytes).unwrap();
            assert_eq!(records.len(), 10);
            assert!(records.iter().all(|r| r.worker == worker));
        }
        assert_eq!(sink.captures(), 40);
    }

    #[test]
    fn capture_limit_is_global_across_workers() {
        let (_fs, sink) = sink(25);
        let mut accepted = 0;
        for seq in 0..20u64 {
            for worker in 0..4 {
                if sink.record_vertex(worker, &Rec { worker, seq }) {
                    accepted += 1;
                }
            }
        }
        assert_eq!(accepted, 25);
        assert_eq!(sink.captures(), 25);
        assert!(sink.limit_hit());
    }

    #[test]
    fn finalize_writes_result_json() {
        let (fs, sink) = sink(1000);
        sink.record_vertex(0, &Rec { worker: 0, seq: 0 });
        sink.count_violation(0);
        sink.count_violation(1);
        sink.count_exception(2);
        sink.finalize(7, Some("vertex 3 panicked".into()));
        let bytes = fs.read_all(&result_path("/traces/job")).unwrap();
        let record: JobResultRecord = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(record.supersteps_executed, 7);
        assert_eq!(record.captures, 1);
        assert_eq!(record.violations, 2);
        assert_eq!(record.exceptions, 1);
        assert_eq!(record.error.as_deref(), Some("vertex 3 panicked"));
        assert!(!record.capture_limit_hit);
    }

    #[test]
    fn rollback_rewinds_files_and_counters_to_snapshot() {
        let (fs, sink) = sink(1000);
        // Superstep 0 and 1 records, checkpoint boundary at superstep 2.
        for seq in 0..4 {
            sink.record_vertex(0, &Rec { worker: 0, seq });
        }
        sink.record_master(&Rec { worker: 99, seq: 0 });
        sink.count_violation(0);
        sink.snapshot(2);
        // Supersteps 2..4 write more, then the "job" fails and restores.
        for seq in 4..9 {
            sink.record_vertex(0, &Rec { worker: 0, seq });
            sink.record_vertex(1, &Rec { worker: 1, seq });
        }
        sink.record_master(&Rec { worker: 99, seq: 1 });
        sink.count_violation(0);
        sink.count_exception(1);
        sink.rollback(2);

        assert_eq!(sink.captures(), 4);
        assert_eq!(sink.violations(), 1);
        assert_eq!(sink.exceptions(), 0);
        sink.flush();
        let w0 = fs.read_all(&worker_trace_path("/traces/job", 0)).unwrap();
        let records: Vec<Rec> = decode_vertex_records(TraceCodec::JsonLines, &w0).unwrap();
        assert_eq!(records.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        let w1 = fs.read_all(&worker_trace_path("/traces/job", 1)).unwrap();
        assert!(w1.is_empty());
        let master = fs.read_all(&crate::trace::master_trace_path("/traces/job")).unwrap();
        let records: Vec<Rec> = decode_vertex_records(TraceCodec::JsonLines, &master).unwrap();
        assert_eq!(records.len(), 1);

        // The channels remain writable after a rollback: the replayed
        // supersteps append exactly where the discarded ones began.
        for seq in 4..6 {
            assert!(sink.record_vertex(0, &Rec { worker: 0, seq }));
        }
        sink.flush();
        let w0 = fs.read_all(&worker_trace_path("/traces/job", 0)).unwrap();
        let records: Vec<Rec> = decode_vertex_records(TraceCodec::JsonLines, &w0).unwrap();
        assert_eq!(records.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn rollback_workers_rewinds_only_the_failed_workers() {
        let (fs, sink) = sink(1000);
        for seq in 0..3 {
            sink.record_vertex(0, &Rec { worker: 0, seq });
            sink.record_vertex(1, &Rec { worker: 1, seq });
        }
        sink.record_master(&Rec { worker: 99, seq: 0 });
        sink.count_violation(1);
        sink.snapshot(3);
        // Both workers (and the master) record past the boundary, then
        // worker 1 fails and is confined-rolled-back.
        for seq in 3..7 {
            sink.record_vertex(0, &Rec { worker: 0, seq });
            sink.record_vertex(1, &Rec { worker: 1, seq });
        }
        sink.record_master(&Rec { worker: 99, seq: 1 });
        sink.count_violation(0);
        sink.count_violation(1);
        sink.count_exception(1);
        sink.rollback_workers(3, &[1]);

        // Worker 1's file is back at the boundary; worker 0's and the
        // master's are untouched.
        sink.flush();
        let w1 = fs.read_all(&worker_trace_path("/traces/job", 1)).unwrap();
        let records: Vec<Rec> = decode_vertex_records(TraceCodec::JsonLines, &w1).unwrap();
        assert_eq!(records.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        let w0 = fs.read_all(&worker_trace_path("/traces/job", 0)).unwrap();
        let records: Vec<Rec> = decode_vertex_records(TraceCodec::JsonLines, &w0).unwrap();
        assert_eq!(records.len(), 7);
        let master = fs.read_all(&crate::trace::master_trace_path("/traces/job")).unwrap();
        let records: Vec<Rec> = decode_vertex_records(TraceCodec::JsonLines, &master).unwrap();
        assert_eq!(records.len(), 2);

        // Counters: worker 1's post-snapshot share (4 captures, 1
        // violation, 1 exception) is subtracted; worker 0's stands.
        assert_eq!(sink.captures(), 10);
        assert_eq!(sink.violations(), 2);
        assert_eq!(sink.exceptions(), 0);

        // The replayed records land exactly where the discarded began,
        // and the counters converge back to the full totals.
        for seq in 3..7 {
            assert!(sink.record_vertex(1, &Rec { worker: 1, seq }));
        }
        sink.count_violation(1);
        sink.count_exception(1);
        sink.flush();
        let w1 = fs.read_all(&worker_trace_path("/traces/job", 1)).unwrap();
        let records: Vec<Rec> = decode_vertex_records(TraceCodec::JsonLines, &w1).unwrap();
        assert_eq!(records.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(sink.captures(), 14);
        assert_eq!(sink.violations(), 3);
        assert_eq!(sink.exceptions(), 1);
    }

    #[test]
    fn replayed_snapshot_supersedes_pre_failure_snapshot() {
        let (_fs, sink) = sink(1000);
        sink.record_vertex(0, &Rec { worker: 0, seq: 0 });
        sink.snapshot(2);
        sink.record_vertex(0, &Rec { worker: 0, seq: 1 });
        sink.snapshot(4);
        sink.rollback(2);
        // Replay reaches superstep 4 again with different durable state.
        sink.snapshot(4);
        sink.record_vertex(0, &Rec { worker: 0, seq: 2 });
        sink.rollback(4);
        assert_eq!(sink.captures(), 1);
    }

    #[test]
    fn rollback_without_snapshot_poisons_the_result() {
        let (fs, sink) = sink(1000);
        sink.rollback(7);
        sink.finalize(0, None);
        let bytes = fs.read_all(&result_path("/traces/job")).unwrap();
        let record: JobResultRecord = serde_json::from_slice(&bytes).unwrap();
        assert!(record.error.unwrap().contains("no trace snapshot"));
    }

    #[test]
    fn finalize_reports_truncated_trace_files() {
        let (fs, sink) = sink(1000);
        for seq in 0..8 {
            sink.record_vertex(0, &Rec { worker: 0, seq });
        }
        sink.flush();
        // Simulate the backing store losing the file's tail.
        let path = worker_trace_path("/traces/job", 0);
        let bytes = fs.read_all(&path).unwrap();
        fs.write_all(&path, &bytes[..bytes.len() / 2]).unwrap();
        sink.finalize(3, None);
        let bytes = fs.read_all(&result_path("/traces/job")).unwrap();
        let record: JobResultRecord = serde_json::from_slice(&bytes).unwrap();
        assert!(record.error.unwrap().contains("not durable"));
    }

    #[test]
    fn concurrent_workers_do_not_interleave_within_a_file() {
        let (fs, sink) = sink(100_000);
        let sink = Arc::new(sink);
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let sink = Arc::clone(&sink);
                scope.spawn(move || {
                    for seq in 0..500u64 {
                        sink.record_vertex(worker, &Rec { worker, seq });
                    }
                });
            }
        });
        sink.flush();
        for worker in 0..4 {
            let bytes = fs.read_all(&worker_trace_path("/traces/job", worker)).unwrap();
            let records: Vec<Rec> = decode_vertex_records(TraceCodec::JsonLines, &bytes).unwrap();
            assert_eq!(records.len(), 500);
            // Per-worker order is preserved.
            for (i, r) in records.iter().enumerate() {
                assert_eq!(r.seq, i as u64);
            }
        }
    }

    #[test]
    fn binary_channels_index_each_superstep_transition() {
        let (fs, sink) = binary_sink(1000);
        // Two records in superstep 0, one in superstep 1 (seq doubles as
        // the superstep for the test record).
        assert!(sink.record_vertex(0, &Rec { worker: 0, seq: 0 }));
        assert!(sink.record_vertex(0, &Rec { worker: 0, seq: 0 }));
        assert!(sink.record_vertex(0, &Rec { worker: 0, seq: 1 }));
        sink.flush();
        let bytes = fs.read_all(&worker_trace_path("/traces/job", 0)).unwrap();
        assert_eq!(
            frame_kinds(&bytes),
            vec![FRAME_INDEX, FRAME_VERTEX, FRAME_VERTEX, FRAME_INDEX, FRAME_VERTEX]
        );
        let mut scanner = graft_codec::frame::FrameScanner::new(&bytes);
        let mut indexes = Vec::new();
        while let Some(frame) = scanner.next_frame().unwrap() {
            if frame.kind == FRAME_INDEX {
                let index: IndexRecord = graft_codec::from_slice(frame.payload).unwrap();
                assert_eq!(index.bytes_before, frame.start as u64, "index frames self-locate");
                indexes.push(index);
            }
        }
        assert_eq!(indexes[0], IndexRecord { superstep: 0, records_before: 0, bytes_before: 0 });
        assert_eq!(indexes[1].superstep, 1);
        assert_eq!(indexes[1].records_before, 2);
    }

    #[test]
    fn binary_rollback_makes_the_replay_byte_identical() {
        let (fs, sink) = binary_sink(1000);
        let replay = |sink: &TraceSink| {
            sink.record_vertex(0, &Rec { worker: 0, seq: 1 });
            sink.record_vertex(0, &Rec { worker: 0, seq: 2 });
            sink.record_vertex(0, &Rec { worker: 0, seq: 2 });
        };
        sink.record_vertex(0, &Rec { worker: 0, seq: 0 });
        sink.snapshot(1);
        replay(&sink);
        sink.flush();
        let original = fs.read_all(&worker_trace_path("/traces/job", 0)).unwrap();

        // The restored bookkeeping must re-emit index frames exactly where
        // the discarded execution did, or recovery byte-identity breaks.
        sink.rollback(1);
        replay(&sink);
        sink.flush();
        let replayed = fs.read_all(&worker_trace_path("/traces/job", 0)).unwrap();
        assert_eq!(original, replayed);
        assert_eq!(
            frame_kinds(&original),
            vec![
                FRAME_INDEX,
                FRAME_VERTEX,
                FRAME_INDEX,
                FRAME_VERTEX,
                FRAME_INDEX,
                FRAME_VERTEX,
                FRAME_VERTEX
            ]
        );
    }
}
