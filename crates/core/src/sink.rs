//! The trace sink: buffered, per-worker trace file writers with the
//! global capture-count safety net.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use graft_dfs::{FileSystem, FileWrite};
use parking_lot::Mutex;
use serde::Serialize;

use crate::config::TraceCodec;
use crate::trace::{
    encode_record, master_trace_path, result_path, worker_trace_path, JobResultRecord,
};

struct Channel {
    writer: Box<dyn FileWrite>,
    /// Encode buffer reused across records.
    scratch: Vec<u8>,
}

/// Thread-safe trace writer shared by the instrumenter (vertex captures,
/// from worker threads) and the job observer (master captures, flushes).
///
/// Each engine worker writes to its own file through its own lock, so
/// capture recording never contends across workers — the design point
/// behind the paper's low overhead numbers.
pub struct TraceSink {
    codec: TraceCodec,
    max_captures: u64,
    captures: AtomicU64,
    violations: AtomicU64,
    exceptions: AtomicU64,
    limit_hit: AtomicBool,
    workers: Vec<Mutex<Channel>>,
    master: Mutex<Channel>,
    fs: Arc<dyn FileSystem>,
    root: String,
    /// First write error encountered, surfaced in `result.json`.
    poisoned: Mutex<Option<String>>,
}

impl TraceSink {
    /// Creates the sink and its trace files under `root`.
    pub fn new(
        fs: Arc<dyn FileSystem>,
        root: &str,
        codec: TraceCodec,
        max_captures: u64,
        num_workers: usize,
    ) -> Result<Self, graft_dfs::FsError> {
        fs.mkdirs(root)?;
        let mut workers = Vec::with_capacity(num_workers);
        for w in 0..num_workers {
            let writer = fs.create(&worker_trace_path(root, w))?;
            workers.push(Mutex::new(Channel { writer, scratch: Vec::new() }));
        }
        let master = Mutex::new(Channel {
            writer: fs.create(&master_trace_path(root))?,
            scratch: Vec::new(),
        });
        Ok(Self {
            codec,
            max_captures,
            captures: AtomicU64::new(0),
            violations: AtomicU64::new(0),
            exceptions: AtomicU64::new(0),
            limit_hit: AtomicBool::new(false),
            workers,
            master,
            fs,
            root: root.to_string(),
            poisoned: Mutex::new(None),
        })
    }

    /// Records one captured vertex context from `worker`. Returns `false`
    /// when the capture safety net has tripped and nothing was written.
    pub fn record_vertex<T: Serialize>(&self, worker: usize, record: &T) -> bool {
        // Reserve a capture slot first so the threshold is global across
        // workers, as the paper describes.
        let slot = self.captures.fetch_add(1, Ordering::Relaxed);
        if slot >= self.max_captures {
            self.captures.fetch_sub(1, Ordering::Relaxed);
            self.limit_hit.store(true, Ordering::Relaxed);
            return false;
        }
        let mut channel = self.workers[worker].lock();
        let channel = &mut *channel;
        channel.scratch.clear();
        if let Err(e) = encode_record(self.codec, record, &mut channel.scratch) {
            self.poison(e);
            return false;
        }
        if let Err(e) = std::io::Write::write_all(&mut channel.writer, &channel.scratch) {
            self.poison(e.to_string());
            return false;
        }
        true
    }

    /// Records one captured master context.
    pub fn record_master<T: Serialize>(&self, record: &T) {
        let mut channel = self.master.lock();
        let channel = &mut *channel;
        channel.scratch.clear();
        if let Err(e) = encode_record(self.codec, record, &mut channel.scratch) {
            self.poison(e);
            return;
        }
        if let Err(e) = std::io::Write::write_all(&mut channel.writer, &channel.scratch) {
            self.poison(e.to_string());
        }
    }

    /// Counts a constraint violation.
    pub fn count_violation(&self) {
        self.violations.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a captured exception.
    pub fn count_exception(&self) {
        self.exceptions.fetch_add(1, Ordering::Relaxed);
    }

    /// Makes everything written so far visible to readers (called at
    /// superstep boundaries, like the paper's per-superstep HDFS flush).
    pub fn flush(&self) {
        for worker in &self.workers {
            if let Err(e) = worker.lock().writer.sync() {
                self.poison(e.to_string());
            }
        }
        if let Err(e) = self.master.lock().writer.sync() {
            self.poison(e.to_string());
        }
    }

    /// Final flush plus `result.json`. Called exactly once at job end.
    pub fn finalize(&self, supersteps_executed: u64, error: Option<String>) {
        self.flush();
        let error = error.or_else(|| self.poisoned.lock().clone());
        let record = JobResultRecord {
            supersteps_executed,
            error,
            captures: self.captures(),
            violations: self.violations(),
            exceptions: self.exceptions(),
            capture_limit_hit: self.limit_hit(),
        };
        let rendered = serde_json::to_vec_pretty(&record).expect("result record serializes");
        if let Err(e) = self.fs.write_all(&result_path(&self.root), &rendered) {
            self.poison(e.to_string());
        }
    }

    /// Vertex contexts captured so far.
    pub fn captures(&self) -> u64 {
        self.captures.load(Ordering::Relaxed)
    }

    /// Constraint violations recorded so far.
    pub fn violations(&self) -> u64 {
        self.violations.load(Ordering::Relaxed)
    }

    /// Exceptions recorded so far.
    pub fn exceptions(&self) -> u64 {
        self.exceptions.load(Ordering::Relaxed)
    }

    /// Whether the capture safety net has tripped.
    pub fn limit_hit(&self) -> bool {
        self.limit_hit.load(Ordering::Relaxed)
    }

    fn poison(&self, error: String) {
        let mut slot = self.poisoned.lock();
        if slot.is_none() {
            *slot = Some(error);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::decode_records;
    use graft_dfs::InMemoryFs;
    use serde::Deserialize;

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Rec {
        worker: usize,
        seq: u64,
    }

    fn sink(max: u64) -> (Arc<InMemoryFs>, TraceSink) {
        let fs = Arc::new(InMemoryFs::new());
        let sink =
            TraceSink::new(fs.clone(), "/traces/job", TraceCodec::JsonLines, max, 4).unwrap();
        (fs, sink)
    }

    #[test]
    fn per_worker_files_receive_their_records() {
        let (fs, sink) = sink(1000);
        for worker in 0..4 {
            for seq in 0..10 {
                assert!(sink.record_vertex(worker, &Rec { worker, seq }));
            }
        }
        sink.flush();
        for worker in 0..4 {
            let bytes = fs.read_all(&worker_trace_path("/traces/job", worker)).unwrap();
            let records: Vec<Rec> = decode_records(TraceCodec::JsonLines, &bytes).unwrap();
            assert_eq!(records.len(), 10);
            assert!(records.iter().all(|r| r.worker == worker));
        }
        assert_eq!(sink.captures(), 40);
    }

    #[test]
    fn capture_limit_is_global_across_workers() {
        let (_fs, sink) = sink(25);
        let mut accepted = 0;
        for seq in 0..20u64 {
            for worker in 0..4 {
                if sink.record_vertex(worker, &Rec { worker, seq }) {
                    accepted += 1;
                }
            }
        }
        assert_eq!(accepted, 25);
        assert_eq!(sink.captures(), 25);
        assert!(sink.limit_hit());
    }

    #[test]
    fn finalize_writes_result_json() {
        let (fs, sink) = sink(1000);
        sink.record_vertex(0, &Rec { worker: 0, seq: 0 });
        sink.count_violation();
        sink.count_violation();
        sink.count_exception();
        sink.finalize(7, Some("vertex 3 panicked".into()));
        let bytes = fs.read_all(&result_path("/traces/job")).unwrap();
        let record: JobResultRecord = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(record.supersteps_executed, 7);
        assert_eq!(record.captures, 1);
        assert_eq!(record.violations, 2);
        assert_eq!(record.exceptions, 1);
        assert_eq!(record.error.as_deref(), Some("vertex 3 panicked"));
        assert!(!record.capture_limit_hit);
    }

    #[test]
    fn concurrent_workers_do_not_interleave_within_a_file() {
        let (fs, sink) = sink(100_000);
        let sink = Arc::new(sink);
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let sink = Arc::clone(&sink);
                scope.spawn(move || {
                    for seq in 0..500u64 {
                        sink.record_vertex(worker, &Rec { worker, seq });
                    }
                });
            }
        });
        sink.flush();
        for worker in 0..4 {
            let bytes = fs.read_all(&worker_trace_path("/traces/job", worker)).unwrap();
            let records: Vec<Rec> = decode_records(TraceCodec::JsonLines, &bytes).unwrap();
            assert_eq!(records.len(), 500);
            // Per-worker order is preserved.
            for (i, r) in records.iter().enumerate() {
                assert_eq!(r.seq, i as u64);
            }
        }
    }
}
