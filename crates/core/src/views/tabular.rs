//! The Tabular view (paper Figure 4): one row per captured vertex, with
//! search and row expansion.

use graft_pregel::Computation;

use crate::session::{DebugSession, SearchQuery};
use crate::trace::VertexTraceOf;
use crate::views::{text_table, truncate};

/// The Tabular view of one superstep.
pub struct TabularView<'a, C: Computation> {
    session: &'a DebugSession<C>,
    superstep: u64,
    query: Option<SearchQuery>,
}

impl<'a, C: Computation> TabularView<'a, C> {
    pub(crate) fn new(session: &'a DebugSession<C>, superstep: u64) -> Self {
        Self { session, superstep, query: None }
    }

    /// The superstep this view displays.
    pub fn superstep(&self) -> u64 {
        self.superstep
    }

    /// Restricts the rows with a search query (the view's search box).
    pub fn search(mut self, query: SearchQuery) -> Self {
        self.query = Some(query);
        self
    }

    /// Steps to the next captured superstep, keeping the search.
    pub fn next(&self) -> Option<TabularView<'a, C>> {
        self.session.next_superstep(self.superstep).map(|s| TabularView {
            session: self.session,
            superstep: s,
            query: self.query.clone(),
        })
    }

    /// Steps to the previous captured superstep, keeping the search.
    pub fn prev(&self) -> Option<TabularView<'a, C>> {
        self.session.prev_superstep(self.superstep).map(|s| TabularView {
            session: self.session,
            superstep: s,
            query: self.query.clone(),
        })
    }

    /// The visible rows.
    pub fn rows(&self) -> Vec<&VertexTraceOf<C>> {
        let all = self.session.captured_at(self.superstep);
        match &self.query {
            Some(query) => all.iter().filter(|t| query.matches::<C>(t)).collect(),
            None => all.iter().collect(),
        }
    }

    /// Renders the summary table.
    pub fn to_text(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows()
            .iter()
            .map(|t| {
                vec![
                    t.vertex.to_string(),
                    truncate(&format!("{:?}", t.value_before), 24),
                    truncate(&format!("{:?}", t.value_after), 24),
                    t.incoming.len().to_string(),
                    t.outgoing.len().to_string(),
                    if t.halted_after { "halted" } else { "active" }.to_string(),
                    t.reasons.iter().map(|r| format!("{r:?}")).collect::<Vec<_>>().join(","),
                ]
            })
            .collect();
        let mut out = format!(
            "=== Tabular view — superstep {} ({} row(s)) ===\n",
            self.superstep,
            rows.len()
        );
        out.push_str(&text_table(
            &["vertex", "value before", "value after", "in", "out", "state", "captured because"],
            &rows,
        ));
        out
    }

    /// Renders the expanded context of one row (clicking a row in the
    /// GUI).
    pub fn expand(&self, vertex: C::Id) -> Option<String> {
        let trace = self.session.vertex_at(vertex, self.superstep)?;
        let mut out = String::new();
        out.push_str(&format!("vertex {} — superstep {}\n", trace.vertex, trace.superstep));
        out.push_str(&format!("  value before : {:?}\n", trace.value_before));
        out.push_str(&format!("  value after  : {:?}\n", trace.value_after));
        out.push_str(&format!(
            "  state        : {}\n",
            if trace.halted_after { "halted" } else { "active" }
        ));
        out.push_str(&format!("  edges ({}):\n", trace.edges.len()));
        for (target, value) in &trace.edges {
            let rendered = format!("{value:?}");
            if rendered == "()" {
                out.push_str(&format!("    -> {target}\n"));
            } else {
                out.push_str(&format!("    -> {target} [{rendered}]\n"));
            }
        }
        out.push_str(&format!("  incoming ({}):\n", trace.incoming.len()));
        for message in &trace.incoming {
            out.push_str(&format!("    {message:?}\n"));
        }
        out.push_str(&format!("  outgoing ({}):\n", trace.outgoing.len()));
        for (target, message) in &trace.outgoing {
            out.push_str(&format!("    -> {target}: {message:?}\n"));
        }
        if !trace.aggregators.is_empty() {
            out.push_str("  aggregators:\n");
            for (name, value) in &trace.aggregators {
                out.push_str(&format!("    {name} = {value}\n"));
            }
        }
        out.push_str(&format!(
            "  global       : {} vertices, {} edges\n",
            trace.global.num_vertices, trace.global.num_edges
        ));
        if !trace.violations.is_empty() {
            out.push_str("  violations:\n");
            for violation in &trace.violations {
                match &violation.target {
                    Some(target) => out.push_str(&format!(
                        "    {:?} -> {target}: {}\n",
                        violation.kind, violation.detail
                    )),
                    None => {
                        out.push_str(&format!("    {:?}: {}\n", violation.kind, violation.detail))
                    }
                }
            }
        }
        if let Some(exception) = &trace.exception {
            out.push_str(&format!("  exception    : {}\n", exception.message));
        }
        Some(out)
    }
}
