//! The Node-link view (paper Figure 3).

use graft_pregel::hash::{FxHashMap, FxHashSet};
use graft_pregel::Computation;

use crate::session::{DebugSession, Indicators};
use crate::views::{html_escape, truncate};

/// One node of the diagram.
#[derive(Clone, Debug)]
pub struct Node {
    /// The vertex id, rendered.
    pub id: String,
    /// The vertex value after compute, rendered (`None` for stub
    /// neighbors, which display only their id, as in the paper).
    pub value: Option<String>,
    /// Whether the vertex is active (inactive nodes are dimmed).
    pub active: bool,
    /// Whether the vertex was captured (stubs are drawn small).
    pub captured: bool,
    /// Whether the vertex violated a constraint or raised an exception
    /// this superstep (drawn highlighted).
    pub flagged: bool,
}

/// One link of the diagram.
#[derive(Clone, Debug)]
pub struct Link {
    /// Source vertex id, rendered.
    pub from: String,
    /// Target vertex id, rendered.
    pub to: String,
    /// Edge value, rendered; empty for `()`-valued edges.
    pub label: String,
}

/// The Node-link view of one superstep.
pub struct NodeLinkView<'a, C: Computation> {
    session: &'a DebugSession<C>,
    superstep: u64,
}

impl<'a, C: Computation> NodeLinkView<'a, C> {
    pub(crate) fn new(session: &'a DebugSession<C>, superstep: u64) -> Self {
        Self { session, superstep }
    }

    /// The superstep this view displays.
    pub fn superstep(&self) -> u64 {
        self.superstep
    }

    /// The view for the next captured superstep, if any (the "Next
    /// superstep" button).
    pub fn next(&self) -> Option<NodeLinkView<'a, C>> {
        self.session.next_superstep(self.superstep).map(|s| NodeLinkView::new(self.session, s))
    }

    /// The view for the previous captured superstep, if any.
    pub fn prev(&self) -> Option<NodeLinkView<'a, C>> {
        self.session.prev_superstep(self.superstep).map(|s| NodeLinkView::new(self.session, s))
    }

    /// The M/V/E indicator boxes.
    pub fn indicators(&self) -> Indicators {
        self.session.indicators(self.superstep)
    }

    /// Computes the node and link lists: captured vertices in full,
    /// their uncaptured neighbors as stubs.
    pub fn layout(&self) -> (Vec<Node>, Vec<Link>) {
        let traces = self.session.captured_at(self.superstep);
        let captured: FxHashSet<String> = traces.iter().map(|t| t.vertex.to_string()).collect();
        let mut nodes: FxHashMap<String, Node> = FxHashMap::default();
        let mut links = Vec::new();

        for trace in traces {
            let id = trace.vertex.to_string();
            let flagged = !trace.violations.is_empty() || trace.exception.is_some();
            nodes.insert(
                id.clone(),
                Node {
                    id: id.clone(),
                    value: Some(format!("{:?}", trace.value_after)),
                    active: !trace.halted_after,
                    captured: true,
                    flagged,
                },
            );
            for (target, value) in &trace.edges {
                let target_id = target.to_string();
                if !captured.contains(&target_id) {
                    nodes.entry(target_id.clone()).or_insert(Node {
                        id: target_id.clone(),
                        value: None,
                        active: true,
                        captured: false,
                        flagged: false,
                    });
                }
                let label = format!("{value:?}");
                links.push(Link {
                    from: id.clone(),
                    to: target_id,
                    label: if label == "()" { String::new() } else { label },
                });
            }
        }

        let mut nodes: Vec<Node> = nodes.into_values().collect();
        nodes.sort_by(|a, b| (!a.captured, &a.id).cmp(&(!b.captured, &b.id)));
        links.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
        (nodes, links)
    }

    /// Renders the view as plain text for terminals.
    pub fn to_text(&self) -> String {
        let (nodes, links) = self.layout();
        let ind = self.indicators();
        let mut out = String::new();
        out.push_str(&format!("=== Node-link view — superstep {} ===\n", self.superstep));
        out.push_str(&format!(
            "[M:{}] [V:{}] [E:{}]\n",
            if ind.message_violation { "RED" } else { "green" },
            if ind.value_violation { "RED" } else { "green" },
            if ind.exception { "RED" } else { "green" },
        ));
        if let Some(trace) = self.session.captured_at(self.superstep).first() {
            out.push_str(&format!(
                "global: superstep={} vertices={} edges={}\n",
                trace.global.superstep, trace.global.num_vertices, trace.global.num_edges
            ));
            if !trace.aggregators.is_empty() {
                out.push_str("aggregators:");
                for (name, value) in &trace.aggregators {
                    out.push_str(&format!(" {name}={value}"));
                }
                out.push('\n');
            }
        }
        out.push_str("nodes:\n");
        for node in &nodes {
            let marker = if !node.captured {
                "(stub)"
            } else if node.flagged {
                "(FLAGGED)"
            } else if node.active {
                "(active)"
            } else {
                "(inactive)"
            };
            match &node.value {
                Some(value) => {
                    out.push_str(&format!("  {} = {} {}\n", node.id, truncate(value, 60), marker))
                }
                None => out.push_str(&format!("  {} {}\n", node.id, marker)),
            }
        }
        out.push_str("links:\n");
        for link in &links {
            if link.label.is_empty() {
                out.push_str(&format!("  {} -> {}\n", link.from, link.to));
            } else {
                out.push_str(&format!("  {} -> {} [{}]\n", link.from, link.to, link.label));
            }
        }
        out
    }

    /// Renders the view as Graphviz DOT.
    pub fn to_dot(&self) -> String {
        let (nodes, links) = self.layout();
        let mut out = String::new();
        out.push_str(&format!("digraph superstep_{} {{\n", self.superstep));
        out.push_str("  rankdir=LR;\n");
        for node in &nodes {
            let label = match &node.value {
                Some(value) => format!("{}\\n{}", node.id, truncate(value, 40).replace('"', "'")),
                None => node.id.clone(),
            };
            let mut attrs = vec![format!("label=\"{label}\"")];
            if !node.captured {
                attrs.push("shape=point".into());
                attrs.push("width=0.15".into());
            } else {
                attrs.push("shape=ellipse".into());
                attrs.push("style=filled".into());
                let fill = if node.flagged {
                    "lightcoral"
                } else if node.active {
                    "palegreen"
                } else {
                    "lightgray" // dimmed: inactive in this superstep
                };
                attrs.push(format!("fillcolor={fill}"));
            }
            out.push_str(&format!("  \"{}\" [{}];\n", node.id, attrs.join(", ")));
        }
        for link in &links {
            if link.label.is_empty() {
                out.push_str(&format!("  \"{}\" -> \"{}\";\n", link.from, link.to));
            } else {
                out.push_str(&format!(
                    "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
                    link.from,
                    link.to,
                    link.label.replace('"', "'")
                ));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders a self-contained HTML page with an inline SVG circular
    /// layout — the browser-GUI stand-in.
    pub fn to_html(&self) -> String {
        let (nodes, links) = self.layout();
        let ind = self.indicators();
        let n = nodes.len().max(1);
        let radius = 200.0 + 12.0 * (n as f64).sqrt();
        let size = (radius * 2.0 + 120.0) as i64;
        let center = size as f64 / 2.0;

        let mut positions: FxHashMap<&str, (f64, f64)> = FxHashMap::default();
        for (i, node) in nodes.iter().enumerate() {
            let angle = std::f64::consts::TAU * i as f64 / n as f64;
            positions
                .insert(&node.id, (center + radius * angle.cos(), center + radius * angle.sin()));
        }

        let mut svg = String::new();
        for link in &links {
            let (Some(&(x1, y1)), Some(&(x2, y2))) =
                (positions.get(link.from.as_str()), positions.get(link.to.as_str()))
            else {
                continue;
            };
            svg.push_str(&format!(
                "<line x1='{x1:.1}' y1='{y1:.1}' x2='{x2:.1}' y2='{y2:.1}' \
                 stroke='#999' stroke-width='1'/>\n"
            ));
            if !link.label.is_empty() {
                svg.push_str(&format!(
                    "<text x='{:.1}' y='{:.1}' font-size='9' fill='#666'>{}</text>\n",
                    (x1 + x2) / 2.0,
                    (y1 + y2) / 2.0,
                    html_escape(&link.label)
                ));
            }
        }
        for node in &nodes {
            let &(x, y) = positions.get(node.id.as_str()).expect("every node is positioned");
            if node.captured {
                let fill = if node.flagged {
                    "#f08080"
                } else if node.active {
                    "#98fb98"
                } else {
                    "#d3d3d3"
                };
                let opacity = if node.active { "1.0" } else { "0.5" };
                svg.push_str(&format!(
                    "<circle cx='{x:.1}' cy='{y:.1}' r='22' fill='{fill}' \
                     stroke='#333' opacity='{opacity}'/>\n"
                ));
                svg.push_str(&format!(
                    "<text x='{x:.1}' y='{:.1}' text-anchor='middle' font-size='11'>{}</text>\n",
                    y - 2.0,
                    html_escape(&node.id)
                ));
                if let Some(value) = &node.value {
                    svg.push_str(&format!(
                        "<text x='{x:.1}' y='{:.1}' text-anchor='middle' font-size='8' \
                         fill='#333'>{}</text>\n",
                        y + 9.0,
                        html_escape(&truncate(value, 18))
                    ));
                }
            } else {
                svg.push_str(&format!(
                    "<circle cx='{x:.1}' cy='{y:.1}' r='4' fill='#bbb' stroke='#888'/>\n"
                ));
                svg.push_str(&format!(
                    "<text x='{x:.1}' y='{:.1}' text-anchor='middle' font-size='8' \
                     fill='#888'>{}</text>\n",
                    y - 8.0,
                    html_escape(&node.id)
                ));
            }
        }

        let indicator = |red: bool, letter: &str| {
            format!(
                "<span style='display:inline-block;width:1.6em;text-align:center;\
                 background:{};color:white;border-radius:3px;margin-right:4px'>{letter}</span>",
                if red { "#c0392b" } else { "#27ae60" }
            )
        };

        let mut aggregators = String::new();
        if let Some(trace) = self.session.captured_at(self.superstep).first() {
            aggregators.push_str(&format!(
                "<p>superstep {} — {} vertices, {} edges</p>",
                trace.global.superstep, trace.global.num_vertices, trace.global.num_edges
            ));
            if !trace.aggregators.is_empty() {
                aggregators.push_str("<ul>");
                for (name, value) in &trace.aggregators {
                    aggregators.push_str(&format!(
                        "<li><code>{}</code> = {}</li>",
                        html_escape(name),
                        html_escape(&value.to_string())
                    ));
                }
                aggregators.push_str("</ul>");
            }
        }

        format!(
            "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>\
             <title>Graft — superstep {ss}</title></head>\n\
             <body style='font-family:sans-serif'>\n\
             <h2>Node-link view — superstep {ss}</h2>\n\
             <div>{m}{v}{e}</div>\n\
             <div style='float:right;max-width:320px'>{aggregators}</div>\n\
             <svg width='{size}' height='{size}' viewBox='0 0 {size} {size}'>\n{svg}</svg>\n\
             </body></html>\n",
            ss = self.superstep,
            m = indicator(ind.message_violation, "M"),
            v = indicator(ind.value_violation, "V"),
            e = indicator(ind.exception, "E"),
        )
    }
}
