//! The Violations and Exceptions view (paper Figure 5).

use graft_pregel::Computation;

use crate::session::DebugSession;
use crate::views::{text_table, truncate};

/// One row of the view.
#[derive(Clone, Debug)]
pub struct ViolationRow {
    /// The superstep the violation/exception happened in.
    pub superstep: u64,
    /// The offending vertex, rendered.
    pub vertex: String,
    /// `"message"`, `"vertex value"`, or `"exception"`.
    pub kind: &'static str,
    /// The offending value / the exception message.
    pub detail: String,
    /// For message violations, the target vertex.
    pub target: Option<String>,
    /// For exceptions, the captured stack trace.
    pub backtrace: Option<String>,
}

/// Tabular view of every constraint violation and exception in the run.
pub struct ViolationsView<'a, C: Computation> {
    session: &'a DebugSession<C>,
}

impl<'a, C: Computation> ViolationsView<'a, C> {
    pub(crate) fn new(session: &'a DebugSession<C>) -> Self {
        Self { session }
    }

    /// Collects every violation/exception row, ordered by superstep then
    /// vertex.
    pub fn rows(&self) -> Vec<ViolationRow> {
        let mut rows = Vec::new();
        for superstep in self.session.supersteps() {
            for trace in self.session.captured_at(superstep) {
                for violation in &trace.violations {
                    rows.push(ViolationRow {
                        superstep,
                        vertex: trace.vertex.to_string(),
                        kind: match violation.kind {
                            crate::trace::ViolationKind::Message => "message",
                            crate::trace::ViolationKind::VertexValue => "vertex value",
                        },
                        detail: violation.detail.clone(),
                        target: violation.target.clone(),
                        backtrace: None,
                    });
                }
                if let Some(exception) = &trace.exception {
                    rows.push(ViolationRow {
                        superstep,
                        vertex: trace.vertex.to_string(),
                        kind: "exception",
                        detail: exception.message.clone(),
                        target: None,
                        backtrace: exception.backtrace.clone(),
                    });
                }
            }
        }
        rows
    }

    /// Renders the view as a text table.
    pub fn to_text(&self) -> String {
        render_rows("Violations and Exceptions view", &self.rows())
    }
}

/// Renders violation rows in the paper's tabular style. Public so other
/// producers of [`ViolationRow`]s — notably `graft-analyzer`'s findings —
/// share the exact rendering of the Violations and Exceptions view.
pub fn render_rows(title: &str, rows: &[ViolationRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.superstep.to_string(),
                row.vertex.clone(),
                row.kind.to_string(),
                truncate(&row.detail, 48),
                row.target.clone().unwrap_or_default(),
            ]
        })
        .collect();
    let mut out = format!("=== {title} ({} row(s)) ===\n", table_rows.len());
    out.push_str(&text_table(&["superstep", "vertex", "kind", "detail", "target"], &table_rows));
    for row in rows.iter().filter(|r| r.backtrace.is_some()) {
        out.push_str(&format!(
            "\nstack trace for vertex {} (superstep {}):\n{}\n",
            row.vertex,
            row.superstep,
            row.backtrace.as_deref().unwrap_or_default()
        ));
    }
    out
}
