//! JSON serialization of the three views over type-erased traces — the
//! single source of truth shared by `graft-cli --format json` and every
//! `graft-server` endpoint, so the bytes a script scrapes from the CLI
//! are exactly the bytes the debug server sends over HTTP.
//!
//! Every renderer returns a serde struct; [`to_line`] turns it into the
//! canonical wire form — compact JSON, declaration-order fields, one
//! trailing newline. Both consumers must emit that string untouched
//! (`print!` in the CLI, the response body on the server); the
//! byte-equality is asserted in `cli_e2e.rs` and the server tests.

use serde::Serialize;

use crate::session::Indicators;
use crate::trace::{JobMeta, JobResultRecord};
use crate::untyped::{JobSummary, UntypedSession, UntypedTrace};

/// Renders a view value in the canonical wire form: compact JSON plus a
/// trailing newline.
pub fn to_line<T: Serialize>(value: &T) -> String {
    let mut line = serde_json::to_string(value).expect("view structs serialize infallibly");
    line.push('\n');
    line
}

/// One job in the `/jobs` listing / `graft-cli info`.
#[derive(Clone, Debug, Serialize)]
pub struct JobJson {
    /// The job id (its directory name under the trace root).
    pub id: String,
    /// Computation name from the job metadata.
    pub computation: String,
    /// Master computation name, if any.
    pub master: Option<String>,
    /// Workers the job ran with.
    pub workers: usize,
    /// Supersteps that captured at least one context.
    pub supersteps: Vec<u64>,
    /// Total captured contexts.
    pub total_captures: usize,
    /// Terminal status, if the job finished.
    pub result: Option<ResultJson>,
}

/// Terminal job status.
#[derive(Clone, Debug, Serialize)]
pub struct ResultJson {
    /// Supersteps fully executed.
    pub supersteps_executed: u64,
    /// `None` on success, the engine error text otherwise.
    pub error: Option<String>,
    /// Total vertex contexts captured.
    pub captures: u64,
    /// Total constraint violations recorded.
    pub violations: u64,
    /// Total exceptions recorded.
    pub exceptions: u64,
    /// Whether the capture safety net tripped.
    pub capture_limit_hit: bool,
}

/// The M/V/E indicator boxes as JSON.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct IndicatorsJson {
    /// "M" box red: a message constraint was violated.
    pub message_violation: bool,
    /// "V" box red: a vertex-value constraint was violated.
    pub value_violation: bool,
    /// "E" box red: an exception was raised.
    pub exception: bool,
}

impl From<Indicators> for IndicatorsJson {
    fn from(ind: Indicators) -> Self {
        Self {
            message_violation: ind.message_violation,
            value_violation: ind.value_violation,
            exception: ind.exception,
        }
    }
}

/// One superstep in the `/jobs/{id}/supersteps` listing.
#[derive(Clone, Debug, Serialize)]
pub struct SuperstepJson {
    /// The superstep number.
    pub superstep: u64,
    /// Captured contexts in it.
    pub rows: usize,
    /// Its M/V/E indicator state.
    pub indicators: IndicatorsJson,
}

/// The superstep listing of one job.
#[derive(Clone, Debug, Serialize)]
pub struct SuperstepsJson {
    /// Computation name, for display.
    pub computation: String,
    /// One entry per captured superstep, ascending.
    pub supersteps: Vec<SuperstepJson>,
}

/// One node of the node-link view (paper Figure 3).
#[derive(Clone, Debug, Serialize)]
pub struct NodeJson {
    /// The vertex id, rendered.
    pub id: String,
    /// The vertex value after compute (`None` for stub neighbors).
    pub value: Option<String>,
    /// Whether the vertex is active (inactive nodes are dimmed).
    pub active: bool,
    /// Whether the vertex was captured (stubs are drawn small).
    pub captured: bool,
    /// Whether the vertex violated a constraint or raised an exception.
    pub flagged: bool,
}

/// One link of the node-link view.
#[derive(Clone, Debug, Serialize)]
pub struct LinkJson {
    /// Source vertex id, rendered.
    pub from: String,
    /// Target vertex id, rendered.
    pub to: String,
    /// Edge value, rendered; empty for unit-valued edges.
    pub label: String,
}

/// The default global data shown in the view's corner.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct GlobalJson {
    /// The superstep the vertices observed.
    pub superstep: u64,
    /// Total vertices in the graph.
    pub num_vertices: u64,
    /// Total edges in the graph.
    pub num_edges: u64,
}

/// The node-link view of one superstep.
#[derive(Clone, Debug, Serialize)]
pub struct NodeLinkJson {
    /// The displayed superstep.
    pub superstep: u64,
    /// The M/V/E indicator boxes.
    pub indicators: IndicatorsJson,
    /// Global data, if any context was captured.
    pub global: Option<GlobalJson>,
    /// Aggregator `(name, rendered value)` pairs of the first capture.
    pub aggregators: Vec<(String, String)>,
    /// Captured vertices in full, uncaptured neighbors as stubs; sorted
    /// captured-first, then by id.
    pub nodes: Vec<NodeJson>,
    /// Links, sorted by `(from, to)`.
    pub links: Vec<LinkJson>,
}

/// One row of the tabular view (paper Figure 4).
#[derive(Clone, Debug, Serialize)]
pub struct RowJson {
    /// The vertex id, rendered.
    pub vertex: String,
    /// The value at compute entry, rendered.
    pub value_before: String,
    /// The value after compute, rendered.
    pub value_after: String,
    /// Incoming message count.
    pub incoming: usize,
    /// Outgoing message count.
    pub outgoing: usize,
    /// `"halted"` or `"active"`.
    pub state: String,
    /// Capture reasons, rendered.
    pub reasons: Vec<String>,
}

/// One page of the tabular view, with server-side search.
#[derive(Clone, Debug, Serialize)]
pub struct TabularJson {
    /// The displayed superstep.
    pub superstep: u64,
    /// The search query applied, if any.
    pub query: Option<String>,
    /// The 1-based page number.
    pub page: usize,
    /// Rows per page.
    pub per_page: usize,
    /// Captured contexts in the superstep, pre-search.
    pub total_rows: usize,
    /// Rows matching the query (equals `total_rows` without one).
    pub matching_rows: usize,
    /// Pages the matching rows span (at least 1).
    pub total_pages: usize,
    /// The rows of this page, in vertex order.
    pub rows: Vec<RowJson>,
}

/// One row of the violations view (paper Figure 5).
#[derive(Clone, Debug, Serialize)]
pub struct ViolationJson {
    /// The superstep the violation/exception happened in.
    pub superstep: u64,
    /// The offending vertex, rendered.
    pub vertex: String,
    /// `"message"`, `"vertex value"`, or `"exception"`.
    pub kind: String,
    /// The offending value / the exception message.
    pub detail: String,
    /// For message violations, the target vertex.
    pub target: Option<String>,
    /// For exceptions, the captured stack trace.
    pub backtrace: Option<String>,
}

/// The violations view, optionally restricted to one superstep.
#[derive(Clone, Debug, Serialize)]
pub struct ViolationsJson {
    /// The superstep filter, if any.
    pub superstep: Option<u64>,
    /// Violation/exception rows, ordered by superstep then vertex.
    pub rows: Vec<ViolationJson>,
}

/// The `/jobs` listing / `graft-cli info` document for one job.
pub fn job_json(id: &str, session: &UntypedSession) -> JobJson {
    job_doc(id, session.meta(), session.supersteps(), session.total_captures(), session.result())
}

/// [`job_json`] built from a listing-only [`JobSummary`] instead of a
/// fully parsed session — same document, byte for byte (asserted in the
/// server tests), without paying for a row index.
pub fn job_summary_json(id: &str, summary: &JobSummary) -> JobJson {
    job_doc(id, summary.meta(), summary.supersteps(), summary.total_captures(), summary.result())
}

fn job_doc(
    id: &str,
    meta: &JobMeta,
    supersteps: Vec<u64>,
    total_captures: usize,
    result: Option<&JobResultRecord>,
) -> JobJson {
    JobJson {
        id: id.to_string(),
        computation: meta.computation.clone(),
        master: meta.master.clone(),
        workers: meta.num_workers,
        supersteps,
        total_captures,
        result: result.map(|r| ResultJson {
            supersteps_executed: r.supersteps_executed,
            error: r.error.clone(),
            captures: r.captures,
            violations: r.violations,
            exceptions: r.exceptions,
            capture_limit_hit: r.capture_limit_hit,
        }),
    }
}

/// The `/jobs/{id}/supersteps` document.
pub fn supersteps_json(session: &UntypedSession) -> SuperstepsJson {
    SuperstepsJson {
        computation: session.meta().computation.clone(),
        supersteps: session
            .supersteps()
            .into_iter()
            .map(|ss| SuperstepJson {
                superstep: ss,
                rows: session.count_at(ss),
                indicators: session.indicators(ss).into(),
            })
            .collect(),
    }
}

/// The node-link view of one superstep: captured vertices in full, their
/// uncaptured neighbors as stubs — the type-erased twin of
/// `NodeLinkView::layout`, with the same ordering.
pub fn node_link_json(session: &UntypedSession, superstep: u64) -> NodeLinkJson {
    use std::collections::{BTreeMap, BTreeSet};
    let mut captured: BTreeSet<String> = BTreeSet::new();
    for trace in session.traces_at(superstep) {
        captured.insert(trace.vertex());
    }
    let mut nodes: BTreeMap<String, NodeJson> = BTreeMap::new();
    let mut links = Vec::new();
    let mut global = None;
    let mut aggregators = Vec::new();
    for (i, trace) in session.traces_at(superstep).enumerate() {
        if i == 0 {
            global = trace.global().map(|(superstep, num_vertices, num_edges)| GlobalJson {
                superstep,
                num_vertices,
                num_edges,
            });
            aggregators = trace.aggregators();
        }
        let id = trace.vertex();
        let flagged = !trace.violations().is_empty() || trace.exception().is_some();
        nodes.insert(
            id.clone(),
            NodeJson {
                id: id.clone(),
                value: Some(trace.value_after()),
                active: !trace.halted_after(),
                captured: true,
                flagged,
            },
        );
        for (target, value) in trace.edges() {
            if !captured.contains(&target) {
                nodes.entry(target.clone()).or_insert_with(|| NodeJson {
                    id: target.clone(),
                    value: None,
                    active: true,
                    captured: false,
                    flagged: false,
                });
            }
            // Unit edge values arrive as JSON null ("null"); the typed
            // renderer suppresses its "()" the same way.
            let label = if value == "null" || value == "()" { String::new() } else { value };
            links.push(LinkJson { from: id.clone(), to: target, label });
        }
    }
    let mut nodes: Vec<NodeJson> = nodes.into_values().collect();
    nodes.sort_by(|a, b| (!a.captured, &a.id).cmp(&(!b.captured, &b.id)));
    links.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
    NodeLinkJson {
        superstep,
        indicators: session.indicators(superstep).into(),
        global,
        aggregators,
        nodes,
        links,
    }
}

fn row_json(trace: &UntypedTrace) -> RowJson {
    RowJson {
        vertex: trace.vertex(),
        value_before: trace.value_before(),
        value_after: trace.value_after(),
        incoming: trace.incoming_count(),
        outgoing: trace.outgoing_count(),
        state: if trace.halted_after() { "halted" } else { "active" }.to_string(),
        reasons: trace.reasons(),
    }
}

fn matches_query(trace: &UntypedTrace, query: &str) -> bool {
    trace.vertex().contains(query)
        || trace.value_before().contains(query)
        || trace.value_after().contains(query)
        || trace.reasons().iter().any(|r| r.contains(query))
}

/// Upper bound on `per_page`: one response parses at most this many rows,
/// no matter what the query string asks for.
pub const MAX_PER_PAGE: usize = 1_000;

/// One page of the tabular view with server-side search. `page` is
/// 1-based; without a query only the page's rows are parsed (the
/// streaming fast path of [`UntypedSession::rows_window`]).
pub fn tabular_json(
    session: &UntypedSession,
    superstep: u64,
    query: Option<&str>,
    page: usize,
    per_page: usize,
) -> TabularJson {
    let per_page = per_page.clamp(1, MAX_PER_PAGE);
    let page = page.max(1);
    let total_rows = session.count_at(superstep);
    // Both parameters come straight off the URL; a saturating offset turns
    // an absurd page into an empty one instead of overflowing.
    let offset = page.saturating_sub(1).saturating_mul(per_page);
    let (matching_rows, rows) = match query {
        None | Some("") => {
            let rows = session.rows_window(superstep, offset, per_page);
            (total_rows, rows.iter().map(row_json).collect())
        }
        Some(q) => {
            let mut matching = 0usize;
            let mut rows = Vec::new();
            for trace in session.traces_at(superstep).filter(|t| matches_query(t, q)) {
                if matching >= offset && rows.len() < per_page {
                    rows.push(row_json(&trace));
                }
                matching += 1;
            }
            (matching, rows)
        }
    };
    TabularJson {
        superstep,
        query: query.filter(|q| !q.is_empty()).map(str::to_string),
        page,
        per_page,
        total_rows,
        matching_rows,
        total_pages: matching_rows.div_ceil(per_page).max(1),
        rows,
    }
}

/// The violations view, optionally restricted to one superstep. Kind
/// names match the typed `ViolationRow` ones: `"message"`,
/// `"vertex value"`, `"exception"`.
pub fn violations_json(session: &UntypedSession, superstep: Option<u64>) -> ViolationsJson {
    let supersteps: Vec<u64> = match superstep {
        Some(ss) => vec![ss],
        None => session.supersteps(),
    };
    let mut rows = Vec::new();
    for ss in supersteps {
        for trace in session.traces_at(ss) {
            for (kind, detail, target) in trace.violations() {
                rows.push(ViolationJson {
                    superstep: ss,
                    vertex: trace.vertex(),
                    kind: match kind.as_str() {
                        "Message" => "message".to_string(),
                        "VertexValue" => "vertex value".to_string(),
                        other => other.to_ascii_lowercase(),
                    },
                    detail,
                    target,
                    backtrace: None,
                });
            }
            if let Some((message, backtrace)) = trace.exception() {
                rows.push(ViolationJson {
                    superstep: ss,
                    vertex: trace.vertex(),
                    kind: "exception".to_string(),
                    detail: message,
                    target: None,
                    backtrace,
                });
            }
        }
    }
    ViolationsJson { superstep, rows }
}

/// The reproducer source for one captured context, if it exists — the
/// `/jobs/{id}/repro/{vertex}/{ss}` download.
pub fn repro_source(session: &UntypedSession, vertex: &str, superstep: u64) -> Option<String> {
    session
        .vertex_at(superstep, vertex)
        .map(|trace| crate::reproduce::untyped_test_source(&trace, session.meta()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::premade;
    use crate::{DebugConfig, GraftRunner};
    use graft_pregel::{Computation, ContextOf, VertexHandleOf};
    use std::sync::Arc;

    struct Failing;
    impl Computation for Failing {
        type Id = u64;
        type VValue = i64;
        type EValue = ();
        type Message = i64;
        fn compute(
            &self,
            vertex: &mut VertexHandleOf<'_, Self>,
            _messages: &[i64],
            ctx: &mut ContextOf<'_, Self>,
        ) {
            if ctx.superstep() == 1 && vertex.id() == 2 {
                panic!("vertex 2 exploded");
            }
            vertex.set_value(*vertex.value() + 1);
            if ctx.superstep() < 2 {
                ctx.send_message_to_all_edges(vertex, *vertex.value());
            } else {
                vertex.vote_to_halt();
            }
        }
    }

    fn session() -> UntypedSession {
        let config = DebugConfig::<Failing>::builder()
            .capture_all_active(true)
            .message_constraint(|m, _, _, _| *m < 2)
            .build();
        let run = GraftRunner::new(Failing, config)
            .num_workers(2)
            .run(premade::cycle(6, 0i64), "/t/json-views")
            .unwrap();
        UntypedSession::open(run.fs().clone(), "/t/json-views").unwrap()
    }

    #[test]
    fn documents_are_compact_single_lines() {
        let s = session();
        for line in [
            to_line(&job_json("json-views", &s)),
            to_line(&supersteps_json(&s)),
            to_line(&node_link_json(&s, 0)),
            to_line(&tabular_json(&s, 0, None, 1, 3)),
            to_line(&violations_json(&s, None)),
        ] {
            assert!(line.ends_with('\n'));
            assert_eq!(line.matches('\n').count(), 1, "one trailing newline only");
            serde_json::from_str::<serde_json::Value>(line.trim_end()).expect("valid JSON");
        }
    }

    #[test]
    fn node_link_marks_flags_and_unit_edges() {
        let s = session();
        let view = node_link_json(&s, 1);
        let exploded = view.nodes.iter().find(|n| n.id == "2").expect("vertex 2 present");
        assert!(exploded.flagged, "exception flags the node");
        assert!(view.links.iter().all(|l| l.label.is_empty()), "unit edges have no label");
        assert!(view.indicators.exception);
        assert!(view.global.is_some());
    }

    #[test]
    fn tabular_search_and_pagination_agree_with_full_listing() {
        let s = session();
        let full = tabular_json(&s, 0, None, 1, 100);
        assert_eq!(full.total_rows, 6);
        assert_eq!(full.matching_rows, 6);
        assert_eq!(full.rows.len(), 6);

        let page2 = tabular_json(&s, 0, None, 2, 4);
        assert_eq!(page2.rows.len(), 2);
        assert_eq!(page2.total_pages, 2);
        assert_eq!(
            page2.rows.iter().map(|r| r.vertex.clone()).collect::<Vec<_>>(),
            full.rows[4..].iter().map(|r| r.vertex.clone()).collect::<Vec<_>>(),
        );

        let searched = tabular_json(&s, 0, Some("5"), 1, 100);
        assert!(searched.matching_rows < full.matching_rows);
        assert!(searched.rows.iter().all(|r| {
            r.vertex.contains('5') || r.value_before.contains('5') || r.value_after.contains('5')
        }));
    }

    #[test]
    fn tabular_survives_hostile_page_and_per_page() {
        let s = session();
        // page/per_page come off the URL unchecked; the extremes must not
        // overflow the offset computation — just produce an empty page.
        let wild = tabular_json(&s, 0, None, usize::MAX, usize::MAX);
        assert!(wild.rows.is_empty());
        assert_eq!(wild.per_page, MAX_PER_PAGE, "per_page is clamped");
        let wild_search = tabular_json(&s, 0, Some("5"), usize::MAX, 2);
        assert!(wild_search.rows.is_empty());
        assert_eq!(tabular_json(&s, 0, None, 1, usize::MAX).rows.len(), 6);
    }

    #[test]
    fn violations_include_exception_backtrace_rows() {
        let s = session();
        let all = violations_json(&s, None);
        assert!(all.rows.iter().any(|r| r.kind == "exception" && r.vertex == "2"));
        assert!(all.rows.iter().any(|r| r.kind == "message"));
        let only_ss1 = violations_json(&s, Some(1));
        assert!(only_ss1.rows.iter().all(|r| r.superstep == 1));
    }

    #[test]
    fn repro_source_renders_for_captured_vertices_only() {
        let s = session();
        let source = repro_source(&s, "1", 0).expect("vertex 1 captured in superstep 0");
        assert!(source.contains("reproduce_vertex_1_superstep_0"));
        assert!(source.contains("VertexTestHarness"));
        assert!(repro_source(&s, "99", 0).is_none());
    }

    #[test]
    fn untyped_session_is_shareable_across_threads() {
        // The server keeps parsed sessions in an LRU shared by its worker
        // pool; this fails to compile if UntypedSession loses Send + Sync.
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let s = Arc::new(session());
        assert_send_sync(&s);
    }
}
