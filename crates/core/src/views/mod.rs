//! The Graft "GUI": renderers for the three views of the paper's
//! Section 3.2, targeting text (for terminals and tests), Graphviz DOT,
//! and self-contained static HTML.
//!
//! * [`node_link::NodeLinkView`] — Figure 3: captured vertices as a
//!   node-link diagram, inactive vertices dimmed, uncaptured neighbors as
//!   small stub nodes, M/V/E indicator boxes, aggregators and global data
//!   in the corner.
//! * [`tabular::TabularView`] — Figure 4: one row per captured vertex,
//!   expandable to the full context, with search.
//! * [`violations::ViolationsView`] — Figure 5: constraint violations and
//!   exceptions with messages and stack traces.

//! * [`json`] — the JSON serialization of all three views shared by
//!   `graft-cli --format json` and the `graft-server` endpoints.

pub mod json;
pub mod node_link;
pub mod tabular;
pub mod violations;

/// Escapes text for embedding into HTML.
pub(crate) fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            other => out.push(other),
        }
    }
    out
}

/// Truncates a rendered value for table cells, appending `…`.
pub(crate) fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        return s.to_string();
    }
    let mut out: String = s.chars().take(max.saturating_sub(1)).collect();
    out.push('…');
    out
}

/// Renders a fixed-width text table from a header and rows.
pub(crate) fn text_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let columns = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
        out.push('|');
        for (i, cell) in cells.iter().enumerate().take(columns) {
            out.push(' ');
            out.push_str(cell);
            for _ in cell.chars().count()..widths[i] {
                out.push(' ');
            }
            out.push_str(" |");
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    render_row(&header_cells, &widths, &mut out);
    out.push('|');
    for width in &widths {
        out.push_str(&"-".repeat(width + 2));
        out.push('|');
    }
    out.push('\n');
    for row in rows {
        render_row(row, &widths, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_special_characters() {
        assert_eq!(
            html_escape("<a href=\"x\">&'</a>"),
            "&lt;a href=&quot;x&quot;&gt;&amp;&#39;&lt;/a&gt;"
        );
    }

    #[test]
    fn truncate_respects_char_boundaries() {
        assert_eq!(truncate("héllo wörld", 6), "héllo…");
        assert_eq!(truncate("short", 10), "short");
    }

    #[test]
    fn table_alignment() {
        let rendered = text_table(
            &["id", "value"],
            &[vec!["1".into(), "long value".into()], vec!["1000".into(), "x".into()]],
        );
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[0], "| id   | value      |");
        assert_eq!(lines[1], "|------|------------|");
        assert_eq!(lines[2], "| 1    | long value |");
        assert_eq!(lines[3], "| 1000 | x          |");
    }
}
