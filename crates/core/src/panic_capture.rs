//! Captures panic location and backtrace at throw time.
//!
//! `catch_unwind` only yields the payload; the stack has already
//! unwound by the time the catcher runs. To populate the "error message
//! and stack trace" column of the Violations & Exceptions view (paper
//! Figure 5), Graft installs a process-wide panic hook that records the
//! panic's location and backtrace into a thread-local slot *at throw
//! time* — but only while the current thread is inside an instrumented
//! `compute()` call; panics elsewhere go to the previous hook untouched.

use std::backtrace::Backtrace;
use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

thread_local! {
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
    static LAST_PANIC: RefCell<Option<PanicSite>> = const { RefCell::new(None) };
}

static INSTALL: Once = Once::new();

/// Where and how a captured panic happened.
#[derive(Clone, Debug)]
pub struct PanicSite {
    /// `file:line:column` of the panic site, when known.
    pub location: Option<String>,
    /// Backtrace captured at throw time.
    pub backtrace: String,
}

fn install_hook() {
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if CAPTURING.with(|c| c.get()) {
                let site = PanicSite {
                    location: info.location().map(|l| l.to_string()),
                    backtrace: Backtrace::force_capture().to_string(),
                };
                LAST_PANIC.with(|slot| *slot.borrow_mut() = Some(site));
                // Swallow the printout: the panic is being captured as a
                // Graft "exception", not crashing the process.
            } else {
                previous(info);
            }
        }));
    });
}

/// Runs `f`, catching panics and reporting the throw-time site.
///
/// Nested calls are supported: the innermost guard wins.
pub fn guarded<R>(f: impl FnOnce() -> R) -> Result<R, (String, Option<PanicSite>)> {
    install_hook();
    let was_capturing = CAPTURING.with(|c| c.replace(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CAPTURING.with(|c| c.set(was_capturing));
    match result {
        Ok(value) => Ok(value),
        Err(payload) => {
            let site = LAST_PANIC.with(|slot| slot.borrow_mut().take());
            let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "<non-string panic payload>".to_string()
            };
            Err((message, site))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captures_message_and_location() {
        let err = guarded(|| panic!("overflow at vertex {}", 672)).unwrap_err();
        assert_eq!(err.0, "overflow at vertex 672");
        let site = err.1.expect("hook captured the site");
        assert!(site.location.unwrap().contains("panic_capture.rs"));
        assert!(!site.backtrace.is_empty());
    }

    #[test]
    fn passes_values_through_on_success() {
        assert_eq!(guarded(|| 21 * 2).unwrap(), 42);
    }

    #[test]
    fn nested_guards() {
        let outer = guarded(|| {
            let inner = guarded(|| panic!("inner"));
            assert!(inner.is_err());
            "outer ok"
        });
        assert_eq!(outer.unwrap(), "outer ok");
    }

    #[test]
    fn non_string_payload_is_tolerated() {
        let err = guarded(|| std::panic::panic_any(17u32)).unwrap_err();
        assert_eq!(err.0, "<non-string panic payload>");
    }
}
