//! # graft
//!
//! A Rust reproduction of **Graft**, the capture/visualize/reproduce
//! debugger for Pregel-like vertex-centric graph computations (Salihoglu
//! et al., SIGMOD 2015). It debugs programs written against the
//! [`graft_pregel`] engine, writing its trace files through the
//! [`graft_dfs`] file-system abstraction.
//!
//! The debugging cycle mirrors the paper:
//!
//! 1. **Capture** — describe the vertices of interest in a
//!    [`DebugConfig`] (by id, random sample, value/message constraints,
//!    exceptions, or all active vertices), then submit the program
//!    through [`GraftRunner`]. The [`Instrumented`] wrapper intercepts
//!    every `compute()` call, checks constraints, and logs the full
//!    vertex context of captured vertices to per-worker trace files.
//! 2. **Visualize** — open a [`DebugSession`] over the traces and step
//!    superstep by superstep through the [`views::node_link::NodeLinkView`],
//!    [`views::tabular::TabularView`] (with search), and
//!    [`views::violations::ViolationsView`].
//! 3. **Reproduce** — [`DebugSession::reproduce_vertex`] yields a
//!    [`ReproducedContext`] that replays the exact `compute()` call
//!    in-process (optionally recording line-level [`steptrace`] events)
//!    or generates a standalone Rust test reproducing the context.
//!
//! ```
//! use graft::{DebugConfig, GraftRunner, SearchQuery};
//! use graft::testing::premade;
//! use graft_pregel::{Computation, ContextOf, VertexHandleOf};
//!
//! // A little program with a bug: it sends a negative message when a
//! // counter overflows its artificial i8 range.
//! struct Overflowy;
//! impl Computation for Overflowy {
//!     type Id = u64;
//!     type VValue = i8;
//!     type EValue = ();
//!     type Message = i8;
//!     fn compute(
//!         &self,
//!         vertex: &mut VertexHandleOf<'_, Self>,
//!         messages: &[i8],
//!         ctx: &mut ContextOf<'_, Self>,
//!     ) {
//!         let total = messages.iter().fold(*vertex.value(), |a, &b| a.wrapping_add(b));
//!         vertex.set_value(total);
//!         if ctx.superstep() < 4 {
//!             ctx.send_message_to_all_edges(vertex, total.wrapping_add(100));
//!         } else {
//!             vertex.vote_to_halt();
//!         }
//!     }
//! }
//!
//! // Capture any vertex that sends a negative message.
//! let config = DebugConfig::<Overflowy>::builder()
//!     .message_constraint(|m, _src, _dst, _ss| *m >= 0)
//!     .build();
//! let run = GraftRunner::new(Overflowy, config)
//!     .num_workers(2)
//!     .run(premade::cycle(6, 1i8), "/traces/overflow")
//!     .unwrap();
//! assert!(run.violations > 0);
//!
//! // Find an offender and replay its compute() call exactly.
//! let session = run.session().unwrap();
//! let offender = session.violations()[0];
//! let replayed = session
//!     .reproduce_vertex(offender.vertex, offender.superstep)
//!     .unwrap()
//!     .replay(Overflowy);
//! assert_eq!(replayed.value_after, offender.value_after);
//! # let _ = SearchQuery::by_id(0u64);
//! ```

#![forbid(unsafe_code)]

pub mod codegen;
mod config;
mod instrument;
pub mod panic_capture;
mod reproduce;
mod runner;
mod session;
mod sink;
pub mod steptrace;
pub mod testing;
pub mod trace;
pub mod untyped;
pub mod views;

pub use config::{
    CaptureReason, ConfigFacts, DebugConfig, DebugConfigBuilder, ExceptionPolicy,
    MessageConstraint, SuperstepFilter, TraceCodec, VertexValueConstraint,
};
pub use instrument::{CaptureSets, GraftObserver, Instrumented};
pub use reproduce::{untyped_test_source, FidelityReport, ReproducedContext, ReproducedMaster};
pub use runner::{GraftError, GraftRun, GraftRunner};
pub use session::{DebugSession, Indicators, SearchQuery, SessionError};
pub use sink::TraceSink;
pub use trace::{
    ExceptionInfo, JobMeta, JobResultRecord, MasterTrace, VertexTrace, VertexTraceOf,
    ViolationKind, ViolationRecord,
};
