//! Small-graph construction and end-to-end test support — the offline
//! mode of the Graft GUI (paper Section 3.4).
//!
//! Users can build a small graph fluently (the GUI's draw-a-graph mode),
//! pick from a menu of premade graphs, export the adjacency-list text
//! file for an end-to-end test, or generate an end-to-end test code
//! template that constructs the graph programmatically.

use std::collections::BTreeMap;
use std::fmt::Display;

use graft_pregel::io::write_adjacency;
use graft_pregel::{Computation, Engine, Graph, JobOutcome, Value, VertexId};

use crate::codegen::{debug_literal, Template};

/// Fluent small-graph builder for tests; panics on malformed input
/// (duplicate vertices, dangling edges) because test graphs should fail
/// loudly at construction.
pub struct SmallGraph<I: VertexId, V: Value, E: Value> {
    builder_vertices: Vec<(I, V)>,
    builder_edges: Vec<(I, I, E, bool)>,
}

impl<I: VertexId, V: Value, E: Value> Default for SmallGraph<I, V, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: VertexId, V: Value, E: Value> SmallGraph<I, V, E> {
    /// Starts an empty graph.
    pub fn new() -> Self {
        Self { builder_vertices: Vec::new(), builder_edges: Vec::new() }
    }

    /// Adds a vertex.
    pub fn vertex(mut self, id: I, value: V) -> Self {
        self.builder_vertices.push((id, value));
        self
    }

    /// Adds several vertices with the same initial value.
    pub fn vertices(mut self, ids: impl IntoIterator<Item = I>, value: V) -> Self {
        for id in ids {
            self.builder_vertices.push((id, value.clone()));
        }
        self
    }

    /// Adds a directed edge.
    pub fn edge(mut self, from: I, to: I, value: E) -> Self {
        self.builder_edges.push((from, to, value, false));
        self
    }

    /// Adds an undirected edge (symmetric directed pair).
    pub fn undirected(mut self, a: I, b: I, value: E) -> Self {
        self.builder_edges.push((a, b, value, true));
        self
    }

    /// Builds the graph.
    ///
    /// # Panics
    /// Panics on duplicate vertices or edges from unknown vertices.
    pub fn build(self) -> Graph<I, V, E> {
        let mut builder = Graph::builder();
        for (id, value) in self.builder_vertices {
            builder.add_vertex(id, value).unwrap_or_else(|e| panic!("bad test graph: {e}"));
        }
        for (from, to, value, undirected) in self.builder_edges {
            if undirected {
                builder
                    .add_undirected_edge(from, to, value)
                    .unwrap_or_else(|e| panic!("bad test graph: {e}"));
            } else {
                builder.add_edge(from, to, value).unwrap_or_else(|e| panic!("bad test graph: {e}"));
            }
        }
        builder.build().unwrap_or_else(|e| panic!("bad test graph: {e}"))
    }
}

/// The premade-graphs menu from the GUI's offline mode.
pub mod premade {
    use graft_pregel::{Graph, Value};

    fn vertices<V: Value>(n: u64, value: V) -> graft_pregel::GraphBuilder<u64, V, ()> {
        let mut builder = Graph::builder();
        for v in 0..n {
            builder.add_vertex(v, value.clone()).expect("fresh ids are unique");
        }
        builder
    }

    /// A cycle 0–1–…–(n−1)–0 (undirected).
    pub fn cycle<V: Value>(n: u64, value: V) -> Graph<u64, V, ()> {
        let mut builder = vertices(n, value);
        for v in 0..n {
            builder.add_undirected_edge(v, (v + 1) % n, ()).expect("vertices exist");
        }
        builder.build().expect("cycle is well-formed")
    }

    /// A path 0–1–…–(n−1) (undirected).
    pub fn path<V: Value>(n: u64, value: V) -> Graph<u64, V, ()> {
        let mut builder = vertices(n, value);
        for v in 0..n.saturating_sub(1) {
            builder.add_undirected_edge(v, v + 1, ()).expect("vertices exist");
        }
        builder.build().expect("path is well-formed")
    }

    /// A star: vertex 0 connected to 1..n (undirected).
    pub fn star<V: Value>(n: u64, value: V) -> Graph<u64, V, ()> {
        let mut builder = vertices(n, value);
        for v in 1..n {
            builder.add_undirected_edge(0, v, ()).expect("vertices exist");
        }
        builder.build().expect("star is well-formed")
    }

    /// A complete graph on n vertices (undirected).
    pub fn clique<V: Value>(n: u64, value: V) -> Graph<u64, V, ()> {
        let mut builder = vertices(n, value);
        for a in 0..n {
            for b in a + 1..n {
                builder.add_undirected_edge(a, b, ()).expect("vertices exist");
            }
        }
        builder.build().expect("clique is well-formed")
    }

    /// A w×h grid (undirected), vertex id = row * w + column.
    pub fn grid<V: Value>(w: u64, h: u64, value: V) -> Graph<u64, V, ()> {
        let mut builder = vertices(w * h, value);
        for row in 0..h {
            for col in 0..w {
                let v = row * w + col;
                if col + 1 < w {
                    builder.add_undirected_edge(v, v + 1, ()).expect("vertices exist");
                }
                if row + 1 < h {
                    builder.add_undirected_edge(v, v + w, ()).expect("vertices exist");
                }
            }
        }
        builder.build().expect("grid is well-formed")
    }

    /// A complete bipartite graph K(a, b): parts {0..a} and {a..a+b}.
    pub fn complete_bipartite<V: Value>(a: u64, b: u64, value: V) -> Graph<u64, V, ()> {
        let mut builder = vertices(a + b, value);
        for left in 0..a {
            for right in a..a + b {
                builder.add_undirected_edge(left, right, ()).expect("vertices exist");
            }
        }
        builder.build().expect("bipartite graph is well-formed")
    }

    /// A perfect binary tree of the given depth (undirected edges),
    /// root = 0, children of v are 2v+1 and 2v+2.
    pub fn binary_tree<V: Value>(depth: u32, value: V) -> Graph<u64, V, ()> {
        let n = (1u64 << (depth + 1)) - 1;
        let mut builder = vertices(n, value);
        for v in 0..n {
            for child in [2 * v + 1, 2 * v + 2] {
                if child < n {
                    builder.add_undirected_edge(v, child, ()).expect("vertices exist");
                }
            }
        }
        builder.build().expect("tree is well-formed")
    }
}

/// Runs a computation on a small graph from the first superstep until
/// termination and returns the outcome — the "end-to-end test" runner.
pub fn run_end_to_end<C: Computation>(
    computation: C,
    graph: Graph<C::Id, C::VValue, C::EValue>,
) -> JobOutcome<C> {
    Engine::new(computation)
        .num_workers(2)
        .max_supersteps(10_000)
        .run(graph)
        .expect("end-to-end test job must not fail")
}

/// Asserts that the final vertex values equal `expected`, comparing as
/// sorted `(id, value)` pairs and printing a readable diff on mismatch.
pub fn assert_final_values<I: VertexId, V: Value>(
    graph: &Graph<I, V, impl Value>,
    expected: impl IntoIterator<Item = (I, V)>,
) {
    let actual: BTreeMap<I, V> = graph.sorted_values().into_iter().collect();
    let expected: BTreeMap<I, V> = expected.into_iter().collect();
    let mut diffs = Vec::new();
    for (id, want) in &expected {
        match actual.get(id) {
            Some(got) if got == want => {}
            Some(got) => diffs.push(format!("vertex {id}: expected {want:?}, got {got:?}")),
            None => diffs.push(format!("vertex {id}: expected {want:?}, missing")),
        }
    }
    for id in actual.keys() {
        if !expected.contains_key(id) {
            diffs.push(format!("vertex {id}: unexpected"));
        }
    }
    assert!(diffs.is_empty(), "final values differ:\n  {}", diffs.join("\n  "));
}

/// Exports the graph as adjacency-list text — "obtain a text file that
/// contains the adjacency list representation of the graph and use it in
/// an end-to-end test".
pub fn to_adjacency_text<I, V, E>(graph: &Graph<I, V, E>) -> String
where
    I: VertexId,
    V: Value + Display,
    E: Value + Display,
{
    write_adjacency(graph)
}

/// Generates an end-to-end test code template that constructs `graph`
/// programmatically, runs the computation, and asserts on the final
/// values — the GUI offline mode's "end-to-end test code template".
pub fn generate_end_to_end_test<I, V, E>(
    test_name: &str,
    computation_name: &str,
    graph: &Graph<I, V, E>,
) -> String
where
    I: VertexId,
    V: Value,
    E: Value,
{
    let mut construction = String::new();
    for (id, value, _) in graph.iter() {
        construction.push_str(&format!(
            "    builder.add_vertex({}, {}).unwrap();\n",
            debug_literal(&id),
            debug_literal(value)
        ));
    }
    for (id, _, edges) in graph.iter() {
        for edge in edges {
            construction.push_str(&format!(
                "    builder.add_edge({}, {}, {}).unwrap();\n",
                debug_literal(&id),
                debug_literal(&edge.target),
                debug_literal(&edge.value)
            ));
        }
    }
    let mut vars: BTreeMap<&str, String> = BTreeMap::new();
    vars.insert("test_name", test_name.to_string());
    vars.insert("computation", computation_name.to_string());
    vars.insert("construction", construction);
    END_TO_END_TEMPLATE.render(&vars).expect("end-to-end template variables are bound")
}

static END_TO_END_TEMPLATE: Template = Template::new(
    r#"// Generated by Graft's offline mode: an end-to-end test skeleton.
// Construct the computation, run from the first superstep until
// termination, and assert on the final output.

#[test]
fn ${test_name}() {
    use graft_pregel::{Engine, Graph};

    let mut builder = Graph::builder();
${construction}
    let graph = builder.build().unwrap();

    let computation = ${computation}::new(/* your args */);
    let outcome = Engine::new(computation).run(graph).unwrap();

    for (vertex, value) in outcome.graph.sorted_values() {
        // TODO: assert the expected final value of each vertex.
        println!("{vertex} -> {value:?}");
    }
}
"#,
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn premade_graph_shapes() {
        assert_eq!(premade::cycle(5, 0u32).num_edges(), 10);
        assert_eq!(premade::path(5, 0u32).num_edges(), 8);
        assert_eq!(premade::star(5, 0u32).num_edges(), 8);
        assert_eq!(premade::clique(4, 0u32).num_edges(), 12);
        assert_eq!(premade::grid(3, 2, 0u32).stats().num_edges, 14);
        assert_eq!(premade::complete_bipartite(2, 3, 0u32).num_edges(), 12);
        let tree = premade::binary_tree(3, 0u32);
        assert_eq!(tree.num_vertices(), 15);
        assert_eq!(tree.num_edges(), 28);
        for graph in [premade::cycle(5, 0u32), premade::grid(3, 3, 0u32)] {
            assert!(graph.asymmetric_edges().is_empty());
        }
    }

    #[test]
    fn small_graph_builder() {
        let graph: Graph<u64, i32, f32> =
            SmallGraph::new().vertices([1, 2, 3], 0).undirected(1, 2, 0.5).edge(2, 3, 1.5).build();
        assert_eq!(graph.num_vertices(), 3);
        assert_eq!(graph.num_edges(), 3);
        assert_eq!(graph.out_edges(1).unwrap()[0].value, 0.5);
    }

    #[test]
    #[should_panic(expected = "bad test graph")]
    fn small_graph_panics_on_duplicates() {
        let _ = SmallGraph::<u64, i32, ()>::new().vertex(1, 0).vertex(1, 0).build();
    }

    #[test]
    fn adjacency_text_export() {
        let graph: Graph<u64, i32, f32> =
            SmallGraph::new().vertices([1, 2], 7).edge(1, 2, 2.5).build();
        assert_eq!(to_adjacency_text(&graph), "1 7 2:2.5\n2 7\n");
    }

    #[test]
    fn end_to_end_template_contains_graph() {
        let graph: Graph<u64, i32, ()> =
            SmallGraph::new().vertices([1, 2], 0).undirected(1, 2, ()).build();
        let source = generate_end_to_end_test("check_coloring", "GraphColoring", &graph);
        assert!(source.contains("fn check_coloring()"));
        assert!(source.contains("builder.add_vertex(1, 0).unwrap();"));
        assert!(source.contains("builder.add_edge(1, 2, ()).unwrap();"));
        assert!(source.contains("GraphColoring::new"));
    }

    #[test]
    fn assert_final_values_reports_diffs() {
        let graph: Graph<u64, i32, ()> = SmallGraph::new().vertex(1, 5).build();
        assert_final_values(&graph, [(1u64, 5)]);
        let err = std::panic::catch_unwind(|| {
            assert_final_values(&graph, [(1u64, 6)]);
        })
        .unwrap_err();
        let message = err.downcast_ref::<String>().unwrap();
        assert!(message.contains("expected 6, got 5"));
    }
}
