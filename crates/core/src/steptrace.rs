//! Line-level replay events: the stand-in for stepping through the
//! generated JUnit test in an IDE debugger.
//!
//! The Java Graft hands the user a JUnit file and relies on Eclipse or
//! IntelliJ for the line-by-line walk. Without an IDE in the loop, this
//! module gives the same visibility: algorithms sprinkle
//! [`crate::trace_point!`] calls into `compute()` (they compile to a
//! thread-local flag check — close to free when disabled), and
//! [`with_recording`] re-runs a replayed context with recording enabled,
//! returning exactly which trace points fired, in order, with the
//! variable values at each.
//!
//! ```
//! use graft::steptrace::{self, with_recording};
//! use graft::trace_point;
//!
//! fn compute_like_body(walkers: i32) -> i32 {
//!     trace_point!("entry", "walkers" => walkers);
//!     if walkers > 10 {
//!         trace_point!("many-walkers branch");
//!         walkers * 2
//!     } else {
//!         walkers
//!     }
//! }
//!
//! let (result, steps) = with_recording(|| compute_like_body(50));
//! assert_eq!(result, 100);
//! assert_eq!(steps.events().len(), 2);
//! assert_eq!(steps.events()[1].label, "many-walkers branch");
//! ```

use std::cell::{Cell, RefCell};

thread_local! {
    static RECORDING: Cell<bool> = const { Cell::new(false) };
    static EVENTS: RefCell<Vec<StepEvent>> = const { RefCell::new(Vec::new()) };
}

/// One fired trace point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepEvent {
    /// The label given at the call site.
    pub label: String,
    /// Source file of the trace point.
    pub file: &'static str,
    /// Source line of the trace point.
    pub line: u32,
    /// `(name, Debug-rendered value)` pairs captured at the point.
    pub values: Vec<(String, String)>,
}

/// The ordered list of trace points that fired during a recording.
#[derive(Clone, Debug, Default)]
pub struct StepTrace {
    events: Vec<StepEvent>,
}

impl StepTrace {
    /// The events, in firing order.
    pub fn events(&self) -> &[StepEvent] {
        &self.events
    }

    /// Labels only — handy for asserting which branches executed.
    pub fn labels(&self) -> Vec<&str> {
        self.events.iter().map(|e| e.label.as_str()).collect()
    }

    /// Index of the first event where `self` and `other` differ (by
    /// label, location, or captured values). A strict prefix diverges at
    /// the shorter trace's length; equal traces return `None`. The
    /// analyzer's race detector uses this to pinpoint where a
    /// permuted-delivery replay took a different path through `compute()`.
    pub fn first_divergence(&self, other: &StepTrace) -> Option<usize> {
        self.events.iter().zip(other.events.iter()).position(|(a, b)| a != b).or_else(|| {
            (self.events.len() != other.events.len())
                .then(|| self.events.len().min(other.events.len()))
        })
    }

    /// Renders a step-by-step listing.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (i, event) in self.events.iter().enumerate() {
            out.push_str(&format!("{:>4}. {}:{} {}", i + 1, event.file, event.line, event.label));
            for (name, value) in &event.values {
                out.push_str(&format!("  {name}={value}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Whether a recording is active on this thread. Called by
/// [`trace_point!`]; not part of the public contract.
#[doc(hidden)]
pub fn is_recording() -> bool {
    RECORDING.with(|r| r.get())
}

/// Appends an event to the active recording. Called by [`trace_point!`].
#[doc(hidden)]
pub fn record(event: StepEvent) {
    EVENTS.with(|events| events.borrow_mut().push(event));
}

/// Runs `f` with step recording enabled on this thread, returning its
/// result and the trace points that fired.
pub fn with_recording<R>(f: impl FnOnce() -> R) -> (R, StepTrace) {
    let was = RECORDING.with(|r| r.replace(true));
    let saved = EVENTS.with(|events| std::mem::take(&mut *events.borrow_mut()));
    let result = f();
    let events = EVENTS.with(|events| std::mem::replace(&mut *events.borrow_mut(), saved));
    RECORDING.with(|r| r.set(was));
    (result, StepTrace { events })
}

/// Records a line-level event when step recording is active.
///
/// ```ignore
/// trace_point!("enter conflict resolution");
/// trace_point!("chose color", "color" => color, "degree" => degree);
/// ```
#[macro_export]
macro_rules! trace_point {
    ($label:expr $(, $name:expr => $value:expr)* $(,)?) => {
        if $crate::steptrace::is_recording() {
            $crate::steptrace::record($crate::steptrace::StepEvent {
                label: ::std::string::String::from($label),
                file: file!(),
                line: line!(),
                values: vec![
                    $((::std::string::String::from($name), format!("{:?}", $value)),)*
                ],
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        trace_point!("should not record");
        let (_, steps) = with_recording(|| ());
        assert!(steps.events().is_empty());
    }

    #[test]
    fn records_labels_values_and_order() {
        let ((), steps) = with_recording(|| {
            trace_point!("first", "x" => 1);
            trace_point!("second", "y" => "text", "z" => vec![1, 2]);
        });
        assert_eq!(steps.labels(), vec!["first", "second"]);
        assert_eq!(steps.events()[0].values, vec![("x".to_string(), "1".to_string())]);
        assert_eq!(
            steps.events()[1].values,
            vec![
                ("y".to_string(), "\"text\"".to_string()),
                ("z".to_string(), "[1, 2]".to_string())
            ]
        );
        assert!(steps.events()[0].file.ends_with("steptrace.rs"));
        let text = steps.to_text();
        assert!(text.contains("first"));
        assert!(text.contains("z=[1, 2]"));
    }

    #[test]
    fn first_divergence_finds_the_split() {
        // `None` stops after the shared prefix; events compare by source
        // location too, so all runs must share the same trace points.
        let run = |branch: Option<bool>| {
            with_recording(|| {
                trace_point!("entry");
                let Some(branch) = branch else { return };
                if branch {
                    trace_point!("left");
                } else {
                    trace_point!("right");
                }
                trace_point!("exit");
            })
            .1
        };
        let left = run(Some(true));
        let right = run(Some(false));
        assert_eq!(left.first_divergence(&left), None);
        assert_eq!(left.first_divergence(&right), Some(1));
        // A strict prefix diverges where the longer trace continues.
        let short = run(None);
        assert_eq!(short.first_divergence(&left), Some(1));
    }

    #[test]
    fn nested_recordings_are_isolated() {
        let ((), outer) = with_recording(|| {
            trace_point!("outer-1");
            let ((), inner) = with_recording(|| {
                trace_point!("inner");
            });
            assert_eq!(inner.labels(), vec!["inner"]);
            trace_point!("outer-2");
        });
        assert_eq!(outer.labels(), vec!["outer-1", "outer-2"]);
    }
}
