//! The `DebugConfig`: how users tell Graft which vertices to capture.
//!
//! Mirrors Section 3.1 of the paper. A config can request capture of:
//!
//! 1. vertices specified by id (optionally with their neighbors),
//! 2. a random sample of a given size (optionally with neighbors),
//! 3. vertices whose value violates a constraint,
//! 4. vertices that send a message violating a constraint,
//! 5. vertices whose `compute()` raises an exception (panics),
//!
//! or alternatively *all active vertices*. Captures can be limited to a
//! subset of supersteps, and a global `max_captures` safety net stops
//! capturing once exceeded.

use std::fmt;
use std::sync::Arc;

use graft_pregel::Computation;
use serde::{Deserialize, Serialize};

/// Vertex-value constraint: `(value, vertex id, superstep) -> ok?`.
/// Returning `false` marks a violation and captures the vertex.
pub type VertexValueConstraint<C> =
    Arc<dyn Fn(&<C as Computation>::VValue, &<C as Computation>::Id, u64) -> bool + Send + Sync>;

/// Message constraint: `(message, source id, target id, superstep) -> ok?`.
/// Returning `false` marks a violation and captures the sending vertex.
pub type MessageConstraint<C> = Arc<
    dyn Fn(
            &<C as Computation>::Message,
            &<C as Computation>::Id,
            &<C as Computation>::Id,
            u64,
        ) -> bool
        + Send
        + Sync,
>;

/// Which supersteps Graft captures in. Defaults to all.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuperstepFilter {
    /// Capture in every superstep (the default).
    All,
    /// Capture only in supersteps `>= from` (used in the paper's MWM
    /// scenario: "capture all active vertices after superstep 500").
    After(u64),
    /// Capture in the inclusive range `[from, to]`.
    Range {
        /// First superstep captured.
        from: u64,
        /// Last superstep captured (inclusive).
        to: u64,
    },
    /// Capture only in the listed supersteps. Kept sorted and deduplicated
    /// (see [`SuperstepFilter::set`]) so membership tests are a binary
    /// search instead of a linear scan.
    Set(Vec<u64>),
}

impl SuperstepFilter {
    /// Builds a `Set` filter from any iterator of supersteps, sorting and
    /// deduplicating so [`matches`](Self::matches) can binary-search.
    /// Prefer this over constructing `SuperstepFilter::Set` directly.
    pub fn set(supersteps: impl IntoIterator<Item = u64>) -> Self {
        let mut set: Vec<u64> = supersteps.into_iter().collect();
        set.sort_unstable();
        set.dedup();
        SuperstepFilter::Set(set)
    }

    /// Returns a copy with `Set` contents sorted and deduplicated. The
    /// builder applies this, so configs built through the public API
    /// always satisfy the `Set` ordering invariant.
    pub fn normalized(&self) -> Self {
        match self {
            SuperstepFilter::Set(set) => SuperstepFilter::set(set.iter().copied()),
            other => other.clone(),
        }
    }

    /// Whether `superstep` is selected by this filter.
    pub fn matches(&self, superstep: u64) -> bool {
        match self {
            SuperstepFilter::All => true,
            SuperstepFilter::After(from) => superstep >= *from,
            SuperstepFilter::Range { from, to } => superstep >= *from && superstep <= *to,
            SuperstepFilter::Set(set) => set.binary_search(&superstep).is_ok(),
        }
    }

    /// Whether this filter can never select any superstep (an inverted
    /// `Range` or an empty `Set`) — such a config silently captures
    /// nothing, which the analyzer flags as GA0006.
    pub fn selects_none(&self) -> bool {
        match self {
            SuperstepFilter::All | SuperstepFilter::After(_) => false,
            SuperstepFilter::Range { from, to } => from > to,
            SuperstepFilter::Set(set) => set.is_empty(),
        }
    }

    /// The earliest superstep this filter can select, if bounded below.
    /// `All` starts at 0; an unsatisfiable filter returns `None`.
    pub fn earliest(&self) -> Option<u64> {
        match self {
            SuperstepFilter::All => Some(0),
            SuperstepFilter::After(from) => Some(*from),
            SuperstepFilter::Range { from, to } => (from <= to).then_some(*from),
            SuperstepFilter::Set(set) => set.iter().min().copied(),
        }
    }
}

/// What to do after capturing a vertex whose `compute()` panicked.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExceptionPolicy {
    /// Re-raise the panic so the job fails, as Giraph jobs do on uncaught
    /// exceptions. The capture survives: Graft flushes traces on failure.
    Abort,
    /// Swallow the panic and halt the vertex, letting the rest of the job
    /// proceed — useful when hunting several failing vertices in one run.
    SuppressAndHalt,
}

/// Why a vertex context was captured. A single capture may have several
/// reasons.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CaptureReason {
    /// The vertex id was listed in the config.
    SpecifiedId,
    /// The vertex was picked by random sampling.
    RandomSample,
    /// The vertex neighbors a specified/random capture target.
    NeighborOfCaptured,
    /// The vertex's value violated the vertex-value constraint.
    VertexValueViolation,
    /// The vertex sent a message violating the message constraint.
    MessageViolation,
    /// The vertex's `compute()` panicked.
    Exception,
    /// The config requested capture of all active vertices.
    AllActive,
}

/// How trace records are encoded on the file system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceCodec {
    /// Human-readable JSON lines; inspectable with any editor, as the
    /// paper's HDFS trace files were meant to be small. The fallback
    /// format, and the implied format of legacy trace directories.
    JsonLines,
    /// Kind-tagged GraftBin frames (see `graft_codec::frame`); smaller
    /// and cheaper to capture, with superstep index frames for streaming
    /// reads. The default.
    Binary,
}

/// A type-erased summary of a [`DebugConfig`], recorded in `meta.json`
/// and consumed by `graft-analyzer`'s configuration lints (GA0006–GA0011).
///
/// Constraints and capture ids are reduced to presence/counts because the
/// typed payloads (closures, `C::Id` values) cannot be serialized; the
/// structural fields the lints reason about are carried verbatim.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigFacts {
    /// How many vertex ids the config lists for capture.
    pub num_capture_ids: usize,
    /// Whether neighbors of captured vertices are also captured.
    pub capture_neighbors: bool,
    /// Size of the random capture sample.
    pub num_random: usize,
    /// Whether every active vertex is captured.
    pub capture_all_active: bool,
    /// Whether a vertex-value constraint is installed.
    pub has_vertex_value_constraint: bool,
    /// Whether a message constraint is installed.
    pub has_message_constraint: bool,
    /// Whether exceptions are captured.
    pub catch_exceptions: bool,
    /// The superstep filter, verbatim.
    pub superstep_filter: SuperstepFilter,
    /// The capture safety-net threshold.
    pub max_captures: u64,
    /// Whether master contexts are captured.
    pub capture_master: bool,
    /// The job's superstep limit, when known (filled in by the runner; a
    /// config on its own has no superstep horizon).
    pub max_supersteps: Option<u64>,
    /// The checkpoint interval, when the runner enabled fault tolerance
    /// (`None` means checkpointing is off). Filled in by the runner.
    pub checkpoint_every: Option<u64>,
    /// The engine worker count. Filled in by the runner. (`Option` fields
    /// are implicitly optional to the vendored serde, so meta.json files
    /// written before this field existed still deserialize.)
    pub num_workers: Option<usize>,
    /// The armed fault plan in its spec syntax (`Display` form), when the
    /// runner injects faults. Filled in by the runner.
    pub fault_plan: Option<String>,
    /// The recovery mode the engine was configured with (`"restart"` or
    /// `"log-replay"`), when the runner set one. Filled in by the runner;
    /// absent in meta.json files written before confined recovery existed.
    pub recovery_mode: Option<String>,
    /// Whether the runner streamed live observability snapshots during
    /// the run. Filled in by the runner; absent in older meta.json files.
    pub live_flush: Option<bool>,
    /// Whether an observability handle was attached at all — live
    /// flushing without one is a no-op, which lint GA0017 flags. Filled
    /// in by the runner.
    pub obs_enabled: Option<bool>,
    /// The out-of-core memory budget in bytes, when the runner capped
    /// resident partition + shuffle memory (`None` means fully
    /// in-memory). Filled in by the runner.
    pub memory_budget: Option<u64>,
    /// The estimated serialized footprint of the largest single
    /// partition under hash partitioning, in bytes. Filled in by the
    /// runner only when a memory budget is set; lint GA0018 compares it
    /// against the budget.
    pub est_max_partition_bytes: Option<u64>,
    /// The trace encoding, `"json"` or `"binary"`. Lint GA0019 flags
    /// heavy captures recorded as JSON. Absent in older meta.json files
    /// (which are always JSON).
    pub trace_format: Option<String>,
}

/// The assembled debug configuration for a computation `C`.
///
/// Build one with [`DebugConfig::builder`]. The paper's Figure 2 example
/// — capture 5 random vertices with neighbors, plus any vertex sending a
/// negative message — looks like this:
///
/// ```ignore
/// let config = DebugConfig::<RW>::builder()
///     .capture_random(5, 42)
///     .capture_neighbors(true)
///     .message_constraint(|msg, _src, _dst, _ss| msg.walkers >= 0)
///     .build();
/// ```
pub struct DebugConfig<C: Computation> {
    pub(crate) capture_ids: Vec<C::Id>,
    pub(crate) capture_neighbors: bool,
    pub(crate) num_random: usize,
    pub(crate) random_seed: u64,
    pub(crate) capture_all_active: bool,
    pub(crate) vertex_value_constraint: Option<VertexValueConstraint<C>>,
    pub(crate) message_constraint: Option<MessageConstraint<C>>,
    pub(crate) catch_exceptions: bool,
    pub(crate) exception_policy: ExceptionPolicy,
    pub(crate) superstep_filter: SuperstepFilter,
    pub(crate) max_captures: u64,
    pub(crate) codec: TraceCodec,
    pub(crate) capture_master: bool,
}

impl<C: Computation> Clone for DebugConfig<C> {
    fn clone(&self) -> Self {
        Self {
            capture_ids: self.capture_ids.clone(),
            capture_neighbors: self.capture_neighbors,
            num_random: self.num_random,
            random_seed: self.random_seed,
            capture_all_active: self.capture_all_active,
            vertex_value_constraint: self.vertex_value_constraint.clone(),
            message_constraint: self.message_constraint.clone(),
            catch_exceptions: self.catch_exceptions,
            exception_policy: self.exception_policy,
            superstep_filter: self.superstep_filter.clone(),
            max_captures: self.max_captures,
            codec: self.codec,
            capture_master: self.capture_master,
        }
    }
}

impl<C: Computation> Default for DebugConfig<C> {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl<C: Computation> DebugConfig<C> {
    /// Starts a builder with paper defaults: nothing captured except
    /// exceptions, all supersteps eligible, binary traces, a one-million
    /// capture safety net, and abort-on-exception semantics.
    pub fn builder() -> DebugConfigBuilder<C> {
        DebugConfigBuilder {
            config: DebugConfig {
                capture_ids: Vec::new(),
                capture_neighbors: false,
                num_random: 0,
                random_seed: 0x9e3779b97f4a7c15,
                capture_all_active: false,
                vertex_value_constraint: None,
                message_constraint: None,
                catch_exceptions: true,
                exception_policy: ExceptionPolicy::Abort,
                superstep_filter: SuperstepFilter::All,
                max_captures: 1_000_000,
                codec: TraceCodec::Binary,
                capture_master: true,
            },
        }
    }

    /// Whether any capture can only be decided *after* `compute()` runs
    /// (constraints, exceptions, capture-all). These configs make the
    /// instrumenter snapshot every vertex's pre-compute state, which is
    /// where most of the measured overhead comes from.
    pub fn has_posthoc_captures(&self) -> bool {
        self.capture_all_active
            || self.vertex_value_constraint.is_some()
            || self.message_constraint.is_some()
            || self.catch_exceptions
    }

    /// Whether this config selects any vertices up front.
    pub fn has_preselected_captures(&self) -> bool {
        !self.capture_ids.is_empty() || self.num_random > 0
    }

    /// One-line-per-feature human description, used by the Table 3
    /// regeneration and the GUI header.
    pub fn describe(&self) -> Vec<String> {
        let mut out = Vec::new();
        if !self.capture_ids.is_empty() {
            out.push(format!(
                "captures {} specified vertices{}",
                self.capture_ids.len(),
                if self.capture_neighbors { " and their neighbors" } else { "" }
            ));
        }
        if self.num_random > 0 {
            out.push(format!(
                "captures {} random vertices{} (seed {})",
                self.num_random,
                if self.capture_neighbors { " and their neighbors" } else { "" },
                self.random_seed
            ));
        }
        if self.capture_all_active {
            out.push("captures all active vertices".to_string());
        }
        if self.vertex_value_constraint.is_some() {
            out.push("checks a vertex value constraint".to_string());
        }
        if self.message_constraint.is_some() {
            out.push("checks a message value constraint".to_string());
        }
        if self.catch_exceptions {
            out.push(format!("captures exceptions ({:?})", self.exception_policy));
        }
        if self.superstep_filter != SuperstepFilter::All {
            out.push(format!("supersteps: {:?}", self.superstep_filter));
        }
        out.push(format!("max captures: {}", self.max_captures));
        out
    }

    /// The trace codec this config selects.
    pub fn codec(&self) -> TraceCodec {
        self.codec
    }

    /// The type-erased summary of this config, for `meta.json` and the
    /// analyzer's configuration lints. `max_supersteps` is left `None`;
    /// the runner fills it in from the job limit.
    pub fn facts(&self) -> ConfigFacts {
        ConfigFacts {
            num_capture_ids: self.capture_ids.len(),
            capture_neighbors: self.capture_neighbors,
            num_random: self.num_random,
            capture_all_active: self.capture_all_active,
            has_vertex_value_constraint: self.vertex_value_constraint.is_some(),
            has_message_constraint: self.message_constraint.is_some(),
            catch_exceptions: self.catch_exceptions,
            superstep_filter: self.superstep_filter.clone(),
            max_captures: self.max_captures,
            capture_master: self.capture_master,
            max_supersteps: None,
            checkpoint_every: None,
            num_workers: None,
            fault_plan: None,
            recovery_mode: None,
            live_flush: None,
            obs_enabled: None,
            memory_budget: None,
            est_max_partition_bytes: None,
            trace_format: Some(
                match self.codec {
                    TraceCodec::JsonLines => "json",
                    TraceCodec::Binary => "binary",
                }
                .to_string(),
            ),
        }
    }
}

impl<C: Computation> fmt::Debug for DebugConfig<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DebugConfig")
            .field("capture_ids", &self.capture_ids)
            .field("capture_neighbors", &self.capture_neighbors)
            .field("num_random", &self.num_random)
            .field("capture_all_active", &self.capture_all_active)
            .field("vertex_value_constraint", &self.vertex_value_constraint.is_some())
            .field("message_constraint", &self.message_constraint.is_some())
            .field("catch_exceptions", &self.catch_exceptions)
            .field("superstep_filter", &self.superstep_filter)
            .field("max_captures", &self.max_captures)
            .field("codec", &self.codec)
            .finish()
    }
}

/// Fluent builder for [`DebugConfig`].
pub struct DebugConfigBuilder<C: Computation> {
    config: DebugConfig<C>,
}

impl<C: Computation> DebugConfigBuilder<C> {
    /// Capture the vertices with these ids (category 1).
    pub fn capture_ids(mut self, ids: impl IntoIterator<Item = C::Id>) -> Self {
        self.config.capture_ids.extend(ids);
        self
    }

    /// Capture `n` randomly sampled vertices (category 2). The sample is
    /// deterministic in `seed`, so reruns capture the same vertices.
    pub fn capture_random(mut self, n: usize, seed: u64) -> Self {
        self.config.num_random = n;
        self.config.random_seed = seed;
        self
    }

    /// Also capture the neighbors of every specified/random vertex.
    pub fn capture_neighbors(mut self, yes: bool) -> Self {
        self.config.capture_neighbors = yes;
        self
    }

    /// Capture every active vertex (used in the paper's MWM scenario).
    pub fn capture_all_active(mut self, yes: bool) -> Self {
        self.config.capture_all_active = yes;
        self
    }

    /// Install a vertex-value constraint (category 3).
    pub fn vertex_value_constraint<F>(mut self, constraint: F) -> Self
    where
        F: Fn(&C::VValue, &C::Id, u64) -> bool + Send + Sync + 'static,
    {
        self.config.vertex_value_constraint = Some(Arc::new(constraint));
        self
    }

    /// Install a message constraint (category 4).
    pub fn message_constraint<F>(mut self, constraint: F) -> Self
    where
        F: Fn(&C::Message, &C::Id, &C::Id, u64) -> bool + Send + Sync + 'static,
    {
        self.config.message_constraint = Some(Arc::new(constraint));
        self
    }

    /// Enable/disable exception capture (category 5; on by default).
    pub fn catch_exceptions(mut self, yes: bool) -> Self {
        self.config.catch_exceptions = yes;
        self
    }

    /// What happens to the job after an exception is captured.
    pub fn exception_policy(mut self, policy: ExceptionPolicy) -> Self {
        self.config.exception_policy = policy;
        self
    }

    /// Restrict capturing to a subset of supersteps. `Set` filters are
    /// normalized (sorted, deduplicated) so membership is a binary search.
    pub fn supersteps(mut self, filter: SuperstepFilter) -> Self {
        self.config.superstep_filter = filter.normalized();
        self
    }

    /// Adjust the safety-net threshold after which Graft stops capturing.
    pub fn max_captures(mut self, max: u64) -> Self {
        self.config.max_captures = max;
        self
    }

    /// Choose the on-disk trace encoding.
    pub fn codec(mut self, codec: TraceCodec) -> Self {
        self.config.codec = codec;
        self
    }

    /// Enable/disable master-context capture (on by default).
    pub fn capture_master(mut self, yes: bool) -> Self {
        self.config.capture_master = yes;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> DebugConfig<C> {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_pregel::{Computation, ContextOf, VertexHandleOf};

    struct Dummy;
    impl Computation for Dummy {
        type Id = u64;
        type VValue = i64;
        type EValue = ();
        type Message = i64;
        fn compute(
            &self,
            _v: &mut VertexHandleOf<'_, Self>,
            _m: &[i64],
            _c: &mut ContextOf<'_, Self>,
        ) {
        }
    }

    #[test]
    fn superstep_filters() {
        assert!(SuperstepFilter::All.matches(0));
        assert!(SuperstepFilter::After(500).matches(500));
        assert!(!SuperstepFilter::After(500).matches(499));
        assert!(SuperstepFilter::Range { from: 2, to: 4 }.matches(4));
        assert!(!SuperstepFilter::Range { from: 2, to: 4 }.matches(5));
        assert!(SuperstepFilter::Set(vec![1, 41]).matches(41));
        assert!(!SuperstepFilter::Set(vec![1, 41]).matches(2));
    }

    #[test]
    fn set_constructor_sorts_and_dedups() {
        let filter = SuperstepFilter::set([41, 1, 7, 41, 1]);
        assert_eq!(filter, SuperstepFilter::Set(vec![1, 7, 41]));
        for superstep in [1, 7, 41] {
            assert!(filter.matches(superstep));
        }
        for superstep in [0, 2, 40, 42, u64::MAX] {
            assert!(!filter.matches(superstep));
        }
    }

    #[test]
    fn builder_normalizes_unsorted_sets() {
        let config = DebugConfig::<Dummy>::builder()
            .supersteps(SuperstepFilter::Set(vec![9, 3, 9, 5]))
            .build();
        assert_eq!(config.superstep_filter, SuperstepFilter::Set(vec![3, 5, 9]));
        assert!(config.superstep_filter.matches(5));
    }

    #[test]
    fn empty_set_matches_nothing() {
        let filter = SuperstepFilter::set(std::iter::empty());
        assert!(filter.selects_none());
        assert_eq!(filter.earliest(), None);
        for superstep in [0, 1, 500, u64::MAX] {
            assert!(!filter.matches(superstep));
        }
    }

    #[test]
    fn inverted_range_matches_nothing() {
        let filter = SuperstepFilter::Range { from: 10, to: 2 };
        assert!(filter.selects_none());
        assert_eq!(filter.earliest(), None);
        for superstep in [0, 2, 5, 10, u64::MAX] {
            assert!(!filter.matches(superstep));
        }
        assert!(!SuperstepFilter::Range { from: 2, to: 10 }.selects_none());
        assert_eq!(SuperstepFilter::Range { from: 2, to: 10 }.earliest(), Some(2));
    }

    #[test]
    fn facts_summarize_the_config() {
        let config = DebugConfig::<Dummy>::builder()
            .capture_ids([672, 673])
            .capture_neighbors(true)
            .message_constraint(|msg, _, _, _| *msg >= 0)
            .supersteps(SuperstepFilter::set([4, 2]))
            .max_captures(99)
            .build();
        let facts = config.facts();
        assert_eq!(facts.num_capture_ids, 2);
        assert!(facts.capture_neighbors);
        assert!(!facts.has_vertex_value_constraint);
        assert!(facts.has_message_constraint);
        assert_eq!(facts.superstep_filter, SuperstepFilter::Set(vec![2, 4]));
        assert_eq!(facts.max_captures, 99);
        assert_eq!(facts.max_supersteps, None);
        assert_eq!(facts.trace_format.as_deref(), Some("binary"));
        let json_facts =
            DebugConfig::<Dummy>::builder().codec(TraceCodec::JsonLines).build().facts();
        assert_eq!(json_facts.trace_format.as_deref(), Some("json"));
    }

    #[test]
    fn builder_collects_all_features() {
        let config = DebugConfig::<Dummy>::builder()
            .capture_ids([672, 673])
            .capture_random(5, 7)
            .capture_neighbors(true)
            .vertex_value_constraint(|value, _, _| *value >= 0)
            .message_constraint(|msg, _, _, _| *msg >= 0)
            .supersteps(SuperstepFilter::After(10))
            .max_captures(99)
            .codec(TraceCodec::Binary)
            .build();
        assert_eq!(config.capture_ids, vec![672, 673]);
        assert!(config.capture_neighbors);
        assert_eq!(config.num_random, 5);
        assert!(config.has_posthoc_captures());
        assert!(config.has_preselected_captures());
        assert_eq!(config.max_captures, 99);
        assert_eq!(config.codec(), TraceCodec::Binary);
        let description = config.describe().join("; ");
        assert!(description.contains("2 specified"));
        assert!(description.contains("5 random"));
        assert!(description.contains("message value constraint"));
    }

    #[test]
    fn default_config_only_catches_exceptions() {
        let config = DebugConfig::<Dummy>::default();
        assert!(!config.has_preselected_captures());
        assert!(config.catch_exceptions);
        assert!(config.has_posthoc_captures());
        assert_eq!(config.exception_policy, ExceptionPolicy::Abort);
        assert_eq!(config.codec(), TraceCodec::Binary, "binary capture is the default");
    }

    #[test]
    fn constraints_evaluate() {
        let config = DebugConfig::<Dummy>::builder()
            .message_constraint(|msg, _src, _dst, _ss| *msg >= 0)
            .build();
        let c = config.message_constraint.as_ref().unwrap();
        assert!(c(&5, &1, &2, 0));
        assert!(!c(&-5, &1, &2, 0));
    }
}
