//! The `DebugConfig`: how users tell Graft which vertices to capture.
//!
//! Mirrors Section 3.1 of the paper. A config can request capture of:
//!
//! 1. vertices specified by id (optionally with their neighbors),
//! 2. a random sample of a given size (optionally with neighbors),
//! 3. vertices whose value violates a constraint,
//! 4. vertices that send a message violating a constraint,
//! 5. vertices whose `compute()` raises an exception (panics),
//!
//! or alternatively *all active vertices*. Captures can be limited to a
//! subset of supersteps, and a global `max_captures` safety net stops
//! capturing once exceeded.

use std::fmt;
use std::sync::Arc;

use graft_pregel::Computation;
use serde::{Deserialize, Serialize};

/// Vertex-value constraint: `(value, vertex id, superstep) -> ok?`.
/// Returning `false` marks a violation and captures the vertex.
pub type VertexValueConstraint<C> = Arc<
    dyn Fn(&<C as Computation>::VValue, &<C as Computation>::Id, u64) -> bool + Send + Sync,
>;

/// Message constraint: `(message, source id, target id, superstep) -> ok?`.
/// Returning `false` marks a violation and captures the sending vertex.
pub type MessageConstraint<C> = Arc<
    dyn Fn(
            &<C as Computation>::Message,
            &<C as Computation>::Id,
            &<C as Computation>::Id,
            u64,
        ) -> bool
        + Send
        + Sync,
>;

/// Which supersteps Graft captures in. Defaults to all.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuperstepFilter {
    /// Capture in every superstep (the default).
    All,
    /// Capture only in supersteps `>= from` (used in the paper's MWM
    /// scenario: "capture all active vertices after superstep 500").
    After(u64),
    /// Capture in the inclusive range `[from, to]`.
    Range {
        /// First superstep captured.
        from: u64,
        /// Last superstep captured (inclusive).
        to: u64,
    },
    /// Capture only in the listed supersteps.
    Set(Vec<u64>),
}

impl SuperstepFilter {
    /// Whether `superstep` is selected by this filter.
    pub fn matches(&self, superstep: u64) -> bool {
        match self {
            SuperstepFilter::All => true,
            SuperstepFilter::After(from) => superstep >= *from,
            SuperstepFilter::Range { from, to } => superstep >= *from && superstep <= *to,
            SuperstepFilter::Set(set) => set.contains(&superstep),
        }
    }
}

/// What to do after capturing a vertex whose `compute()` panicked.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExceptionPolicy {
    /// Re-raise the panic so the job fails, as Giraph jobs do on uncaught
    /// exceptions. The capture survives: Graft flushes traces on failure.
    Abort,
    /// Swallow the panic and halt the vertex, letting the rest of the job
    /// proceed — useful when hunting several failing vertices in one run.
    SuppressAndHalt,
}

/// Why a vertex context was captured. A single capture may have several
/// reasons.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CaptureReason {
    /// The vertex id was listed in the config.
    SpecifiedId,
    /// The vertex was picked by random sampling.
    RandomSample,
    /// The vertex neighbors a specified/random capture target.
    NeighborOfCaptured,
    /// The vertex's value violated the vertex-value constraint.
    VertexValueViolation,
    /// The vertex sent a message violating the message constraint.
    MessageViolation,
    /// The vertex's `compute()` panicked.
    Exception,
    /// The config requested capture of all active vertices.
    AllActive,
}

/// How trace records are encoded on the file system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceCodec {
    /// Human-readable JSON lines (the default; inspectable with any
    /// editor, as the paper's HDFS trace files were meant to be small).
    JsonLines,
    /// Compact length-prefixed GraftBin records (see `graft-codec`);
    /// smaller and faster, for heavy captures.
    Binary,
}

/// The assembled debug configuration for a computation `C`.
///
/// Build one with [`DebugConfig::builder`]. The paper's Figure 2 example
/// — capture 5 random vertices with neighbors, plus any vertex sending a
/// negative message — looks like this:
///
/// ```ignore
/// let config = DebugConfig::<RW>::builder()
///     .capture_random(5, 42)
///     .capture_neighbors(true)
///     .message_constraint(|msg, _src, _dst, _ss| msg.walkers >= 0)
///     .build();
/// ```
pub struct DebugConfig<C: Computation> {
    pub(crate) capture_ids: Vec<C::Id>,
    pub(crate) capture_neighbors: bool,
    pub(crate) num_random: usize,
    pub(crate) random_seed: u64,
    pub(crate) capture_all_active: bool,
    pub(crate) vertex_value_constraint: Option<VertexValueConstraint<C>>,
    pub(crate) message_constraint: Option<MessageConstraint<C>>,
    pub(crate) catch_exceptions: bool,
    pub(crate) exception_policy: ExceptionPolicy,
    pub(crate) superstep_filter: SuperstepFilter,
    pub(crate) max_captures: u64,
    pub(crate) codec: TraceCodec,
    pub(crate) capture_master: bool,
}

impl<C: Computation> Clone for DebugConfig<C> {
    fn clone(&self) -> Self {
        Self {
            capture_ids: self.capture_ids.clone(),
            capture_neighbors: self.capture_neighbors,
            num_random: self.num_random,
            random_seed: self.random_seed,
            capture_all_active: self.capture_all_active,
            vertex_value_constraint: self.vertex_value_constraint.clone(),
            message_constraint: self.message_constraint.clone(),
            catch_exceptions: self.catch_exceptions,
            exception_policy: self.exception_policy,
            superstep_filter: self.superstep_filter.clone(),
            max_captures: self.max_captures,
            codec: self.codec,
            capture_master: self.capture_master,
        }
    }
}

impl<C: Computation> Default for DebugConfig<C> {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl<C: Computation> DebugConfig<C> {
    /// Starts a builder with paper defaults: nothing captured except
    /// exceptions, all supersteps eligible, JSON traces, a one-million
    /// capture safety net, and abort-on-exception semantics.
    pub fn builder() -> DebugConfigBuilder<C> {
        DebugConfigBuilder {
            config: DebugConfig {
                capture_ids: Vec::new(),
                capture_neighbors: false,
                num_random: 0,
                random_seed: 0x9e3779b97f4a7c15,
                capture_all_active: false,
                vertex_value_constraint: None,
                message_constraint: None,
                catch_exceptions: true,
                exception_policy: ExceptionPolicy::Abort,
                superstep_filter: SuperstepFilter::All,
                max_captures: 1_000_000,
                codec: TraceCodec::JsonLines,
                capture_master: true,
            },
        }
    }

    /// Whether any capture can only be decided *after* `compute()` runs
    /// (constraints, exceptions, capture-all). These configs make the
    /// instrumenter snapshot every vertex's pre-compute state, which is
    /// where most of the measured overhead comes from.
    pub fn has_posthoc_captures(&self) -> bool {
        self.capture_all_active
            || self.vertex_value_constraint.is_some()
            || self.message_constraint.is_some()
            || self.catch_exceptions
    }

    /// Whether this config selects any vertices up front.
    pub fn has_preselected_captures(&self) -> bool {
        !self.capture_ids.is_empty() || self.num_random > 0
    }

    /// One-line-per-feature human description, used by the Table 3
    /// regeneration and the GUI header.
    pub fn describe(&self) -> Vec<String> {
        let mut out = Vec::new();
        if !self.capture_ids.is_empty() {
            out.push(format!(
                "captures {} specified vertices{}",
                self.capture_ids.len(),
                if self.capture_neighbors { " and their neighbors" } else { "" }
            ));
        }
        if self.num_random > 0 {
            out.push(format!(
                "captures {} random vertices{} (seed {})",
                self.num_random,
                if self.capture_neighbors { " and their neighbors" } else { "" },
                self.random_seed
            ));
        }
        if self.capture_all_active {
            out.push("captures all active vertices".to_string());
        }
        if self.vertex_value_constraint.is_some() {
            out.push("checks a vertex value constraint".to_string());
        }
        if self.message_constraint.is_some() {
            out.push("checks a message value constraint".to_string());
        }
        if self.catch_exceptions {
            out.push(format!("captures exceptions ({:?})", self.exception_policy));
        }
        if self.superstep_filter != SuperstepFilter::All {
            out.push(format!("supersteps: {:?}", self.superstep_filter));
        }
        out.push(format!("max captures: {}", self.max_captures));
        out
    }

    /// The trace codec this config selects.
    pub fn codec(&self) -> TraceCodec {
        self.codec
    }
}

impl<C: Computation> fmt::Debug for DebugConfig<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DebugConfig")
            .field("capture_ids", &self.capture_ids)
            .field("capture_neighbors", &self.capture_neighbors)
            .field("num_random", &self.num_random)
            .field("capture_all_active", &self.capture_all_active)
            .field("vertex_value_constraint", &self.vertex_value_constraint.is_some())
            .field("message_constraint", &self.message_constraint.is_some())
            .field("catch_exceptions", &self.catch_exceptions)
            .field("superstep_filter", &self.superstep_filter)
            .field("max_captures", &self.max_captures)
            .field("codec", &self.codec)
            .finish()
    }
}

/// Fluent builder for [`DebugConfig`].
pub struct DebugConfigBuilder<C: Computation> {
    config: DebugConfig<C>,
}

impl<C: Computation> DebugConfigBuilder<C> {
    /// Capture the vertices with these ids (category 1).
    pub fn capture_ids(mut self, ids: impl IntoIterator<Item = C::Id>) -> Self {
        self.config.capture_ids.extend(ids);
        self
    }

    /// Capture `n` randomly sampled vertices (category 2). The sample is
    /// deterministic in `seed`, so reruns capture the same vertices.
    pub fn capture_random(mut self, n: usize, seed: u64) -> Self {
        self.config.num_random = n;
        self.config.random_seed = seed;
        self
    }

    /// Also capture the neighbors of every specified/random vertex.
    pub fn capture_neighbors(mut self, yes: bool) -> Self {
        self.config.capture_neighbors = yes;
        self
    }

    /// Capture every active vertex (used in the paper's MWM scenario).
    pub fn capture_all_active(mut self, yes: bool) -> Self {
        self.config.capture_all_active = yes;
        self
    }

    /// Install a vertex-value constraint (category 3).
    pub fn vertex_value_constraint<F>(mut self, constraint: F) -> Self
    where
        F: Fn(&C::VValue, &C::Id, u64) -> bool + Send + Sync + 'static,
    {
        self.config.vertex_value_constraint = Some(Arc::new(constraint));
        self
    }

    /// Install a message constraint (category 4).
    pub fn message_constraint<F>(mut self, constraint: F) -> Self
    where
        F: Fn(&C::Message, &C::Id, &C::Id, u64) -> bool + Send + Sync + 'static,
    {
        self.config.message_constraint = Some(Arc::new(constraint));
        self
    }

    /// Enable/disable exception capture (category 5; on by default).
    pub fn catch_exceptions(mut self, yes: bool) -> Self {
        self.config.catch_exceptions = yes;
        self
    }

    /// What happens to the job after an exception is captured.
    pub fn exception_policy(mut self, policy: ExceptionPolicy) -> Self {
        self.config.exception_policy = policy;
        self
    }

    /// Restrict capturing to a subset of supersteps.
    pub fn supersteps(mut self, filter: SuperstepFilter) -> Self {
        self.config.superstep_filter = filter;
        self
    }

    /// Adjust the safety-net threshold after which Graft stops capturing.
    pub fn max_captures(mut self, max: u64) -> Self {
        self.config.max_captures = max;
        self
    }

    /// Choose the on-disk trace encoding.
    pub fn codec(mut self, codec: TraceCodec) -> Self {
        self.config.codec = codec;
        self
    }

    /// Enable/disable master-context capture (on by default).
    pub fn capture_master(mut self, yes: bool) -> Self {
        self.config.capture_master = yes;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> DebugConfig<C> {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graft_pregel::{Computation, ContextOf, VertexHandleOf};

    struct Dummy;
    impl Computation for Dummy {
        type Id = u64;
        type VValue = i64;
        type EValue = ();
        type Message = i64;
        fn compute(
            &self,
            _v: &mut VertexHandleOf<'_, Self>,
            _m: &[i64],
            _c: &mut ContextOf<'_, Self>,
        ) {
        }
    }

    #[test]
    fn superstep_filters() {
        assert!(SuperstepFilter::All.matches(0));
        assert!(SuperstepFilter::After(500).matches(500));
        assert!(!SuperstepFilter::After(500).matches(499));
        assert!(SuperstepFilter::Range { from: 2, to: 4 }.matches(4));
        assert!(!SuperstepFilter::Range { from: 2, to: 4 }.matches(5));
        assert!(SuperstepFilter::Set(vec![1, 41]).matches(41));
        assert!(!SuperstepFilter::Set(vec![1, 41]).matches(2));
    }

    #[test]
    fn builder_collects_all_features() {
        let config = DebugConfig::<Dummy>::builder()
            .capture_ids([672, 673])
            .capture_random(5, 7)
            .capture_neighbors(true)
            .vertex_value_constraint(|value, _, _| *value >= 0)
            .message_constraint(|msg, _, _, _| *msg >= 0)
            .supersteps(SuperstepFilter::After(10))
            .max_captures(99)
            .codec(TraceCodec::Binary)
            .build();
        assert_eq!(config.capture_ids, vec![672, 673]);
        assert!(config.capture_neighbors);
        assert_eq!(config.num_random, 5);
        assert!(config.has_posthoc_captures());
        assert!(config.has_preselected_captures());
        assert_eq!(config.max_captures, 99);
        assert_eq!(config.codec(), TraceCodec::Binary);
        let description = config.describe().join("; ");
        assert!(description.contains("2 specified"));
        assert!(description.contains("5 random"));
        assert!(description.contains("message value constraint"));
    }

    #[test]
    fn default_config_only_catches_exceptions() {
        let config = DebugConfig::<Dummy>::default();
        assert!(!config.has_preselected_captures());
        assert!(config.catch_exceptions);
        assert!(config.has_posthoc_captures());
        assert_eq!(config.exception_policy, ExceptionPolicy::Abort);
    }

    #[test]
    fn constraints_evaluate() {
        let config = DebugConfig::<Dummy>::builder()
            .message_constraint(|msg, _src, _dst, _ss| *msg >= 0)
            .build();
        let c = config.message_constraint.as_ref().unwrap();
        assert!(c(&5, &1, &2, 0));
        assert!(!c(&-5, &1, &2, 0));
    }
}
