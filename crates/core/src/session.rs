//! The debug session: loads a run's traces and supports the
//! superstep-by-superstep inspection workflow of the Graft GUI.

use std::collections::BTreeMap;
use std::sync::Arc;

use graft_dfs::{FileSystem, FsError};
use graft_pregel::Computation;

use crate::reproduce::{ReproducedContext, ReproducedMaster};
use crate::trace::{
    decode_master_records, decode_vertex_records, master_trace_path, meta_path, result_path,
    worker_trace_path, JobMeta, JobResultRecord, MasterTrace, VertexTraceOf,
};
use crate::views::node_link::NodeLinkView;
use crate::views::tabular::TabularView;
use crate::views::violations::ViolationsView;

/// Errors from opening or querying a debug session.
#[derive(Debug)]
pub enum SessionError {
    /// The trace file system failed.
    Fs(FsError),
    /// A trace file could not be decoded.
    Decode {
        /// Which file failed.
        path: String,
        /// Decoder error text.
        error: String,
    },
    /// No capture exists for the requested vertex and superstep.
    NoSuchCapture {
        /// The requested vertex (rendered).
        vertex: String,
        /// The requested superstep.
        superstep: u64,
    },
    /// No master context was captured for the requested superstep.
    NoMasterCapture(u64),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Fs(e) => write!(f, "trace file system error: {e}"),
            SessionError::Decode { path, error } => write!(f, "cannot decode {path}: {error}"),
            SessionError::NoSuchCapture { vertex, superstep } => {
                write!(f, "no capture for vertex {vertex} in superstep {superstep}")
            }
            SessionError::NoMasterCapture(s) => {
                write!(f, "no master capture for superstep {s}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<FsError> for SessionError {
    fn from(e: FsError) -> Self {
        SessionError::Fs(e)
    }
}

/// The red/green M, V, E indicator boxes of the GUI (Figure 3): whether
/// any message violation, vertex-value violation, or exception occurred
/// in a given superstep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Indicators {
    /// A message constraint was violated ("M" box red).
    pub message_violation: bool,
    /// A vertex-value constraint was violated ("V" box red).
    pub value_violation: bool,
    /// An exception was raised ("E" box red).
    pub exception: bool,
}

impl Indicators {
    /// True when all three boxes are green.
    pub fn all_green(&self) -> bool {
        !self.message_violation && !self.value_violation && !self.exception
    }
}

/// Text search over captured contexts (the Tabular view's search box).
#[derive(Clone, Debug, Default)]
pub struct SearchQuery {
    /// Match the vertex id (rendered with `Display`).
    pub id: Option<String>,
    /// Match any out-neighbor's id.
    pub neighbor: Option<String>,
    /// Substring of the `Debug`-rendered vertex value (before or after).
    pub value_contains: Option<String>,
    /// Substring of any `Debug`-rendered sent message.
    pub sent_contains: Option<String>,
    /// Substring of any `Debug`-rendered received message.
    pub received_contains: Option<String>,
}

impl SearchQuery {
    /// Query matching a vertex id exactly.
    pub fn by_id(id: impl std::fmt::Display) -> Self {
        Self { id: Some(id.to_string()), ..Self::default() }
    }

    /// Query matching vertices adjacent to `id`.
    pub fn by_neighbor(id: impl std::fmt::Display) -> Self {
        Self { neighbor: Some(id.to_string()), ..Self::default() }
    }

    /// Query matching a substring of the vertex value.
    pub fn value_contains(s: impl Into<String>) -> Self {
        Self { value_contains: Some(s.into()), ..Self::default() }
    }

    /// Whether `trace` satisfies every populated criterion.
    pub fn matches<C: Computation>(&self, trace: &VertexTraceOf<C>) -> bool {
        if let Some(id) = &self.id {
            if trace.vertex.to_string() != *id {
                return false;
            }
        }
        if let Some(neighbor) = &self.neighbor {
            if !trace.edges.iter().any(|(t, _)| t.to_string() == *neighbor) {
                return false;
            }
        }
        if let Some(needle) = &self.value_contains {
            let before = format!("{:?}", trace.value_before);
            let after = format!("{:?}", trace.value_after);
            if !before.contains(needle.as_str()) && !after.contains(needle.as_str()) {
                return false;
            }
        }
        if let Some(needle) = &self.sent_contains {
            if !trace.outgoing.iter().any(|(_, m)| format!("{m:?}").contains(needle.as_str())) {
                return false;
            }
        }
        if let Some(needle) = &self.received_contains {
            if !trace.incoming.iter().any(|m| format!("{m:?}").contains(needle.as_str())) {
                return false;
            }
        }
        true
    }
}

/// A loaded Graft run: every captured vertex context grouped by
/// superstep, the master traces, and the job metadata/result.
pub struct DebugSession<C: Computation> {
    meta: JobMeta,
    result: Option<JobResultRecord>,
    by_superstep: BTreeMap<u64, Vec<VertexTraceOf<C>>>,
    master: BTreeMap<u64, MasterTrace>,
}

impl<C: Computation> DebugSession<C> {
    /// Loads the traces a [`crate::GraftRunner`] wrote under `root`.
    pub fn open(fs: Arc<dyn FileSystem>, root: &str) -> Result<Self, SessionError> {
        let meta_bytes = fs.read_all(&meta_path(root))?;
        let meta: JobMeta = serde_json::from_slice(&meta_bytes)
            .map_err(|e| SessionError::Decode { path: meta_path(root), error: e.to_string() })?;

        let mut by_superstep: BTreeMap<u64, Vec<VertexTraceOf<C>>> = BTreeMap::new();
        for worker in 0..meta.num_workers {
            let path = worker_trace_path(root, worker);
            if !fs.exists(&path) {
                continue;
            }
            let bytes = fs.read_all(&path)?;
            let records: Vec<VertexTraceOf<C>> = decode_vertex_records(meta.codec(), &bytes)
                .map_err(|error| SessionError::Decode { path: path.clone(), error })?;
            for record in records {
                by_superstep.entry(record.superstep).or_default().push(record);
            }
        }
        for traces in by_superstep.values_mut() {
            traces.sort_by_key(|a| a.vertex);
        }

        let mut master = BTreeMap::new();
        let master_path = master_trace_path(root);
        if fs.exists(&master_path) {
            let bytes = fs.read_all(&master_path)?;
            let records: Vec<MasterTrace> = decode_master_records(meta.codec(), &bytes)
                .map_err(|error| SessionError::Decode { path: master_path, error })?;
            for record in records {
                master.insert(record.superstep, record);
            }
        }

        let result = if fs.exists(&result_path(root)) {
            let bytes = fs.read_all(&result_path(root))?;
            Some(serde_json::from_slice(&bytes).map_err(|e| SessionError::Decode {
                path: result_path(root),
                error: e.to_string(),
            })?)
        } else {
            None
        };

        Ok(Self { meta, result, by_superstep, master })
    }

    /// Job metadata.
    pub fn meta(&self) -> &JobMeta {
        &self.meta
    }

    /// Terminal job status, if the job finished.
    pub fn result(&self) -> Option<&JobResultRecord> {
        self.result.as_ref()
    }

    /// The supersteps that have at least one capture, in order.
    pub fn supersteps(&self) -> Vec<u64> {
        self.by_superstep.keys().copied().collect()
    }

    /// Total captured contexts.
    pub fn total_captures(&self) -> usize {
        self.by_superstep.values().map(Vec::len).sum()
    }

    /// Captures in `superstep`, sorted by vertex id.
    pub fn captured_at(&self, superstep: u64) -> &[VertexTraceOf<C>] {
        self.by_superstep.get(&superstep).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The capture of one vertex in one superstep.
    pub fn vertex_at(&self, vertex: C::Id, superstep: u64) -> Option<&VertexTraceOf<C>> {
        self.captured_at(superstep).iter().find(|t| t.vertex == vertex)
    }

    /// Every capture in the session, superstep-ordered then vertex-ordered.
    /// This is the analyzer's raw material: the observed message pool for
    /// algebraic combiner checks and the replay corpus for the
    /// message-order race detector.
    pub fn all_traces(&self) -> impl Iterator<Item = &VertexTraceOf<C>> {
        self.by_superstep.values().flat_map(|traces| traces.iter())
    }

    /// Every capture of `vertex`, across supersteps in order — the
    /// "replay the algorithm's effects superstep by superstep" workflow.
    pub fn history(&self, vertex: C::Id) -> Vec<&VertexTraceOf<C>> {
        self.by_superstep
            .values()
            .flat_map(|traces| traces.iter().filter(|t| t.vertex == vertex))
            .collect()
    }

    /// The first captured superstep, if any.
    pub fn first_superstep(&self) -> Option<u64> {
        self.by_superstep.keys().next().copied()
    }

    /// The last captured superstep, if any.
    pub fn last_superstep(&self) -> Option<u64> {
        self.by_superstep.keys().next_back().copied()
    }

    /// The next captured superstep after `superstep` (the GUI's "Next
    /// superstep" button).
    pub fn next_superstep(&self, superstep: u64) -> Option<u64> {
        self.by_superstep.range(superstep + 1..).next().map(|(s, _)| *s)
    }

    /// The previous captured superstep (the "Previous superstep" button).
    pub fn prev_superstep(&self, superstep: u64) -> Option<u64> {
        self.by_superstep.range(..superstep).next_back().map(|(s, _)| *s)
    }

    /// The M/V/E indicator state for one superstep.
    pub fn indicators(&self, superstep: u64) -> Indicators {
        let mut ind = Indicators::default();
        for trace in self.captured_at(superstep) {
            for violation in &trace.violations {
                match violation.kind {
                    crate::trace::ViolationKind::Message => ind.message_violation = true,
                    crate::trace::ViolationKind::VertexValue => ind.value_violation = true,
                }
            }
            if trace.exception.is_some() {
                ind.exception = true;
            }
        }
        ind
    }

    /// All captures with at least one constraint violation.
    pub fn violations(&self) -> Vec<&VertexTraceOf<C>> {
        self.by_superstep
            .values()
            .flat_map(|traces| traces.iter().filter(|t| !t.violations.is_empty()))
            .collect()
    }

    /// All captures whose `compute()` raised an exception.
    pub fn exceptions(&self) -> Vec<&VertexTraceOf<C>> {
        self.by_superstep
            .values()
            .flat_map(|traces| traces.iter().filter(|t| t.exception.is_some()))
            .collect()
    }

    /// Searches captures (optionally restricted to one superstep).
    pub fn search(&self, superstep: Option<u64>, query: &SearchQuery) -> Vec<&VertexTraceOf<C>> {
        match superstep {
            Some(s) => self.captured_at(s).iter().filter(|t| query.matches::<C>(t)).collect(),
            None => self
                .by_superstep
                .values()
                .flat_map(|traces| traces.iter().filter(|t| query.matches::<C>(t)))
                .collect(),
        }
    }

    /// Captured master contexts by superstep.
    pub fn master_traces(&self) -> impl Iterator<Item = &MasterTrace> {
        self.master.values()
    }

    /// The master context before `superstep`.
    pub fn master_at(&self, superstep: u64) -> Option<&MasterTrace> {
        self.master.get(&superstep)
    }

    /// The Node-link view of one superstep (Figure 3).
    pub fn node_link_view(&self, superstep: u64) -> NodeLinkView<'_, C> {
        NodeLinkView::new(self, superstep)
    }

    /// The Tabular view of one superstep (Figure 4).
    pub fn tabular_view(&self, superstep: u64) -> TabularView<'_, C> {
        TabularView::new(self, superstep)
    }

    /// The Violations and Exceptions view across all supersteps
    /// (Figure 5).
    pub fn violations_view(&self) -> ViolationsView<'_, C> {
        ViolationsView::new(self)
    }

    /// The "Reproduce Vertex Context" button: a handle that can replay
    /// the captured compute call in-process or generate test source.
    pub fn reproduce_vertex(
        &self,
        vertex: C::Id,
        superstep: u64,
    ) -> Result<ReproducedContext<C>, SessionError> {
        let trace = self
            .vertex_at(vertex, superstep)
            .ok_or_else(|| SessionError::NoSuchCapture { vertex: vertex.to_string(), superstep })?;
        Ok(ReproducedContext::new(trace.clone(), self.meta.clone()))
    }

    /// The "Reproduce Master Context" button.
    pub fn reproduce_master(&self, superstep: u64) -> Result<ReproducedMaster, SessionError> {
        let trace = self.master_at(superstep).ok_or(SessionError::NoMasterCapture(superstep))?;
        Ok(ReproducedMaster::new(trace.clone(), self.meta.clone()))
    }
}
