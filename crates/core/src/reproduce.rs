//! The Context Reproducer (paper Section 3.3): given a captured trace,
//! either (a) replay the exact `compute()` call in-process through the
//! single-vertex harness, or (b) generate Rust test source the user can
//! paste into their own test suite — the analogue of the JUnit + Mockito
//! files in the paper's Figure 6.

use std::collections::BTreeMap;

use graft_pregel::harness::{HarnessResult, VertexTestHarness};
use graft_pregel::Computation;

use crate::codegen::{agg_value_literal, clean_type_name, debug_literal, Template};
use crate::trace::{JobMeta, MasterTrace, VertexTraceOf};

/// How faithfully an in-process replay reproduced the recorded behaviour.
///
/// For deterministic `compute()` functions (which is what the paper's
/// replay approach assumes — Section 7 discusses the external-data
/// caveat), every field should match.
#[derive(Debug)]
pub struct FidelityReport {
    /// Replayed value-after equals the recorded one.
    pub value_matches: bool,
    /// Replayed outgoing messages equal the recorded ones (order included).
    pub outgoing_matches: bool,
    /// Replayed halt vote equals the recorded one.
    pub halt_matches: bool,
    /// Replay panicked iff the original panicked.
    pub exception_matches: bool,
    /// Human-readable differences.
    pub diffs: Vec<String>,
}

impl FidelityReport {
    /// True when the replay reproduced the recorded behaviour exactly.
    pub fn is_faithful(&self) -> bool {
        self.value_matches && self.outgoing_matches && self.halt_matches && self.exception_matches
    }
}

/// A captured vertex context ready to be replayed or exported.
pub struct ReproducedContext<C: Computation> {
    trace: VertexTraceOf<C>,
    meta: JobMeta,
}

impl<C: Computation> ReproducedContext<C> {
    pub(crate) fn new(trace: VertexTraceOf<C>, meta: JobMeta) -> Self {
        Self { trace, meta }
    }

    /// The underlying trace record.
    pub fn trace(&self) -> &VertexTraceOf<C> {
        &self.trace
    }

    /// Builds the harness that replicates this context, leaving the
    /// caller room to tweak it before running.
    pub fn harness(&self, computation: C) -> VertexTestHarness<C> {
        let mut harness = VertexTestHarness::new(computation)
            .global(self.trace.global)
            .vertex(self.trace.vertex, self.trace.value_before.clone(), self.trace.edges.clone())
            .incoming(self.trace.incoming.clone());
        for (name, value) in &self.trace.aggregators {
            harness = harness.aggregator(name, value.clone());
        }
        harness
    }

    /// Replays the captured `compute()` call in-process. This is the
    /// moral equivalent of stepping through the generated JUnit test in
    /// an IDE — combine it with `graft::steptrace` for line-level events.
    pub fn replay(&self, computation: C) -> HarnessResult<C> {
        self.harness(computation).run()
    }

    /// Replays and diffs against the recorded behaviour.
    pub fn verify_fidelity(&self, computation: C) -> FidelityReport {
        let result = self.replay(computation);
        let mut diffs = Vec::new();

        let value_matches = result.value_after == self.trace.value_after;
        if !value_matches {
            diffs.push(format!(
                "value after: recorded {:?}, replayed {:?}",
                self.trace.value_after, result.value_after
            ));
        }
        let outgoing_matches = result.outgoing == self.trace.outgoing;
        if !outgoing_matches {
            diffs.push(format!(
                "outgoing: recorded {} message(s), replayed {}",
                self.trace.outgoing.len(),
                result.outgoing.len()
            ));
        }
        let halt_matches = result.voted_halt == self.trace.halted_after;
        if !halt_matches {
            diffs.push(format!(
                "halt vote: recorded {}, replayed {}",
                self.trace.halted_after, result.voted_halt
            ));
        }
        let exception_matches = result.panic.is_some() == self.trace.exception.is_some();
        if !exception_matches {
            diffs.push(format!(
                "exception: recorded {:?}, replayed {:?}",
                self.trace.exception.as_ref().map(|e| &e.message),
                result.panic
            ));
        }
        FidelityReport { value_matches, outgoing_matches, halt_matches, exception_matches, diffs }
    }

    /// Generates Rust test source reproducing this context — the Figure 6
    /// equivalent. The generated function is generic over the computation
    /// value so the user supplies their own constructor.
    pub fn generate_test_source(&self) -> String {
        let t = &self.trace;
        let edges = t
            .edges
            .iter()
            .map(|(target, value)| format!("({}, {})", debug_literal(target), debug_literal(value)))
            .collect::<Vec<_>>()
            .join(", ");
        let incoming = t.incoming.iter().map(debug_literal).collect::<Vec<_>>().join(", ");
        let outgoing = t
            .outgoing
            .iter()
            .map(|(target, message)| {
                format!("({}, {})", debug_literal(target), debug_literal(message))
            })
            .collect::<Vec<_>>()
            .join(", ");
        let aggregator_lines = t
            .aggregators
            .iter()
            .map(|(name, value)| {
                format!("        .aggregator({name:?}, {})\n", agg_value_literal(value))
            })
            .collect::<String>();

        let (id_ty, value_ty, edge_ty, message_ty) = (
            clean_type_name(&self.meta.value_types.0),
            clean_type_name(&self.meta.value_types.1),
            clean_type_name(&self.meta.value_types.2),
            clean_type_name(&self.meta.value_types.3),
        );

        let mut vars: BTreeMap<&str, String> = BTreeMap::new();
        vars.insert("computation", self.meta.computation.clone());
        vars.insert("fn_name", format!("reproduce_vertex_{}_superstep_{}", t.vertex, t.superstep));
        vars.insert("vertex_id", debug_literal(&t.vertex));
        vars.insert("superstep", t.superstep.to_string());
        vars.insert("num_vertices", t.global.num_vertices.to_string());
        vars.insert("num_edges", t.global.num_edges.to_string());
        vars.insert("value_before", debug_literal(&t.value_before));
        vars.insert("value_after", debug_literal(&t.value_after));
        vars.insert("edges", edges);
        vars.insert("incoming", incoming);
        vars.insert("outgoing", outgoing);
        vars.insert("aggregator_lines", aggregator_lines);
        vars.insert("halted", t.halted_after.to_string());
        vars.insert("id_ty", id_ty);
        vars.insert("value_ty", value_ty);
        vars.insert("edge_ty", edge_ty);
        vars.insert("message_ty", message_ty);

        VERTEX_TEST_TEMPLATE.render(&vars).expect("vertex test template variables are bound")
    }
}

static VERTEX_TEST_TEMPLATE: Template = Template::new(
    r#"// Generated by Graft: reproduces the exact context under which
// `${computation}::compute()` ran for vertex ${vertex_id} in superstep ${superstep}.
//
// Call from a #[test] in your crate, passing your computation instance:
//
//     #[test]
//     fn replay_captured_context() {
//         let result = ${fn_name}(${computation}::new(/* your args */));
//         // Step through compute() with your debugger from here, or keep
//         // the assertions below as a regression test.
//     }

#[allow(dead_code)]
pub fn ${fn_name}<C>(computation: C) -> graft_pregel::harness::HarnessResult<C>
where
    C: graft_pregel::Computation<
        Id = ${id_ty},
        VValue = ${value_ty},
        EValue = ${edge_ty},
        Message = ${message_ty},
    >,
{
    use graft_pregel::harness::VertexTestHarness;
    #[allow(unused_imports)]
    use graft_pregel::AggValue;

    let result = VertexTestHarness::new(computation)
        // Default global data the vertex observed (mock GraphState).
        .superstep(${superstep})
        .graph_totals(${num_vertices}, ${num_edges})
        // Aggregators the vertex observed (mock WorkerAggregatorUsage).
${aggregator_lines}        // The vertex's value and outgoing edges at compute() entry.
        .vertex(${vertex_id}, ${value_before}, vec![${edges}])
        // The vertex's incoming messages.
        .incoming(vec![${incoming}])
        .run();

    // Recorded in the original run:
    //   value after compute : ${value_after}
    //   outgoing messages   : [${outgoing}]
    //   voted to halt       : ${halted}
    assert_eq!(result.value_after, ${value_after});
    assert_eq!(result.outgoing, vec![${outgoing}]);
    assert_eq!(result.voted_halt, ${halted});
    result
}
"#,
);

/// Generates vertex test source from a type-erased trace — the same
/// Figure 6 template [`ReproducedContext::generate_test_source`] renders,
/// reachable without the computation's Rust types. This is what the debug
/// server's `/jobs/{id}/repro/{vertex}/{ss}` download serves: values are
/// rendered with [`crate::codegen::json_literal`], so primitives are
/// exact and composite values come out as their JSON text for the user to
/// adapt.
pub fn untyped_test_source(trace: &crate::untyped::UntypedTrace, meta: &JobMeta) -> String {
    use crate::codegen::json_literal;
    let raw = trace.raw();
    let pair_list = |field: &str| {
        raw[field]
            .as_array()
            .map(|pairs| {
                pairs
                    .iter()
                    .map(|pair| {
                        format!(
                            "({}, {})",
                            pair.get(0).map(json_literal).unwrap_or_default(),
                            pair.get(1).map(json_literal).unwrap_or_default()
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ")
            })
            .unwrap_or_default()
    };
    let incoming = raw["incoming"]
        .as_array()
        .map(|msgs| msgs.iter().map(json_literal).collect::<Vec<_>>().join(", "))
        .unwrap_or_default();
    let aggregator_lines = raw["aggregators"]
        .as_array()
        .map(|aggs| {
            aggs.iter()
                .filter_map(|pair| {
                    let name = pair.get(0)?.as_str()?;
                    let literal = agg_literal_from_json(pair.get(1)?)?;
                    Some(format!("        .aggregator({name:?}, {literal})\n"))
                })
                .collect::<String>()
        })
        .unwrap_or_default();
    let (superstep, num_vertices, num_edges) = trace.global().unwrap_or((trace.superstep(), 0, 0));

    // Vertex ids become part of the function name; anything that is not
    // identifier-safe is folded to '_'.
    let vertex_ident: String =
        trace.vertex().chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();

    let mut vars: BTreeMap<&str, String> = BTreeMap::new();
    vars.insert("computation", meta.computation.clone());
    vars.insert("fn_name", format!("reproduce_vertex_{}_superstep_{}", vertex_ident, superstep));
    vars.insert("vertex_id", json_literal(&raw["vertex"]));
    vars.insert("superstep", superstep.to_string());
    vars.insert("num_vertices", num_vertices.to_string());
    vars.insert("num_edges", num_edges.to_string());
    vars.insert("value_before", json_literal(&raw["value_before"]));
    vars.insert("value_after", json_literal(&raw["value_after"]));
    vars.insert("edges", pair_list("edges"));
    vars.insert("incoming", incoming);
    vars.insert("outgoing", pair_list("outgoing"));
    vars.insert("aggregator_lines", aggregator_lines);
    vars.insert("halted", trace.halted_after().to_string());
    vars.insert("id_ty", clean_type_name(&meta.value_types.0));
    vars.insert("value_ty", clean_type_name(&meta.value_types.1));
    vars.insert("edge_ty", clean_type_name(&meta.value_types.2));
    vars.insert("message_ty", clean_type_name(&meta.value_types.3));
    VERTEX_TEST_TEMPLATE.render(&vars).expect("vertex test template variables are bound")
}

/// Reconstructs an `AggValue` constructor expression from its
/// externally-tagged JSON form (`{"Long":3}`, `{"Pair":[1,2.5]}`, …).
fn agg_literal_from_json(value: &serde_json::Value) -> Option<String> {
    let obj = value.as_object()?;
    let (tag, payload) = obj.iter().next()?;
    Some(match tag.as_str() {
        "Long" => format!("AggValue::Long({})", payload.as_i64()?),
        "Double" => format!("AggValue::Double({:?})", payload.as_f64()?),
        "Bool" => format!("AggValue::Bool({})", payload.as_bool()?),
        "Text" => format!("AggValue::Text({:?}.to_string())", payload.as_str()?),
        "Pair" => format!(
            "AggValue::Pair({}, {:?})",
            payload.get(0)?.as_i64()?,
            payload.get(1)?.as_f64()?
        ),
        _ => return None,
    })
}

/// A captured master context ready to be replayed or exported.
pub struct ReproducedMaster {
    trace: MasterTrace,
    meta: JobMeta,
}

impl ReproducedMaster {
    pub(crate) fn new(trace: MasterTrace, meta: JobMeta) -> Self {
        Self { trace, meta }
    }

    /// The underlying master trace.
    pub fn trace(&self) -> &MasterTrace {
        &self.trace
    }

    /// Replays `master.compute()` under the captured aggregator values
    /// and returns `(aggregators after, halted)`.
    pub fn replay<C, M>(&self, master: &M) -> (Vec<(String, graft_pregel::AggValue)>, bool)
    where
        C: Computation,
        M: graft_pregel::MasterComputation<C>,
    {
        let mut registry = graft_pregel::AggregatorRegistry::new();
        master.register_aggregators(&mut registry);
        for (name, value) in &self.trace.aggregators {
            if !registry.contains(name) {
                registry.register_persistent(name, graft_pregel::AggOp::Overwrite, value.clone());
            }
            registry.set(name, value.clone());
        }
        let mut ctx = graft_pregel::MasterContext::new_for_replay(self.trace.global, &mut registry);
        master.compute(&mut ctx);
        let halted = ctx.is_halted();
        (registry.snapshot(), halted)
    }

    /// Generates Rust test source reproducing this master context.
    pub fn generate_test_source(&self) -> String {
        let aggregator_lines = self
            .trace
            .aggregators
            .iter()
            .map(|(name, value)| format!("    //   {name} = {value}\n"))
            .collect::<String>();
        let master_name = self.meta.master.clone().unwrap_or_else(|| "YourMaster".to_string());
        let mut vars: BTreeMap<&str, String> = BTreeMap::new();
        vars.insert("master", master_name);
        vars.insert("superstep", self.trace.superstep.to_string());
        vars.insert("num_vertices", self.trace.global.num_vertices.to_string());
        vars.insert("num_edges", self.trace.global.num_edges.to_string());
        vars.insert("aggregator_lines", aggregator_lines);
        vars.insert("halted", self.trace.halted.to_string());
        vars.insert(
            "aggregator_setup",
            self.trace
                .aggregators
                .iter()
                .map(|(name, value)| {
                    format!(
                        "    registry.register_persistent({name:?}, AggOp::Overwrite, {});\n",
                        agg_value_literal(value)
                    )
                })
                .collect::<String>(),
        );
        MASTER_TEST_TEMPLATE.render(&vars).expect("master test template variables are bound")
    }
}

static MASTER_TEST_TEMPLATE: Template = Template::new(
    r#"// Generated by Graft: reproduces the context of `${master}.compute()`
// at the beginning of superstep ${superstep}.
//
// Aggregator values the master observed:
${aggregator_lines}//
// The master ${halted} halted the job here.

#[allow(dead_code)]
pub fn reproduce_master_superstep_${superstep}<C, M>(master: &M) -> bool
where
    C: graft_pregel::Computation,
    M: graft_pregel::MasterComputation<C>,
{
    use graft_pregel::{AggOp, AggValue, AggregatorRegistry, GlobalData, MasterContext};

    let mut registry = AggregatorRegistry::new();
    master.register_aggregators(&mut registry);
${aggregator_setup}
    let global = GlobalData {
        superstep: ${superstep},
        num_vertices: ${num_vertices},
        num_edges: ${num_edges},
    };
    let mut ctx = MasterContext::new_for_replay(global, &mut registry);
    master.compute(&mut ctx);
    ctx.is_halted()
}
"#,
);
