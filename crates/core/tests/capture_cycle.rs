//! End-to-end tests of the capture → visualize → reproduce cycle on a
//! small deterministic computation.

use std::sync::Arc;

use graft::testing::premade;
use graft::{DebugConfig, ExceptionPolicy, GraftRunner, SearchQuery, SuperstepFilter, TraceCodec};
use graft_dfs::{ClusterFs, ClusterFsConfig, FileSystem, InMemoryFs};
use graft_pregel::{AggOp, AggValue, AggregatorRegistry, Computation, ContextOf, VertexHandleOf};

/// Deterministic program: every vertex accumulates received values and
/// forwards `value + id` for `rounds` supersteps, aggregating a count.
struct Accumulate {
    rounds: u64,
}

impl Computation for Accumulate {
    type Id = u64;
    type VValue = i64;
    type EValue = ();
    type Message = i64;

    fn compute(
        &self,
        vertex: &mut VertexHandleOf<'_, Self>,
        messages: &[i64],
        ctx: &mut ContextOf<'_, Self>,
    ) {
        let sum: i64 = messages.iter().sum();
        *vertex.value_mut() += sum;
        ctx.aggregate("touched", AggValue::Long(1));
        if ctx.superstep() < self.rounds {
            ctx.send_message_to_all_edges(vertex, *vertex.value() + vertex.id() as i64);
        } else {
            vertex.vote_to_halt();
        }
    }

    fn register_aggregators(&self, registry: &mut AggregatorRegistry) {
        registry.register("touched", AggOp::Sum, AggValue::Long(0));
    }
}

#[test]
fn capture_by_id_with_neighbors() {
    let config = DebugConfig::<Accumulate>::builder()
        .capture_ids([3])
        .capture_neighbors(true)
        .catch_exceptions(false)
        .build();
    let run = GraftRunner::new(Accumulate { rounds: 3 }, config)
        .num_workers(3)
        .run(premade::cycle(8, 0i64), "/t/by-id")
        .unwrap();
    assert!(run.outcome.is_ok());

    let session = run.session().unwrap();
    // Vertex 3 and its cycle neighbors 2 and 4, every superstep (4 total).
    assert_eq!(session.supersteps(), vec![0, 1, 2, 3]);
    for superstep in session.supersteps() {
        let ids: Vec<u64> = session.captured_at(superstep).iter().map(|t| t.vertex).collect();
        assert_eq!(ids, vec![2, 3, 4], "superstep {superstep}");
    }
    assert_eq!(run.captures, 12);

    // Reasons distinguish the specified vertex from its neighbors.
    let t3 = session.vertex_at(3, 1).unwrap();
    assert_eq!(t3.reasons, vec![graft::CaptureReason::SpecifiedId]);
    let t2 = session.vertex_at(2, 1).unwrap();
    assert_eq!(t2.reasons, vec![graft::CaptureReason::NeighborOfCaptured]);

    // The captured context carries all five pieces of data.
    assert_eq!(t3.edges.len(), 2);
    assert_eq!(t3.incoming.len(), 2);
    assert_eq!(t3.outgoing.len(), 2);
    assert_eq!(t3.aggregators[0].0, "touched");
    assert_eq!(t3.aggregators[0].1, AggValue::Long(8), "all 8 vertices aggregated in ss 0");
    assert_eq!(t3.global.num_vertices, 8);
    assert_eq!(t3.global.num_edges, 16);
}

#[test]
fn random_capture_is_deterministic_and_sized() {
    for _ in 0..2 {
        let config = DebugConfig::<Accumulate>::builder()
            .capture_random(5, 1234)
            .catch_exceptions(false)
            .build();
        let run = GraftRunner::new(Accumulate { rounds: 0 }, config)
            .num_workers(4)
            .run(premade::cycle(100, 0i64), "/t/random")
            .unwrap();
        let session = run.session().unwrap();
        let ids: Vec<u64> = session.captured_at(0).iter().map(|t| t.vertex).collect();
        assert_eq!(ids.len(), 5);
        // Determinism: the same seed must sample the same vertices.
        let config2 = DebugConfig::<Accumulate>::builder()
            .capture_random(5, 1234)
            .catch_exceptions(false)
            .build();
        let run2 = GraftRunner::new(Accumulate { rounds: 0 }, config2)
            .num_workers(4)
            .run(premade::cycle(100, 0i64), "/t/random2")
            .unwrap();
        let ids2: Vec<u64> =
            run2.session().unwrap().captured_at(0).iter().map(|t| t.vertex).collect();
        assert_eq!(ids, ids2);
    }
}

#[test]
fn message_constraint_flags_offenders_only() {
    // Constraint: messages must stay below 100. With rounds=2 on a cycle
    // of 4, values grow; some sends exceed 100 eventually.
    let config = DebugConfig::<Accumulate>::builder()
        .message_constraint(|m, _s, _d, _ss| *m < 100)
        .catch_exceptions(false)
        .build();
    let run = GraftRunner::new(Accumulate { rounds: 6 }, config)
        .num_workers(2)
        .run(premade::cycle(4, 10i64), "/t/msg")
        .unwrap();
    assert!(run.violations > 0, "values grow past 100 within 6 rounds");
    let session = run.session().unwrap();
    for trace in session.violations() {
        assert!(trace.reasons.contains(&graft::CaptureReason::MessageViolation));
        assert!(!trace.violations.is_empty());
        for violation in &trace.violations {
            assert_eq!(violation.kind, graft::ViolationKind::Message);
            let value: i64 = violation.detail.parse().unwrap();
            assert!(value >= 100, "flagged message {value} should violate");
        }
    }
    // The M indicator is red exactly in supersteps with violations.
    let violating_steps: std::collections::BTreeSet<u64> =
        session.violations().iter().map(|t| t.superstep).collect();
    for superstep in session.supersteps() {
        assert_eq!(
            session.indicators(superstep).message_violation,
            violating_steps.contains(&superstep)
        );
    }
}

#[test]
fn vertex_value_constraint_and_superstep_filter() {
    let config = DebugConfig::<Accumulate>::builder()
        .vertex_value_constraint(|value, _id, _ss| *value < 50)
        .supersteps(SuperstepFilter::After(3))
        .catch_exceptions(false)
        .build();
    let run = GraftRunner::new(Accumulate { rounds: 6 }, config)
        .num_workers(2)
        .run(premade::cycle(4, 10i64), "/t/vv")
        .unwrap();
    let session = run.session().unwrap();
    assert!(session.total_captures() > 0);
    for superstep in session.supersteps() {
        assert!(superstep >= 3, "filter must suppress captures before superstep 3");
        assert!(session.indicators(superstep).value_violation);
    }
}

struct PanicsOnVertex {
    victim: u64,
    at_superstep: u64,
}

impl Computation for PanicsOnVertex {
    type Id = u64;
    type VValue = i64;
    type EValue = ();
    type Message = i64;

    fn compute(
        &self,
        vertex: &mut VertexHandleOf<'_, Self>,
        _messages: &[i64],
        ctx: &mut ContextOf<'_, Self>,
    ) {
        if vertex.id() == self.victim && ctx.superstep() == self.at_superstep {
            panic!("injected failure on vertex {}", self.victim);
        }
        if ctx.superstep() >= 3 {
            vertex.vote_to_halt();
        }
    }
}

#[test]
fn exception_capture_with_abort_policy_preserves_traces() {
    let config = DebugConfig::<PanicsOnVertex>::builder().build();
    let run = GraftRunner::new(PanicsOnVertex { victim: 5, at_superstep: 2 }, config)
        .num_workers(2)
        .run(premade::cycle(8, 0i64), "/t/panic-abort")
        .unwrap();
    // The job failed...
    assert!(run.outcome.is_err());
    assert_eq!(run.exceptions, 1);
    // ...but the capture survived, with message, location, and backtrace.
    let session = run.session().unwrap();
    let exceptions = session.exceptions();
    assert_eq!(exceptions.len(), 1);
    let trace = exceptions[0];
    assert_eq!(trace.vertex, 5);
    assert_eq!(trace.superstep, 2);
    let info = trace.exception.as_ref().unwrap();
    assert!(info.message.contains("injected failure on vertex 5"));
    assert!(info.message.contains("capture_cycle.rs"), "panic location: {}", info.message);
    assert!(info.backtrace.is_some());
    assert!(session.indicators(2).exception);
    // result.json records the failure.
    let result = session.result().unwrap();
    assert!(result.error.as_ref().unwrap().contains("vertex 5"));
}

#[test]
fn exception_capture_with_suppress_policy_lets_job_finish() {
    let config = DebugConfig::<PanicsOnVertex>::builder()
        .exception_policy(ExceptionPolicy::SuppressAndHalt)
        .build();
    let run = GraftRunner::new(PanicsOnVertex { victim: 5, at_superstep: 2 }, config)
        .num_workers(2)
        .run(premade::cycle(8, 0i64), "/t/panic-suppress")
        .unwrap();
    assert!(run.outcome.is_ok(), "suppressed exception must not fail the job");
    assert_eq!(run.exceptions, 1);
    let session = run.session().unwrap();
    assert_eq!(session.exceptions().len(), 1);
    assert!(session.result().unwrap().error.is_none());
}

#[test]
fn capture_all_active_and_max_captures_safety_net() {
    let config = DebugConfig::<Accumulate>::builder()
        .capture_all_active(true)
        .catch_exceptions(false)
        .max_captures(10)
        .build();
    let run = GraftRunner::new(Accumulate { rounds: 5 }, config)
        .num_workers(2)
        .run(premade::cycle(8, 0i64), "/t/all")
        .unwrap();
    assert_eq!(run.captures, 10, "safety net caps captures");
    assert!(run.capture_limit_hit);
    let session = run.session().unwrap();
    assert_eq!(session.total_captures(), 10);
    assert!(session.result().unwrap().capture_limit_hit);
}

#[test]
fn replay_reproduces_the_exact_context() {
    let config =
        DebugConfig::<Accumulate>::builder().capture_ids([2, 5]).catch_exceptions(false).build();
    let run = GraftRunner::new(Accumulate { rounds: 4 }, config)
        .num_workers(3)
        .run(premade::cycle(8, 3i64), "/t/replay")
        .unwrap();
    let session = run.session().unwrap();
    for superstep in session.supersteps() {
        for vertex in [2u64, 5] {
            let reproduced = session.reproduce_vertex(vertex, superstep).unwrap();
            let report = reproduced.verify_fidelity(Accumulate { rounds: 4 });
            assert!(
                report.is_faithful(),
                "vertex {vertex} superstep {superstep}: {:?}",
                report.diffs
            );
        }
    }
}

#[test]
fn generated_test_source_contains_the_context() {
    let config =
        DebugConfig::<Accumulate>::builder().capture_ids([2]).catch_exceptions(false).build();
    let run = GraftRunner::new(Accumulate { rounds: 2 }, config)
        .num_workers(2)
        .run(premade::cycle(4, 3i64), "/t/codegen")
        .unwrap();
    let session = run.session().unwrap();
    let source = session.reproduce_vertex(2, 1).unwrap().generate_test_source();
    assert!(source.contains("pub fn reproduce_vertex_2_superstep_1<C>"));
    assert!(source.contains(".superstep(1)"));
    assert!(source.contains(".graph_totals(4, 8)"));
    assert!(source.contains(".vertex(2, "));
    assert!(source.contains(".incoming(vec!["));
    assert!(source.contains("Id = u64"));
    assert!(source.contains("VValue = i64"));
    assert!(source.contains(".aggregator(\"touched\", AggValue::Long(4))"));
    assert!(source.contains("assert_eq!(result.value_after,"));
}

#[test]
fn views_render_the_captured_world() {
    let config = DebugConfig::<Accumulate>::builder()
        .capture_ids([1])
        .capture_neighbors(true)
        .message_constraint(|m, _s, _d, _ss| *m < 100)
        .catch_exceptions(false)
        .build();
    let run = GraftRunner::new(Accumulate { rounds: 4 }, config)
        .num_workers(2)
        .run(premade::cycle(6, 5i64), "/t/views")
        .unwrap();
    let session = run.session().unwrap();

    let node_link = session.node_link_view(1);
    let (nodes, links) = node_link.layout();
    // 1, 0, 2 captured; stubs 5 and 3 (neighbors of 0 and 2).
    assert_eq!(nodes.iter().filter(|n| n.captured).count(), 3);
    assert_eq!(nodes.iter().filter(|n| !n.captured).count(), 2);
    assert_eq!(links.len(), 6);
    let text = node_link.to_text();
    assert!(text.contains("superstep 1"));
    let dot = node_link.to_dot();
    assert!(dot.starts_with("digraph superstep_1"));
    assert!(dot.contains("shape=point"), "stub neighbors drawn small");
    let html = node_link.to_html();
    assert!(html.contains("<svg"));
    assert!(html.contains("Node-link view"));

    // Stepping.
    assert_eq!(node_link.next().unwrap().superstep(), 2);
    assert_eq!(node_link.prev().unwrap().superstep(), 0);

    // Tabular view with search.
    let tabular = session.tabular_view(1);
    assert_eq!(tabular.rows().len(), 3);
    let filtered = session.tabular_view(1).search(SearchQuery::by_id(1u64));
    assert_eq!(filtered.rows().len(), 1);
    let by_neighbor = session.tabular_view(1).search(SearchQuery::by_neighbor(0u64));
    // Captured vertices adjacent to 0 in the 6-cycle: vertices 1 and 5 —
    // but 5 is not captured, so only vertex 1 matches.
    assert_eq!(by_neighbor.rows().len(), 1);
    let expanded = tabular.expand(1).unwrap();
    assert!(expanded.contains("value before"));
    assert!(expanded.contains("incoming (2)"));

    // Violations view.
    let violations = session.violations_view();
    let text = violations.to_text();
    assert!(text.contains("Violations and Exceptions"));
}

#[test]
fn binary_codec_roundtrips_through_the_session() {
    let config = DebugConfig::<Accumulate>::builder()
        .capture_ids([2])
        .codec(TraceCodec::Binary)
        .catch_exceptions(false)
        .build();
    let run = GraftRunner::new(Accumulate { rounds: 2 }, config)
        .num_workers(2)
        .run(premade::cycle(4, 1i64), "/t/binary")
        .unwrap();
    let session = run.session().unwrap();
    assert_eq!(session.meta().codec(), TraceCodec::Binary);
    assert_eq!(session.total_captures(), 3);
    assert!(session.vertex_at(2, 1).is_some());
}

#[test]
fn traces_survive_on_the_cluster_fs_with_failures() {
    let cluster = Arc::new(ClusterFs::new(ClusterFsConfig {
        num_datanodes: 4,
        replication: 2,
        block_size: 512,
    }));
    let config = DebugConfig::<Accumulate>::builder()
        .capture_all_active(true)
        .catch_exceptions(false)
        .build();
    let run = GraftRunner::new(Accumulate { rounds: 3 }, config)
        .with_fs(cluster.clone())
        .num_workers(2)
        .run(premade::cycle(10, 0i64), "/traces/on-hdfs")
        .unwrap();
    assert!(run.captures > 0);
    // Kill one datanode: with replication 2 the traces must still load.
    cluster.kill_datanode(0).unwrap();
    let session = run.session().unwrap();
    assert_eq!(session.total_captures() as u64, run.captures);
}

#[test]
fn history_walks_a_vertex_across_supersteps() {
    let config =
        DebugConfig::<Accumulate>::builder().capture_ids([4]).catch_exceptions(false).build();
    let run = GraftRunner::new(Accumulate { rounds: 5 }, config)
        .num_workers(2)
        .run(premade::cycle(8, 1i64), "/t/history")
        .unwrap();
    let session = run.session().unwrap();
    let history = session.history(4);
    assert_eq!(history.len(), 6);
    // Superstep chaining: value_after at step s == value_before at s+1.
    for pair in history.windows(2) {
        assert_eq!(pair[0].value_after, pair[1].value_before);
        assert_eq!(pair[0].superstep + 1, pair[1].superstep);
    }
}

#[test]
fn meta_json_is_human_readable_on_the_fs() {
    let fs = Arc::new(InMemoryFs::new());
    let config = DebugConfig::<Accumulate>::builder().capture_ids([1]).build();
    let _run = GraftRunner::new(Accumulate { rounds: 1 }, config)
        .with_fs(fs.clone())
        .num_workers(2)
        .run(premade::cycle(3, 0i64), "/t/meta")
        .unwrap();
    let meta_text = String::from_utf8(fs.read_all("/t/meta/meta.json").unwrap()).unwrap();
    assert!(meta_text.contains("\"computation\": \"Accumulate\""));
    assert!(meta_text.contains("captures 1 specified vertices"));
}
