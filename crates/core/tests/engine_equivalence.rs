//! Engine-equivalence matrix: the persistent-pool executor with
//! sender-side combining must be observationally identical to the
//! pre-pool path (spawn-per-superstep threads, receiver-side combining).
//! For PageRank, SSSP, connected components, and graph coloring, both
//! configurations must produce byte-identical trace directories, equal
//! deterministic `JobStats` counters, and equal result checksums — also
//! when a `FaultPlan` forces checkpoint/restart recovery mid-job.

use std::collections::BTreeMap;
use std::sync::Arc;

use graft::{DebugConfig, GraftRun, GraftRunner};
use graft_algorithms::coloring::{GCValue, GraphColoring, GraphColoringMaster};
use graft_algorithms::components::ConnectedComponents;
use graft_algorithms::pagerank::PageRank;
use graft_algorithms::sssp::ShortestPaths;
use graft_dfs::{ClusterFs, ClusterFsConfig, FileSystem};
use graft_pregel::{CombineStrategy, Computation, ExecutorMode, FaultPlan, Graph};

const TRACE_ROOT: &str = "/traces/equiv";

/// The engine configuration as it was before the persistent pool landed.
const LEGACY: (ExecutorMode, CombineStrategy) =
    (ExecutorMode::SpawnPerSuperstep, CombineStrategy::AtReceiver);
/// The optimized configuration this matrix certifies.
const POOLED: (ExecutorMode, CombineStrategy) =
    (ExecutorMode::PersistentPool, CombineStrategy::AtSender);

fn cluster() -> ClusterFs {
    ClusterFs::new(ClusterFsConfig { num_datanodes: 4, replication: 2, block_size: 256 })
}

/// Same deterministic ring-with-chords family the chaos matrix uses.
fn build_graph<V, E>(n: u64, vertex: impl Fn(u64) -> V, edge: impl Fn(u64) -> E) -> Graph<u64, V, E>
where
    V: graft_pregel::Value,
    E: graft_pregel::Value,
{
    let mut b = Graph::builder();
    for v in 0..n {
        b.add_vertex(v, vertex(v)).unwrap();
    }
    for v in 0..n {
        b.add_edge(v, (v + 1) % n, edge(v)).unwrap();
        b.add_edge(v, (v * 7 + 3) % n, edge(v + 1)).unwrap();
    }
    b.build().unwrap()
}

/// Runs `computation` under one (executor, combining) configuration.
fn run_mode<C, G, F>(
    computation: C,
    graph: G,
    mode: (ExecutorMode, CombineStrategy),
    plan: Option<FaultPlan>,
    customize: F,
) -> (GraftRun<C>, ClusterFs)
where
    C: Computation<Id = u64>,
    G: FnOnce() -> Graph<C::Id, C::VValue, C::EValue>,
    F: FnOnce(GraftRunner<C>) -> GraftRunner<C>,
{
    let cluster = cluster();
    let config = DebugConfig::<C>::builder().capture_all_active(true).build();
    let mut runner = GraftRunner::new(computation, config)
        .with_cluster(cluster.clone())
        .num_workers(4)
        .max_supersteps(40)
        .executor(mode.0)
        .combining(mode.1);
    if let Some(plan) = plan {
        runner = runner.checkpoint_every(2).with_fault_plan(plan);
    }
    let run = customize(runner).run(graph(), TRACE_ROOT).unwrap();
    (run, cluster)
}

/// Every trace file (everything except checkpoints), keyed by path.
fn trace_files(fs: &ClusterFs) -> BTreeMap<String, Vec<u8>> {
    let fs: Arc<dyn FileSystem> = Arc::new(fs.clone());
    fs.list_files_recursive(TRACE_ROOT)
        .unwrap()
        .into_iter()
        .filter(|f| !f.path.contains("/checkpoints/"))
        .map(|f| {
            let bytes = fs.read_all(&f.path).unwrap();
            (f.path, bytes)
        })
        .collect()
}

/// FNV-1a over the sorted (id, value-bits) stream — the same checksum
/// `graft-cli run` prints, so the matrix certifies what users compare.
fn checksum(values: impl Iterator<Item = (u64, u64)>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (id, bits) in values {
        mix(id);
        mix(bits);
    }
    hash
}

/// Asserts the two runs are observationally identical: trace bytes,
/// deterministic stats counters, and result checksums.
fn assert_equivalent<C>(
    legacy: &(GraftRun<C>, ClusterFs),
    pooled: &(GraftRun<C>, ClusterFs),
    value_bits: impl Fn(&C::VValue) -> u64,
    label: &str,
) where
    C: Computation<Id = u64>,
{
    let lo = legacy.0.outcome.as_ref().unwrap();
    let po = pooled.0.outcome.as_ref().unwrap();

    let lsum = checksum(lo.graph.sorted_values().iter().map(|(id, v)| (*id, value_bits(v))));
    let psum = checksum(po.graph.sorted_values().iter().map(|(id, v)| (*id, value_bits(v))));
    assert_eq!(lsum, psum, "{label}: result checksums diverged");

    assert!(lo.stats.same_counters(&po.stats), "{label}: JobStats counters diverged");
    assert_eq!(lo.halt_reason, po.halt_reason, "{label}: halt reasons diverged");

    let lfiles = trace_files(&legacy.1);
    let pfiles = trace_files(&pooled.1);
    assert_eq!(
        lfiles.keys().collect::<Vec<_>>(),
        pfiles.keys().collect::<Vec<_>>(),
        "{label}: trace directory listings diverged"
    );
    for (path, bytes) in &lfiles {
        assert_eq!(bytes, &pfiles[path], "{label}: trace file {path} diverged");
    }
}

#[test]
fn pagerank_pooled_sender_combined_is_bit_identical() {
    let graph = || build_graph(48, |_| 0.0f64, |_| ());
    let legacy = run_mode(PageRank::new(10), graph, LEGACY, None, |r| r);
    let pooled = run_mode(PageRank::new(10), graph, POOLED, None, |r| r);
    assert!(
        PageRank::new(10).use_combiner(),
        "matrix must exercise sender-side combining on a combiner-enabled job"
    );
    assert_equivalent(&legacy, &pooled, |v: &f64| v.to_bits(), "pagerank");
}

#[test]
fn sssp_pooled_sender_combined_is_bit_identical() {
    let graph = || build_graph(48, |_| f64::INFINITY, |v| 1.0 + (v % 5) as f64);
    let legacy = run_mode(ShortestPaths::new(0), graph, LEGACY, None, |r| r);
    let pooled = run_mode(ShortestPaths::new(0), graph, POOLED, None, |r| r);
    assert_equivalent(&legacy, &pooled, |v: &f64| v.to_bits(), "sssp");
}

#[test]
fn components_pooled_sender_combined_is_bit_identical() {
    let graph = || build_graph(48, |v| v, |_| ());
    let legacy = run_mode(ConnectedComponents::new(), graph, LEGACY, None, |r| r);
    let pooled = run_mode(ConnectedComponents::new(), graph, POOLED, None, |r| r);
    assert_equivalent(&legacy, &pooled, |v: &u64| *v, "components");
}

#[test]
fn coloring_pooled_sender_combined_is_bit_identical() {
    // No combiner here: the pooled run must fall back to raw batches and
    // still shuffle/deliver in exactly the legacy order, master included.
    let graph = || build_graph(48, |_| GCValue::default(), |_| ());
    let legacy = run_mode(GraphColoring::new(7), graph, LEGACY, None, |r| {
        r.with_master(GraphColoringMaster)
    });
    let pooled = run_mode(GraphColoring::new(7), graph, POOLED, None, |r| {
        r.with_master(GraphColoringMaster)
    });
    assert!(!GraphColoring::new(7).use_combiner());
    assert_equivalent(
        &legacy,
        &pooled,
        |v: &GCValue| v.color.map(|c| c + 1).unwrap_or(0),
        "coloring",
    );
}

#[test]
fn faulted_runs_recover_identically_across_modes() {
    // A worker kill and a compute panic at different supersteps: both
    // configurations must checkpoint, restore, and replay to the same
    // bytes — and both must actually have recovered.
    let plan = || "kill-worker:1@3; panic@5".parse::<FaultPlan>().unwrap();
    let graph = || build_graph(48, |_| 0.0f64, |_| ());
    let legacy = run_mode(PageRank::new(10), graph, LEGACY, Some(plan()), |r| r);
    let pooled = run_mode(PageRank::new(10), graph, POOLED, Some(plan()), |r| r);
    for (run, label) in [(&legacy, "legacy"), (&pooled, "pooled")] {
        let outcome = run.0.outcome.as_ref().unwrap();
        assert!(outcome.stats.recoveries > 0, "{label}: fault plan never fired");
    }
    assert_equivalent(&legacy, &pooled, |v: &f64| v.to_bits(), "pagerank+faults");
}
