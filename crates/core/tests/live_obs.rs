//! Live-streaming observability end to end: a GraftRunner with
//! `live_flush` enabled must commit an append-only event log plus a
//! monotone sequence of snapshot documents through the simulated DFS —
//! deterministically under the logical clock, and with a watermark that
//! never regresses even when the run recovers from injected faults
//! (under both recovery modes).

use std::sync::Arc;

use graft::{DebugConfig, GraftRun, GraftRunner};
use graft_algorithms::pagerank::PageRank;
use graft_dfs::{ClusterFs, ClusterFsConfig, FileSystem};
use graft_obs::{
    parse_jsonl, snapshot_files, Event, LiveSnapshot, Obs, EVENTS_FILE, STATUS_FINISHED,
    WATERMARK_EVENT,
};
use graft_pregel::{FaultPlan, Graph, RecoveryMode};

const TRACE_ROOT: &str = "/traces/liverun";
const OBS_DIR: &str = "/traces/liverun/obs";

fn pr_graph(n: u64) -> Graph<u64, f64, ()> {
    let mut b = Graph::builder();
    for v in 0..n {
        b.add_vertex(v, 0.0).unwrap();
    }
    for v in 0..n {
        b.add_edge(v, (v + 1) % n, ()).unwrap();
        b.add_edge(v, (v * 7 + 3) % n, ()).unwrap();
    }
    b.build().unwrap()
}

/// Runs PageRank with live flushing under the deterministic clock and
/// returns the run plus the cluster holding the streamed artifacts.
fn run_live(plan: FaultPlan, mode: RecoveryMode) -> (GraftRun<PageRank>, ClusterFs) {
    let cluster =
        ClusterFs::new(ClusterFsConfig { num_datanodes: 4, replication: 2, block_size: 512 });
    let config = DebugConfig::<PageRank>::builder().capture_all_active(true).build();
    let run = GraftRunner::new(PageRank::new(8), config)
        .with_cluster(cluster.clone())
        .with_obs(Obs::deterministic(1_000))
        .live_flush(true)
        .num_workers(4)
        .checkpoint_every(2)
        .recovery_mode(mode)
        .with_fault_plan(plan)
        .run(pr_graph(48), TRACE_ROOT)
        .unwrap();
    (run, cluster)
}

/// All live artifacts of a run, as (path-relative-to-obs, bytes) pairs in
/// a stable order: the event log first, then snapshots by sequence.
fn live_artifacts(cluster: &ClusterFs) -> Vec<(String, Vec<u8>)> {
    let fs: Arc<dyn FileSystem> = Arc::new(cluster.clone());
    let mut out = vec![(
        EVENTS_FILE.to_string(),
        fs.read_all(&format!("{OBS_DIR}/{EVENTS_FILE}")).expect("streamed event log"),
    )];
    for (seq, path) in snapshot_files(fs.as_ref(), OBS_DIR).expect("snapshot listing") {
        out.push((format!("snapshot_{seq}"), fs.read_all(&path).expect("snapshot bytes")));
    }
    out
}

fn snapshots(cluster: &ClusterFs) -> Vec<LiveSnapshot> {
    live_artifacts(cluster)
        .iter()
        .filter(|(name, _)| name.starts_with("snapshot_"))
        .map(|(name, bytes)| {
            serde_json::from_slice(bytes).unwrap_or_else(|e| panic!("{name} parses: {e}"))
        })
        .collect()
}

fn streamed_events(cluster: &ClusterFs) -> Vec<Event> {
    let fs: Arc<dyn FileSystem> = Arc::new(cluster.clone());
    let text =
        String::from_utf8(fs.read_all(&format!("{OBS_DIR}/{EVENTS_FILE}")).unwrap()).unwrap();
    parse_jsonl(&text).expect("streamed event log parses")
}

#[test]
fn deterministic_live_runs_stream_identical_snapshot_sequences() {
    let (run_a, cluster_a) = run_live(FaultPlan::new(), RecoveryMode::Restart);
    let (run_b, cluster_b) = run_live(FaultPlan::new(), RecoveryMode::Restart);
    assert!(run_a.outcome.is_ok() && run_b.outcome.is_ok());

    let a = live_artifacts(&cluster_a);
    let b = live_artifacts(&cluster_b);
    assert!(a.len() > 2, "a live run commits the event log plus several snapshots");
    assert_eq!(
        a.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
        b.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
        "the two runs committed different snapshot sequences"
    );
    for ((name, bytes_a), (_, bytes_b)) in a.iter().zip(&b) {
        assert!(!bytes_a.is_empty(), "{name} must not be empty");
        assert_eq!(bytes_a, bytes_b, "{name} diverged between two identical deterministic runs");
    }
}

#[test]
fn clean_live_run_commits_a_monotone_frontier_and_finishes() {
    let (run, cluster) = run_live(FaultPlan::new(), RecoveryMode::Restart);
    let outcome = run.outcome.as_ref().unwrap();
    assert_snapshots_monotone(&cluster, 0);

    let snaps = snapshots(&cluster);
    let last = snaps.last().unwrap();
    assert_eq!(last.status, STATUS_FINISHED);
    assert_eq!(
        last.watermark,
        Some(outcome.stats.superstep_count() - 1),
        "final frontier covers the run"
    );

    // The streamed log carries one watermark point per completed
    // superstep, in frontier order.
    let frontier: Vec<u64> = streamed_events(&cluster)
        .iter()
        .filter(|e| e.is_point(WATERMARK_EVENT))
        .map(|e| e.attrs["frontier"].parse().unwrap())
        .collect();
    assert_eq!(frontier, (0..outcome.stats.superstep_count()).collect::<Vec<u64>>());
}

/// Asserts the committed snapshots have strictly increasing sequence
/// numbers and a never-regressing watermark, and returns them.
fn assert_snapshots_monotone(cluster: &ClusterFs, want_recoveries: u64) -> Vec<LiveSnapshot> {
    let snaps = snapshots(cluster);
    assert!(snaps.len() >= 2, "expected several snapshots, got {}", snaps.len());
    for pair in snaps.windows(2) {
        assert!(pair[1].seq > pair[0].seq, "snapshot seq must strictly increase");
        assert!(
            pair[1].watermark >= pair[0].watermark,
            "watermark regressed: {:?} -> {:?} (seq {})",
            pair[0].watermark,
            pair[1].watermark,
            pair[1].seq,
        );
    }
    assert_eq!(snaps.last().unwrap().recoveries, want_recoveries, "recoveries in final snapshot");
    snaps
}

#[test]
fn faulted_live_runs_keep_the_watermark_monotone_under_both_recovery_modes() {
    for mode in [RecoveryMode::Restart, RecoveryMode::LogReplay] {
        let (run, cluster) = run_live("kill-worker:1@3".parse().unwrap(), mode);
        let outcome = run.outcome.as_ref().unwrap();
        assert!(outcome.stats.recoveries > 0, "{mode:?}: fault plan never fired");

        let snaps = assert_snapshots_monotone(&cluster, outcome.stats.recoveries);
        assert_eq!(snaps.last().unwrap().status, STATUS_FINISHED, "{mode:?}");

        // Recovery is visible in the streamed channel: full restores log
        // a `recovery` point, confined replays a `recovery.confined`
        // span, and the snapshot counter caught up with them as the
        // frontier advanced.
        let log = streamed_events(&cluster);
        let points =
            log.iter().filter(|e| e.is_point("recovery") || e.is_end("recovery.confined")).count()
                as u64;
        assert_eq!(points, outcome.stats.recoveries, "{mode:?}: recovery events streamed live");
    }
}
