//! Backward compatibility with trace directories written before the
//! binary pipeline: their `meta.json` has no `trace_format` field (it
//! used the since-renamed `codec` key), and readers must auto-detect
//! them as JSON lines.
//!
//! The fixture under `tests/fixtures/legacy_json_trace/` is a committed
//! copy of such a directory; `generate_legacy_fixture` (ignored) rebuilds
//! it from the computation below if the trace schema ever changes.

use std::sync::Arc;

use graft::testing::premade;
use graft::untyped::{JobSummary, UntypedSession};
use graft::{DebugConfig, DebugSession, GraftRunner, JobMeta, TraceCodec};
use graft_dfs::{FileSystem, InMemoryFs};
use graft_pregel::{Computation, ContextOf, VertexHandleOf};

/// Same shape as the fixture's recorded computation: forward `value + 1`
/// around a cycle for two rounds.
struct Relay;

impl Computation for Relay {
    type Id = u64;
    type VValue = i64;
    type EValue = ();
    type Message = i64;

    fn compute(
        &self,
        vertex: &mut VertexHandleOf<'_, Self>,
        messages: &[i64],
        ctx: &mut ContextOf<'_, Self>,
    ) {
        *vertex.value_mut() += messages.iter().sum::<i64>();
        if ctx.superstep() < 2 {
            ctx.send_message_to_all_edges(vertex, *vertex.value() + 1);
        } else {
            vertex.vote_to_halt();
        }
    }
}

const FIXTURE_FILES: &[&str] =
    &["meta.json", "worker_0.trace", "worker_1.trace", "master.trace", "result.json"];

fn fixture_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/legacy_json_trace")
}

/// Loads the committed fixture into an in-memory cluster fs at `/legacy`.
fn load_fixture() -> Arc<dyn FileSystem> {
    let fs: Arc<dyn FileSystem> = Arc::new(InMemoryFs::new());
    for name in FIXTURE_FILES {
        let bytes = std::fs::read(fixture_dir().join(name))
            .unwrap_or_else(|e| panic!("fixture file {name} missing: {e}"));
        fs.write_all(&format!("/legacy/{name}"), &bytes).unwrap();
    }
    fs
}

#[test]
fn legacy_meta_without_trace_format_reads_as_json() {
    let fs = load_fixture();

    // The committed meta.json must really be legacy-shaped: no
    // trace_format key, so detection falls back to JSON lines.
    let meta_bytes = fs.read_all("/legacy/meta.json").unwrap();
    assert!(
        !String::from_utf8_lossy(&meta_bytes).contains("trace_format"),
        "fixture regressed: meta.json must predate the trace_format field"
    );
    let meta: JobMeta = serde_json::from_slice(&meta_bytes).unwrap();
    assert_eq!(meta.trace_format, None);
    assert_eq!(meta.codec(), TraceCodec::JsonLines);

    // Untyped path: summary and full open agree and see the captures.
    let summary = JobSummary::scan(fs.as_ref(), "/legacy").unwrap();
    let session = UntypedSession::open(fs.clone(), "/legacy").unwrap();
    assert_eq!(session.supersteps(), vec![0, 1, 2]);
    assert_eq!(summary.total_captures(), session.total_captures());
    assert_eq!(session.total_captures(), 12, "4 vertices x 3 supersteps");
    let ids: Vec<String> = session.traces_at(1).map(|t| t.vertex()).collect();
    assert_eq!(ids.len(), 4, "all four vertices captured in superstep 1");

    // Typed path: the same auto-detection drives DebugSession.
    let typed = DebugSession::<Relay>::open(fs, "/legacy").unwrap();
    assert_eq!(typed.meta().codec(), TraceCodec::JsonLines);
    assert_eq!(typed.supersteps(), vec![0, 1, 2]);
    let t0 = typed.vertex_at(0, 2).unwrap();
    assert!(t0.halted_after);
}

/// Rebuilds the committed fixture. Run with
/// `cargo test -p graft-core --test legacy_format -- --ignored` and
/// commit the result if the trace schema changes.
#[test]
#[ignore = "fixture generator, not a test"]
fn generate_legacy_fixture() {
    let config = DebugConfig::<Relay>::builder()
        .capture_all_active(true)
        .catch_exceptions(false)
        .codec(TraceCodec::JsonLines)
        .build();
    let run = GraftRunner::new(Relay, config)
        .num_workers(2)
        .run(premade::cycle(4, 0i64), "/gen")
        .unwrap();
    assert!(run.outcome.is_ok());

    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for name in FIXTURE_FILES {
        let mut bytes = run.fs().read_all(&format!("/gen/{name}")).unwrap();
        if *name == "meta.json" {
            // Rewrite to the pre-binary-pipeline schema: the codec lived
            // under a `codec` key and facts had no trace_format entry.
            let text = String::from_utf8(bytes).unwrap();
            let text = text.replace("\"trace_format\": \"JsonLines\"", "\"codec\": \"JsonLines\"");
            let text = text.replace(",\n    \"trace_format\": \"json\"", "");
            assert!(!text.contains("trace_format"), "rewrite missed a key: {text}");
            bytes = text.into_bytes();
        }
        std::fs::write(dir.join(name), bytes).unwrap();
    }
}
