//! End-to-end observability: a GraftRunner with an [`Obs`] attached must
//! export deterministic metric/event artifacts through the simulated DFS,
//! and a faulted run's event log must tell the recovery story — one
//! `recovery` point per rewind plus the `checkpoint.restore` span that
//! paid for it.

use std::sync::Arc;

use graft::{DebugConfig, GraftRun, GraftRunner};
use graft_algorithms::pagerank::PageRank;
use graft_dfs::{ClusterFs, ClusterFsConfig, FileSystem};
use graft_obs::{
    parse_jsonl, to_jsonl, Event, Obs, EVENTS_FILE, METRICS_JSON_FILE, METRICS_PROM_FILE,
};
use graft_pregel::{FaultPlan, Graph};

const TRACE_ROOT: &str = "/traces/obsrun";
/// Where the runner exports the Obs artifacts: `<trace_root>/obs`.
const OBS_DIR: &str = "/traces/obsrun/obs";

fn pr_graph(n: u64) -> Graph<u64, f64, ()> {
    let mut b = Graph::builder();
    for v in 0..n {
        b.add_vertex(v, 0.0).unwrap();
    }
    for v in 0..n {
        b.add_edge(v, (v + 1) % n, ()).unwrap();
        b.add_edge(v, (v * 7 + 3) % n, ()).unwrap();
    }
    b.build().unwrap()
}

/// Runs PageRank with a deterministic logical clock and returns the run,
/// the cluster holding the exported artifacts, and the Obs itself.
fn run_once(plan: FaultPlan) -> (GraftRun<PageRank>, ClusterFs, Arc<Obs>) {
    let cluster =
        ClusterFs::new(ClusterFsConfig { num_datanodes: 4, replication: 2, block_size: 512 });
    let obs = Obs::deterministic(1_000);
    let config = DebugConfig::<PageRank>::builder().capture_all_active(true).build();
    let run = GraftRunner::new(PageRank::new(8), config)
        .with_cluster(cluster.clone())
        .with_obs(Arc::clone(&obs))
        .num_workers(4)
        .checkpoint_every(2)
        .with_fault_plan(plan)
        .run(pr_graph(48), TRACE_ROOT)
        .unwrap();
    (run, cluster, obs)
}

fn artifact(cluster: &ClusterFs, name: &str) -> Vec<u8> {
    let fs: Arc<dyn FileSystem> = Arc::new(cluster.clone());
    fs.read_all(&format!("{OBS_DIR}/{name}")).unwrap_or_else(|e| panic!("read {name}: {e}"))
}

fn events(cluster: &ClusterFs) -> Vec<Event> {
    let text = String::from_utf8(artifact(cluster, EVENTS_FILE)).unwrap();
    parse_jsonl(&text).expect("exported event log parses")
}

#[test]
fn identical_deterministic_runs_export_identical_bytes() {
    let (run_a, cluster_a, _) = run_once(FaultPlan::new());
    let (run_b, cluster_b, _) = run_once(FaultPlan::new());
    assert!(run_a.outcome.is_ok() && run_b.outcome.is_ok());

    for name in [EVENTS_FILE, METRICS_PROM_FILE, METRICS_JSON_FILE] {
        let a = artifact(&cluster_a, name);
        let b = artifact(&cluster_b, name);
        assert!(!a.is_empty(), "{name} must not be empty");
        assert_eq!(a, b, "{name} diverged between two identical deterministic runs");
    }

    // The exported log is a faithful JSON-lines round trip.
    let text = String::from_utf8(artifact(&cluster_a, EVENTS_FILE)).unwrap();
    let parsed = parse_jsonl(&text).unwrap();
    assert_eq!(to_jsonl(&parsed), text);

    // The clean run tells a complete story: a job span bracketing one
    // superstep span (with both phases inside) per executed superstep.
    let log = events(&cluster_a);
    let supersteps = run_a.outcome.as_ref().unwrap().stats.superstep_count() as usize;
    assert_eq!(log.iter().filter(|e| e.is_end("job")).count(), 1);
    assert_eq!(log.iter().filter(|e| e.is_end("superstep")).count(), supersteps);
    assert_eq!(log.iter().filter(|e| e.is_end("phase.compute")).count(), supersteps);
    assert_eq!(log.iter().filter(|e| e.is_end("phase.delivery")).count(), supersteps);
    assert!(log.iter().any(|e| e.is_end("checkpoint.write")), "checkpoints every 2 supersteps");
    assert!(log.iter().all(|e| !e.is_point("recovery")), "clean run must not recover");
}

#[test]
fn faulted_run_logs_one_recovery_point_per_rewind() {
    let (run, cluster, obs) = run_once("kill-worker:1@3".parse().unwrap());
    let outcome = run.outcome.as_ref().unwrap();
    assert!(outcome.stats.recoveries > 0, "fault plan never fired");

    let log = events(&cluster);
    let recovery_points = log.iter().filter(|e| e.is_point("recovery")).count();
    assert_eq!(recovery_points as u64, outcome.stats.recoveries, "one recovery point per rewind");
    // Every rewind pays for a checkpoint restore, recorded as a full span.
    let restores = log.iter().filter(|e| e.is_end("checkpoint.restore")).count();
    assert_eq!(restores as u64, outcome.stats.recoveries);
    assert!(
        log.iter().filter(|e| e.is_end("checkpoint.restore")).all(|e| e.dur.is_some()),
        "restore spans carry a duration"
    );

    // The registry agrees with the event log.
    assert_eq!(obs.registry().counter_total("pregel_recoveries_total"), outcome.stats.recoveries);
}
