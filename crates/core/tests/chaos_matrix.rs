//! Chaos-run matrix (the ISSUE's acceptance scenario): PageRank, SSSP,
//! and connected components executed under a seeded fault matrix — worker
//! kills, compute panics, and datanode kills at chosen supersteps — must
//! produce results *and trace directories* identical to a failure-free
//! run, and the trace directory must remain loadable as a debug session.

use std::collections::BTreeMap;
use std::sync::Arc;

use graft::{DebugConfig, GraftRun, GraftRunner};
use graft_algorithms::components::ConnectedComponents;
use graft_algorithms::pagerank::PageRank;
use graft_algorithms::sssp::ShortestPaths;
use graft_dfs::{ClusterFs, ClusterFsConfig, FileSystem};
use graft_pregel::{Computation, ExecutorMode, FaultPlan, Graph, RecoveryMode};

const TRACE_ROOT: &str = "/traces/chaos";

fn cluster() -> ClusterFs {
    ClusterFs::new(ClusterFsConfig { num_datanodes: 4, replication: 2, block_size: 256 })
}

/// Deterministic ring-with-chords topology shared by all three
/// algorithms; vertex and edge payloads are supplied per algorithm.
fn build_graph<V, E>(n: u64, vertex: impl Fn(u64) -> V, edge: impl Fn(u64) -> E) -> Graph<u64, V, E>
where
    V: graft_pregel::Value,
    E: graft_pregel::Value,
{
    let mut b = Graph::builder();
    for v in 0..n {
        b.add_vertex(v, vertex(v)).unwrap();
    }
    for v in 0..n {
        b.add_edge(v, (v + 1) % n, edge(v)).unwrap();
        b.add_edge(v, (v * 7 + 3) % n, edge(v + 1)).unwrap();
    }
    b.build().unwrap()
}

fn pr_graph(n: u64) -> Graph<u64, f64, ()> {
    build_graph(n, |_| 0.0, |_| ())
}

fn sssp_graph(n: u64) -> Graph<u64, f64, f64> {
    build_graph(n, |_| f64::INFINITY, |v| 1.0 + (v % 5) as f64)
}

fn cc_graph(n: u64) -> Graph<u64, u64, ()> {
    build_graph(n, |v| v, |_| ())
}

/// Runs `computation` with checkpointing every 2 supersteps on its own
/// 4-node cluster, under the given fault plan, recovery mode, and
/// executor.
fn run_matrix_cell<C, G>(
    computation: C,
    graph: G,
    plan: FaultPlan,
    recovery: RecoveryMode,
    executor: ExecutorMode,
) -> (GraftRun<C>, ClusterFs)
where
    C: Computation<Id = u64>,
    G: FnOnce() -> Graph<C::Id, C::VValue, C::EValue>,
{
    let cluster = cluster();
    let config = DebugConfig::<C>::builder().capture_all_active(true).build();
    let run = GraftRunner::new(computation, config)
        .with_cluster(cluster.clone())
        .num_workers(4)
        .max_supersteps(40)
        .checkpoint_every(2)
        .recovery_mode(recovery)
        .executor(executor)
        .with_fault_plan(plan)
        .run(graph(), TRACE_ROOT)
        .unwrap();
    (run, cluster)
}

/// The original matrix column: full restart recovery on the default
/// executor.
fn run_with_plan<C, G>(computation: C, graph: G, plan: FaultPlan) -> (GraftRun<C>, ClusterFs)
where
    C: Computation<Id = u64>,
    G: FnOnce() -> Graph<C::Id, C::VValue, C::EValue>,
{
    run_matrix_cell(computation, graph, plan, RecoveryMode::Restart, ExecutorMode::PersistentPool)
}

/// FNV-1a over a run's sorted final vertex values (via their `Debug`
/// rendering, which is bit-faithful for the value types in this matrix):
/// a cross-mode fingerprint of the result independent of trace bytes.
fn result_checksum<C>(run: &GraftRun<C>) -> u64
where
    C: Computation<Id = u64>,
    C::VValue: std::fmt::Debug,
{
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for (id, value) in run.outcome.as_ref().unwrap().graph.sorted_values() {
        for byte in format!("{id}={value:?};").bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Every trace file (everything under the root except the checkpoints
/// directory), keyed by path, with its full contents.
fn trace_files(fs: &ClusterFs) -> BTreeMap<String, Vec<u8>> {
    let fs: Arc<dyn FileSystem> = Arc::new(fs.clone());
    fs.list_files_recursive(TRACE_ROOT)
        .unwrap()
        .into_iter()
        .filter(|f| !f.path.contains("/checkpoints/"))
        .map(|f| {
            let bytes = fs.read_all(&f.path).unwrap();
            (f.path, bytes)
        })
        .collect()
}

/// Asserts that a faulted run converged to the clean run bit-for-bit:
/// same sorted vertex values, same superstep count, and a byte-identical
/// trace directory.
fn assert_matches_clean<C>(
    clean: &(GraftRun<C>, ClusterFs),
    faulted: &(GraftRun<C>, ClusterFs),
    expect_recoveries: bool,
    label: &str,
) where
    C: Computation<Id = u64>,
    C::VValue: PartialEq + std::fmt::Debug,
{
    let co = clean.0.outcome.as_ref().unwrap();
    let fo = faulted.0.outcome.as_ref().unwrap();
    assert_eq!(co.graph.sorted_values(), fo.graph.sorted_values(), "{label}: values diverged");
    assert_eq!(co.stats.superstep_count(), fo.stats.superstep_count(), "{label}");
    assert_eq!(co.stats.recoveries, 0, "{label}: clean run must not recover");
    if expect_recoveries {
        assert!(fo.stats.recoveries > 0, "{label}: fault plan never fired");
    }

    let clean_files = trace_files(&clean.1);
    let fault_files = trace_files(&faulted.1);
    assert_eq!(
        clean_files.keys().collect::<Vec<_>>(),
        fault_files.keys().collect::<Vec<_>>(),
        "{label}: trace directory listings diverged"
    );
    for (path, bytes) in &clean_files {
        if path.ends_with("meta.json") {
            // meta.json records the armed fault plan by design (the
            // analyzer's GA0015 reads it back) — the one field that
            // legitimately differs between a clean and a faulted run.
            let mut clean_meta: graft::JobMeta = serde_json::from_slice(bytes).unwrap();
            let mut fault_meta: graft::JobMeta =
                serde_json::from_slice(&fault_files[path]).unwrap();
            for meta in [&mut clean_meta, &mut fault_meta] {
                if let Some(facts) = &mut meta.facts {
                    facts.fault_plan = None;
                }
            }
            assert_eq!(
                clean_meta, fault_meta,
                "{label}: {path} diverged beyond the recorded fault plan"
            );
            continue;
        }
        assert_eq!(bytes, &fault_files[path], "{label}: trace file {path} diverged");
    }

    // Both trace directories load as complete debug sessions.
    let clean_session = clean.0.session().unwrap();
    let fault_session = faulted.0.session().unwrap();
    assert_eq!(clean_session.total_captures(), fault_session.total_captures(), "{label}");
    assert!(fault_session.result().unwrap().error.is_none(), "{label}");
}

#[test]
fn pagerank_survives_worker_kill_matrix() {
    let clean = run_with_plan(PageRank::new(8), || pr_graph(48), FaultPlan::new());
    for kill_at in [1u64, 3, 6] {
        let plan: FaultPlan = format!("kill-worker:1@{kill_at}").parse().unwrap();
        let faulted = run_with_plan(PageRank::new(8), || pr_graph(48), plan);
        assert_matches_clean(&clean, &faulted, true, &format!("pagerank kill@{kill_at}"));
    }
}

#[test]
fn sssp_survives_worker_kill_matrix() {
    let clean = run_with_plan(ShortestPaths::new(0), || sssp_graph(48), FaultPlan::new());
    for kill_at in [1u64, 2, 4] {
        let plan: FaultPlan = format!("kill-worker:2@{kill_at}").parse().unwrap();
        let faulted = run_with_plan(ShortestPaths::new(0), || sssp_graph(48), plan);
        assert_matches_clean(&clean, &faulted, true, &format!("sssp kill@{kill_at}"));
    }
}

#[test]
fn connected_components_survives_compute_panic_matrix() {
    let clean = run_with_plan(ConnectedComponents::new(), || cc_graph(48), FaultPlan::new());
    for panic_at in [1u64, 2] {
        let plan: FaultPlan = format!("panic@{panic_at}").parse().unwrap();
        let faulted = run_with_plan(ConnectedComponents::new(), || cc_graph(48), plan);
        assert_matches_clean(&clean, &faulted, true, &format!("components panic@{panic_at}"));
    }
}

#[test]
fn pagerank_survives_worker_kill_with_datanode_down() {
    // The acceptance scenario: a worker dies mid-job *and* one datanode
    // of the trace cluster goes down. The job must recover from the last
    // checkpoint and finish with results and trace files identical to
    // the failure-free run.
    let clean = run_with_plan(PageRank::new(8), || pr_graph(48), FaultPlan::new());
    let plan: FaultPlan = "kill-datanode:0@3; kill-worker:1@5".parse().unwrap();
    let faulted = run_with_plan(PageRank::new(8), || pr_graph(48), plan);
    let stats = faulted.1.stats();
    assert!(stats.live_datanodes < stats.total_datanodes, "datanode kill must have fired");
    assert_matches_clean(&clean, &faulted, true, "pagerank kill-worker+kill-datanode");
}

#[test]
fn pagerank_log_replay_kill_matrix_is_bit_identical() {
    // The confined-recovery column of the matrix: same kills as the
    // restart column, but only the failed partitions replay. The traces,
    // captures, and results must still match a clean log-replay run
    // bit-for-bit, and the result checksum must agree with the restart
    // column's — recovery mode is an execution detail, never a semantic
    // one.
    let clean = run_matrix_cell(
        PageRank::new(8),
        || pr_graph(48),
        FaultPlan::new(),
        RecoveryMode::LogReplay,
        ExecutorMode::PersistentPool,
    );
    let restart_clean = run_with_plan(PageRank::new(8), || pr_graph(48), FaultPlan::new());
    assert_eq!(result_checksum(&clean.0), result_checksum(&restart_clean.0));
    for kill_at in [1u64, 3, 6] {
        let plan: FaultPlan = format!("kill-worker:1@{kill_at}").parse().unwrap();
        let faulted = run_matrix_cell(
            PageRank::new(8),
            || pr_graph(48),
            plan,
            RecoveryMode::LogReplay,
            ExecutorMode::PersistentPool,
        );
        assert_matches_clean(&clean, &faulted, true, &format!("pagerank logreplay kill@{kill_at}"));
        assert_eq!(
            result_checksum(&faulted.0),
            result_checksum(&restart_clean.0),
            "pagerank logreplay kill@{kill_at}: checksum diverged from the restart column"
        );
    }
}

#[test]
fn sssp_log_replay_kill_matrix_is_bit_identical_across_executors() {
    // Clean baseline on the persistent pool; recovered runs on *both*
    // executors must match it byte-for-byte — confined recovery, like
    // everything else in the engine, is executor-invariant.
    let clean = run_matrix_cell(
        ShortestPaths::new(0),
        || sssp_graph(48),
        FaultPlan::new(),
        RecoveryMode::LogReplay,
        ExecutorMode::PersistentPool,
    );
    for executor in [ExecutorMode::PersistentPool, ExecutorMode::SpawnPerSuperstep] {
        let plan: FaultPlan = "kill-worker:2@4".parse().unwrap();
        let faulted = run_matrix_cell(
            ShortestPaths::new(0),
            || sssp_graph(48),
            plan,
            RecoveryMode::LogReplay,
            executor,
        );
        assert_matches_clean(&clean, &faulted, true, &format!("sssp logreplay {executor:?}"));
    }
}

#[test]
fn connected_components_log_replay_survives_compute_panics() {
    let clean = run_matrix_cell(
        ConnectedComponents::new(),
        || cc_graph(48),
        FaultPlan::new(),
        RecoveryMode::LogReplay,
        ExecutorMode::PersistentPool,
    );
    for panic_at in [1u64, 2] {
        let plan: FaultPlan = format!("panic@{panic_at}").parse().unwrap();
        let faulted = run_matrix_cell(
            ConnectedComponents::new(),
            || cc_graph(48),
            plan,
            RecoveryMode::LogReplay,
            ExecutorMode::PersistentPool,
        );
        assert_matches_clean(
            &clean,
            &faulted,
            true,
            &format!("components logreplay panic@{panic_at}"),
        );
    }
}

#[test]
fn log_replay_double_fault_falls_back_to_full_restart_and_still_matches() {
    // A second fault during the confined replay window: the engine must
    // descend the recovery ladder to a full restart (two recoveries) and
    // the final state must still be indistinguishable from a clean run.
    let clean = run_matrix_cell(
        PageRank::new(8),
        || pr_graph(48),
        FaultPlan::new(),
        RecoveryMode::LogReplay,
        ExecutorMode::PersistentPool,
    );
    let plan: FaultPlan = "kill-worker:1@3; panic:1@3".parse().unwrap();
    let faulted = run_matrix_cell(
        PageRank::new(8),
        || pr_graph(48),
        plan,
        RecoveryMode::LogReplay,
        ExecutorMode::PersistentPool,
    );
    let recoveries = faulted.0.outcome.as_ref().unwrap().stats.recoveries;
    assert!(recoveries >= 2, "expected confined attempt + full restart, got {recoveries}");
    assert_matches_clean(&clean, &faulted, true, "pagerank logreplay double-fault");
}

#[test]
fn fault_spec_round_trips_through_display() {
    let plan: FaultPlan = "kill-worker:1@5; panic:2@3; kill-datanode:0@2".parse().unwrap();
    let rendered = plan.to_string();
    let reparsed: FaultPlan = rendered.parse().unwrap();
    assert_eq!(plan, reparsed);
}
