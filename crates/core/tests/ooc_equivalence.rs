//! Out-of-core equivalence matrix: a run under a memory budget — spilling
//! partitions and shuffle batches to the trace cluster and streaming them
//! back — must be observationally identical to the unbounded in-memory
//! run. For PageRank, SSSP, and connected components, across both
//! executors, the budgeted run must produce byte-identical trace
//! directories (`meta.json` aside: it legitimately records the budget),
//! equal deterministic `JobStats` counters, and equal result checksums —
//! also through a worker kill with confined log-replay recovery. The
//! obs counters prove the budgeted runs actually spilled.

use std::collections::BTreeMap;
use std::sync::Arc;

use graft::{DebugConfig, GraftRun, GraftRunner};
use graft_algorithms::components::ConnectedComponents;
use graft_algorithms::pagerank::PageRank;
use graft_algorithms::sssp::ShortestPaths;
use graft_dfs::{ClusterFs, ClusterFsConfig, FileSystem};
use graft_obs::{Obs, Scope};
use graft_pregel::{Computation, ExecutorMode, FaultPlan, Graph, RecoveryMode};

const TRACE_ROOT: &str = "/traces/ooc-equiv";

/// A budget far below the working set of the 48-vertex matrix graphs:
/// partitions and shuffle batches must churn through the spill store.
const TIGHT_BUDGET: u64 = 400;

fn cluster() -> ClusterFs {
    ClusterFs::new(ClusterFsConfig { num_datanodes: 4, replication: 2, block_size: 256 })
}

/// Same deterministic ring-with-chords family the engine-equivalence
/// matrix uses.
fn build_graph<V, E>(n: u64, vertex: impl Fn(u64) -> V, edge: impl Fn(u64) -> E) -> Graph<u64, V, E>
where
    V: graft_pregel::Value,
    E: graft_pregel::Value,
{
    let mut b = Graph::builder();
    for v in 0..n {
        b.add_vertex(v, vertex(v)).unwrap();
    }
    for v in 0..n {
        b.add_edge(v, (v + 1) % n, edge(v)).unwrap();
        b.add_edge(v, (v * 7 + 3) % n, edge(v + 1)).unwrap();
    }
    b.build().unwrap()
}

/// Runs `computation` with or without a memory budget. Budgeted runs get
/// an obs handle so the spill counters can prove spilling happened; obs
/// artifacts live under `obs/` and are excluded from the byte comparison.
fn run_mode<C, G, F>(
    computation: C,
    graph: G,
    executor: ExecutorMode,
    budget: Option<u64>,
    customize: F,
) -> (GraftRun<C>, ClusterFs, Option<Arc<Obs>>)
where
    C: Computation<Id = u64>,
    G: FnOnce() -> Graph<C::Id, C::VValue, C::EValue>,
    F: FnOnce(GraftRunner<C>) -> GraftRunner<C>,
{
    let cluster = cluster();
    let config = DebugConfig::<C>::builder().capture_all_active(true).build();
    let mut runner = GraftRunner::new(computation, config)
        .with_cluster(cluster.clone())
        .num_workers(4)
        .max_supersteps(40)
        .executor(executor);
    let mut obs = None;
    if let Some(bytes) = budget {
        let handle = Obs::deterministic(1);
        runner = runner.memory_budget(bytes).with_obs(handle.clone());
        obs = Some(handle);
    }
    let run = customize(runner).run(graph(), TRACE_ROOT).unwrap();
    (run, cluster, obs)
}

/// Every trace file, keyed by path — minus checkpoints, obs artifacts,
/// and `meta.json` (the budgeted run's facts record the budget; the spill
/// directory itself must be *gone*, which `assert_equivalent` checks
/// separately rather than filtering).
fn trace_files(fs: &ClusterFs) -> BTreeMap<String, Vec<u8>> {
    let fs: Arc<dyn FileSystem> = Arc::new(fs.clone());
    fs.list_files_recursive(TRACE_ROOT)
        .unwrap()
        .into_iter()
        .filter(|f| {
            !f.path.contains("/checkpoints/")
                && !f.path.contains("/obs/")
                && !f.path.ends_with("/meta.json")
        })
        .map(|f| {
            let bytes = fs.read_all(&f.path).unwrap();
            (f.path, bytes)
        })
        .collect()
}

/// FNV-1a over the sorted (id, value-bits) stream — the same checksum
/// `graft-cli run` prints, so the matrix certifies what users compare.
fn checksum(values: impl Iterator<Item = (u64, u64)>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (id, bits) in values {
        mix(id);
        mix(bits);
    }
    hash
}

/// Asserts the budgeted run is observationally identical to the unbounded
/// one — and that it really went out of core: the spill counters are
/// positive, everything was loaded back, and the spill directory is gone.
fn assert_equivalent<C>(
    unbounded: &(GraftRun<C>, ClusterFs, Option<Arc<Obs>>),
    budgeted: &(GraftRun<C>, ClusterFs, Option<Arc<Obs>>),
    value_bits: impl Fn(&C::VValue) -> u64,
    label: &str,
) where
    C: Computation<Id = u64>,
{
    let uo = unbounded.0.outcome.as_ref().unwrap();
    let bo = budgeted.0.outcome.as_ref().unwrap();

    let usum = checksum(uo.graph.sorted_values().iter().map(|(id, v)| (*id, value_bits(v))));
    let bsum = checksum(bo.graph.sorted_values().iter().map(|(id, v)| (*id, value_bits(v))));
    assert_eq!(usum, bsum, "{label}: result checksums diverged");

    assert!(uo.stats.same_counters(&bo.stats), "{label}: JobStats counters diverged");
    assert_eq!(uo.halt_reason, bo.halt_reason, "{label}: halt reasons diverged");

    let ufiles = trace_files(&unbounded.1);
    let bfiles = trace_files(&budgeted.1);
    assert_eq!(
        ufiles.keys().collect::<Vec<_>>(),
        bfiles.keys().collect::<Vec<_>>(),
        "{label}: trace directory listings diverged"
    );
    for (path, bytes) in &ufiles {
        assert_eq!(bytes, &bfiles[path], "{label}: trace file {path} diverged");
    }

    // meta.json is excluded from the byte comparison for exactly one
    // reason: the budgeted facts record the budget and the partition
    // estimate. Everything else about the configs matches.
    let ufacts = unbounded.0.session().unwrap().meta().facts.clone().unwrap();
    let bfacts = budgeted.0.session().unwrap().meta().facts.clone().unwrap();
    assert_eq!(ufacts.memory_budget, None, "{label}: unbounded run recorded a budget");
    assert_eq!(bfacts.memory_budget, Some(TIGHT_BUDGET), "{label}: budget fact missing");
    assert!(bfacts.est_max_partition_bytes.unwrap() > 0, "{label}: estimate missing");
    let mut scrubbed = bfacts;
    scrubbed.memory_budget = None;
    scrubbed.est_max_partition_bytes = None;
    // The budgeted run also carries the obs handle the spill assertions
    // below need; that fact difference is the harness's, not the budget's.
    scrubbed.obs_enabled = ufacts.obs_enabled;
    assert_eq!(ufacts, scrubbed, "{label}: facts differ beyond the budget fields");

    // The budget was tight enough to matter, and the job cleaned up.
    let reg_obs = budgeted.2.as_ref().expect("budgeted runs carry an obs handle");
    let reg = reg_obs.registry();
    assert!(reg.counter_value("ooc_spills_total", Scope::GLOBAL) > 0, "{label}: never spilled");
    assert!(reg.counter_value("ooc_loads_total", Scope::GLOBAL) > 0, "{label}: never loaded back");
    assert_eq!(
        reg.gauge_value("live_spill_bytes", Scope::GLOBAL),
        Some(0),
        "{label}: spill bytes left on disk"
    );
    let fs: Arc<dyn FileSystem> = Arc::new(budgeted.1.clone());
    assert!(!fs.exists(&format!("{TRACE_ROOT}/ooc")), "{label}: spill directory not cleaned up");
}

#[test]
fn pagerank_budgeted_is_bit_identical_on_both_executors() {
    let graph = || build_graph(48, |_| 0.0f64, |_| ());
    for executor in [ExecutorMode::PersistentPool, ExecutorMode::SpawnPerSuperstep] {
        let unbounded = run_mode(PageRank::new(10), graph, executor, None, |r| r);
        let budgeted = run_mode(PageRank::new(10), graph, executor, Some(TIGHT_BUDGET), |r| r);
        assert_equivalent(
            &unbounded,
            &budgeted,
            |v: &f64| v.to_bits(),
            &format!("pagerank/{executor:?}"),
        );
    }
}

#[test]
fn sssp_budgeted_is_bit_identical_on_both_executors() {
    let graph = || build_graph(48, |_| f64::INFINITY, |v| 1.0 + (v % 5) as f64);
    for executor in [ExecutorMode::PersistentPool, ExecutorMode::SpawnPerSuperstep] {
        let unbounded = run_mode(ShortestPaths::new(0), graph, executor, None, |r| r);
        let budgeted = run_mode(ShortestPaths::new(0), graph, executor, Some(TIGHT_BUDGET), |r| r);
        assert_equivalent(
            &unbounded,
            &budgeted,
            |v: &f64| v.to_bits(),
            &format!("sssp/{executor:?}"),
        );
    }
}

#[test]
fn components_budgeted_is_bit_identical_on_both_executors() {
    let graph = || build_graph(48, |v| v, |_| ());
    for executor in [ExecutorMode::PersistentPool, ExecutorMode::SpawnPerSuperstep] {
        let unbounded = run_mode(ConnectedComponents::new(), graph, executor, None, |r| r);
        let budgeted =
            run_mode(ConnectedComponents::new(), graph, executor, Some(TIGHT_BUDGET), |r| r);
        assert_equivalent(&unbounded, &budgeted, |v: &u64| *v, &format!("components/{executor:?}"));
    }
}

#[test]
fn killed_worker_recovers_identically_under_the_budget() {
    // A worker kill mid-job with confined log-replay recovery: the failed
    // partitions rewind to the last checkpoint (pinned resident through
    // the restore) while survivors re-serve logged batches — all of it
    // under the budget, and the traces still match the unbounded run's.
    let plan = || "kill-worker:1@3".parse::<FaultPlan>().unwrap();
    let graph = || build_graph(48, |_| 0.0f64, |_| ());
    for mode in [RecoveryMode::Restart, RecoveryMode::LogReplay] {
        let fault = |r: GraftRunner<PageRank>| {
            r.checkpoint_every(2).recovery_mode(mode).with_fault_plan(plan())
        };
        let unbounded =
            run_mode(PageRank::new(10), graph, ExecutorMode::PersistentPool, None, fault);
        let budgeted = run_mode(
            PageRank::new(10),
            graph,
            ExecutorMode::PersistentPool,
            Some(TIGHT_BUDGET),
            fault,
        );
        for (run, label) in [(&unbounded, "unbounded"), (&budgeted, "budgeted")] {
            let outcome = run.0.outcome.as_ref().unwrap();
            assert!(outcome.stats.recoveries > 0, "{mode:?}/{label}: fault plan never fired");
        }
        assert_equivalent(
            &unbounded,
            &budgeted,
            |v: &f64| v.to_bits(),
            &format!("pagerank+kill/{mode:?}"),
        );
    }
}
