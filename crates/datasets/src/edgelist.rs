//! The common edge-list representation produced by all generators.

use graft_pregel::{Graph, Value};

/// A directed edge list over vertices `0..num_vertices`.
#[derive(Clone, Debug)]
pub struct EdgeList {
    /// Dataset name (for tables and trace roots).
    pub name: String,
    /// Number of vertices (`0..num_vertices` all exist, even if isolated).
    pub num_vertices: u64,
    /// Directed edges.
    pub edges: Vec<(u64, u64)>,
}

impl EdgeList {
    /// Creates an edge list.
    pub fn new(name: impl Into<String>, num_vertices: u64, edges: Vec<(u64, u64)>) -> Self {
        Self { name: name.into(), num_vertices, edges }
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    /// Removes duplicate edges and self-loops (in place), preserving
    /// determinism by sorting first.
    pub fn dedupe(&mut self) {
        self.edges.retain(|(a, b)| a != b);
        self.edges.sort_unstable();
        self.edges.dedup();
    }

    /// The symmetrized ("undirected") version: every edge plus its
    /// reverse, deduplicated. This is how the paper derives its `(u)`
    /// variants from directed graphs.
    pub fn symmetrized(&self) -> EdgeList {
        let mut edges = Vec::with_capacity(self.edges.len() * 2);
        for &(a, b) in &self.edges {
            if a != b {
                edges.push((a, b));
                edges.push((b, a));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        EdgeList::new(format!("{}-u", self.name), self.num_vertices, edges)
    }

    /// Whether the edge set is symmetric (each edge has its reverse).
    pub fn is_symmetric(&self) -> bool {
        let set: std::collections::HashSet<(u64, u64)> = self.edges.iter().copied().collect();
        self.edges.iter().all(|&(a, b)| set.contains(&(b, a)))
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<u64> {
        let mut degrees = vec![0u64; self.num_vertices as usize];
        for &(a, _) in &self.edges {
            degrees[a as usize] += 1;
        }
        degrees
    }

    /// Builds an unweighted [`Graph`] with every vertex initialized to
    /// `default`.
    pub fn to_graph<V: Value>(&self, default: V) -> Graph<u64, V, ()> {
        let mut builder = Graph::builder();
        for v in 0..self.num_vertices {
            builder.add_vertex(v, default.clone()).expect("ids 0..n are unique");
        }
        for &(a, b) in &self.edges {
            builder.add_edge(a, b, ()).expect("endpoints are in 0..n");
        }
        builder.build().expect("edge list forms a valid graph")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedupe_removes_loops_and_duplicates() {
        let mut list = EdgeList::new("t", 3, vec![(0, 1), (1, 1), (0, 1), (2, 0)]);
        list.dedupe();
        assert_eq!(list.edges, vec![(0, 1), (2, 0)]);
    }

    #[test]
    fn symmetrization() {
        let list = EdgeList::new("t", 3, vec![(0, 1), (1, 0), (1, 2)]);
        let sym = list.symmetrized();
        assert_eq!(sym.edges, vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
        assert!(sym.is_symmetric());
        assert!(!list.is_symmetric());
    }

    #[test]
    fn graph_conversion_includes_isolated_vertices() {
        let list = EdgeList::new("t", 4, vec![(0, 1)]);
        let graph = list.to_graph(0u32);
        assert_eq!(graph.num_vertices(), 4);
        assert_eq!(graph.num_edges(), 1);
        assert!(graph.contains(3));
    }

    #[test]
    fn degrees() {
        let list = EdgeList::new("t", 3, vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(list.out_degrees(), vec![2, 1, 0]);
    }
}
