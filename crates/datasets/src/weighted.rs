//! Symmetric edge weights and the Scenario 4.3 corruption.
//!
//! The paper's MWM scenario runs on "a weighted version of the
//! soc-Epinions graph, encoded as undirected by having symmetric
//! directed edges between every pair of adjacent vertices. However, a
//! small fraction of the edges incorrectly have different weights on
//! their symmetric edges." [`weight_graph`] produces the well-formed
//! version; [`corrupt_weights`] injects the asymmetry.

use graft_pregel::{Graph, Value};

use crate::edgelist::EdgeList;

fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic symmetric weight for the undirected pair `{a, b}`:
/// both directions hash the (min, max) endpoints, so the weight is equal
/// by construction. Weights are in `(0, 100]`, distinct with high
/// probability.
pub fn symmetric_weight(seed: u64, a: u64, b: u64) -> f64 {
    let (lo, hi) = (a.min(b), a.max(b));
    let h = mix64(seed ^ mix64(lo).wrapping_add(mix64(hi).rotate_left(32)));
    ((h % 1_000_000) as f64 + 1.0) / 10_000.0
}

/// Builds a weighted graph from a symmetric edge list, every direction
/// of an undirected edge carrying the same weight.
pub fn weight_graph<V: Value>(list: &EdgeList, seed: u64, default: V) -> Graph<u64, V, f64> {
    let mut builder = Graph::builder();
    for v in 0..list.num_vertices {
        builder.add_vertex(v, default.clone()).expect("ids 0..n are unique");
    }
    for &(a, b) in &list.edges {
        builder.add_edge(a, b, symmetric_weight(seed, a, b)).expect("endpoints exist");
    }
    builder.build().expect("edge list forms a valid graph")
}

/// Corrupts roughly `fraction` of the directed edges by perturbing their
/// weight — only in one direction — reproducing the paper's asymmetric
/// input error. Returns the number of edges corrupted.
///
/// Corruption is deterministic in `seed`.
pub fn corrupt_weights<V: Value>(
    graph: Graph<u64, V, f64>,
    fraction: f64,
    seed: u64,
) -> (Graph<u64, V, f64>, u64) {
    let threshold = (fraction.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
    let mut corrupted = 0;
    let mut builder = Graph::builder();
    for (id, value, _) in graph.iter() {
        builder.add_vertex(id, value.clone()).expect("source graph ids are unique");
    }
    for (id, _, edges) in graph.iter() {
        for edge in edges {
            // Hash the *directed* pair so only one direction changes.
            let h = mix64(seed ^ mix64(id).wrapping_add(mix64(edge.target)));
            // Only corrupt the lower-id-first direction to guarantee the
            // reverse keeps the original weight.
            let weight = if id < edge.target && h < threshold {
                corrupted += 1;
                edge.value * 3.0 + 7.5
            } else {
                edge.value
            };
            builder.add_edge(id, edge.target, weight).expect("endpoints exist");
        }
    }
    (builder.build().expect("same topology as input"), corrupted)
}

/// Finds the undirected pairs whose two directions carry different
/// weights — what the paper's user discovers by inspecting the remaining
/// active vertices in the Graft GUI.
pub fn asymmetric_weight_pairs<V: Value>(graph: &Graph<u64, V, f64>) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for (id, _, edges) in graph.iter() {
        for edge in edges {
            if id < edge.target {
                let reverse = graph
                    .out_edges(edge.target)
                    .and_then(|back| back.iter().find(|e| e.target == id))
                    .map(|e| e.value);
                if let Some(reverse_weight) = reverse {
                    if (reverse_weight - edge.value).abs() > 1e-12 {
                        out.push((id, edge.target));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite;

    #[test]
    fn weights_are_symmetric_by_construction() {
        assert_eq!(symmetric_weight(1, 5, 9), symmetric_weight(1, 9, 5));
        assert_ne!(symmetric_weight(1, 5, 9), symmetric_weight(2, 5, 9));
        let list = bipartite::generate_regular("b", 40, 3, 7);
        let graph = weight_graph(&list, 11, 0u32);
        assert!(asymmetric_weight_pairs(&graph).is_empty());
    }

    #[test]
    fn corruption_injects_detectable_asymmetry() {
        let list = bipartite::generate_regular("b", 40, 3, 7);
        let graph = weight_graph(&list, 11, 0u32);
        let (corrupted, count) = corrupt_weights(graph, 0.1, 99);
        assert!(count > 0);
        let pairs = asymmetric_weight_pairs(&corrupted);
        assert_eq!(pairs.len() as u64, count);
    }

    #[test]
    fn zero_fraction_corrupts_nothing() {
        let list = bipartite::generate_regular("b", 20, 3, 7);
        let graph = weight_graph(&list, 11, 0u32);
        let (same, count) = corrupt_weights(graph, 0.0, 99);
        assert_eq!(count, 0);
        assert!(asymmetric_weight_pairs(&same).is_empty());
    }

    #[test]
    fn weights_are_positive() {
        for (a, b) in [(0u64, 1u64), (7, 3), (1000, 999)] {
            let w = symmetric_weight(5, a, b);
            assert!(w > 0.0 && w <= 100.0);
        }
    }
}
