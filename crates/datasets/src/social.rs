//! Preferential-attachment generator: the stand-in for the paper's
//! social graphs (soc-Epinions "who trusts whom", twitter "who is
//! followed by whom").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::edgelist::EdgeList;

/// Generates a directed preferential-attachment graph: vertices arrive
/// one by one and each links to `edges_per_vertex` earlier vertices,
/// sampled proportionally to their current degree (Barabási–Albert via
/// the repeated-endpoint trick), producing the heavy-tailed in-degree
/// distribution characteristic of follower networks.
pub fn generate(name: &str, num_vertices: u64, edges_per_vertex: u64, seed: u64) -> EdgeList {
    assert!(num_vertices >= 2, "need at least two vertices");
    let m = edges_per_vertex.max(1) as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u64, u64)> = Vec::with_capacity(num_vertices as usize * m);
    // Endpoint pool: each occurrence of a vertex id gives it one unit of
    // attachment probability mass.
    let mut pool: Vec<u64> = vec![0, 1];
    edges.push((1, 0));
    for v in 2..num_vertices {
        for _ in 0..m.min(v as usize) {
            let target = pool[rng.gen_range(0..pool.len())];
            edges.push((v, target));
            pool.push(target);
        }
        pool.push(v);
    }
    EdgeList::new(name, num_vertices, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let g1 = generate("s", 500, 6, 9);
        let g2 = generate("s", 500, 6, 9);
        assert_eq!(g1.edges, g2.edges);
        // Roughly m edges per vertex (first few vertices add fewer).
        assert!(g1.num_edges() > 6 * 490 && g1.num_edges() <= 6 * 500);
    }

    #[test]
    fn in_degree_is_heavy_tailed() {
        let g = generate("s", 3000, 5, 3);
        let mut in_degrees = vec![0u64; 3000];
        for &(_, b) in &g.edges {
            in_degrees[b as usize] += 1;
        }
        in_degrees.sort_unstable();
        let max = *in_degrees.last().unwrap();
        let median = in_degrees[in_degrees.len() / 2];
        assert!(max > median.max(1) * 10, "max {max} median {median}");
    }

    #[test]
    fn no_forward_edges() {
        let g = generate("s", 200, 3, 1);
        assert!(g.edges.iter().all(|&(a, b)| b < a), "links point to earlier vertices");
    }
}
