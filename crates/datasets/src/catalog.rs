//! The six named datasets of the paper's Tables 1 and 2, instantiated by
//! seeded generators at a configurable linear scale divisor.

use crate::bipartite;
use crate::edgelist::EdgeList;
use crate::rmat::{self, RmatParams};
use crate::social;

/// A named dataset spec: the paper's published numbers plus the
/// generator that reproduces its shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dataset {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// What the paper says about it.
    pub description: &'static str,
    /// Vertices at full (paper) scale.
    pub paper_vertices: u64,
    /// Directed edges at full scale, as reported in the paper.
    pub paper_edges_directed: u64,
    /// Undirected-encoding edge count reported in the paper, if any.
    pub paper_edges_undirected: Option<u64>,
    kind: Kind,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    /// R-MAT web graph.
    Web,
    /// Preferential-attachment social graph.
    Social,
    /// d-regular bipartite (the degree).
    Bipartite(u64),
}

/// Table 1: the demonstration datasets.
pub const DEMO: [Dataset; 3] = [
    Dataset {
        name: "web-BS",
        description: "A web graph from 2002",
        paper_vertices: 685_000,
        paper_edges_directed: 7_600_000,
        paper_edges_undirected: Some(12_300_000),
        kind: Kind::Web,
    },
    Dataset {
        name: "soc-Epinions",
        description: "Epinions.com \"who trusts whom\" network",
        paper_vertices: 76_000,
        paper_edges_directed: 500_000,
        paper_edges_undirected: Some(780_000),
        kind: Kind::Social,
    },
    Dataset {
        name: "bipartite-1M-3M",
        description: "A 3-regular bipartite graph",
        paper_vertices: 1_000_000,
        paper_edges_directed: 3_000_000,
        paper_edges_undirected: Some(6_000_000),
        kind: Kind::Bipartite(3),
    },
];

/// Table 2: the performance datasets.
pub const PERF: [Dataset; 3] = [
    Dataset {
        name: "sk-2005",
        description: "Web graph of the .sk domain from 2005",
        paper_vertices: 51_000_000,
        paper_edges_directed: 1_900_000_000,
        paper_edges_undirected: Some(3_500_000_000),
        kind: Kind::Web,
    },
    Dataset {
        name: "twitter",
        description: "Twitter \"who is followed by who\" network",
        paper_vertices: 42_000_000,
        paper_edges_directed: 1_500_000_000,
        paper_edges_undirected: Some(2_700_000_000),
        kind: Kind::Social,
    },
    Dataset {
        name: "bipartite-2B-6B",
        description: "A 3-regular bipartite graph",
        paper_vertices: 2_000_000_000,
        paper_edges_directed: 6_000_000_000,
        paper_edges_undirected: Some(12_000_000_000),
        kind: Kind::Bipartite(3),
    },
];

impl Dataset {
    /// Looks a dataset up by name across both tables.
    pub fn by_name(name: &str) -> Option<Dataset> {
        DEMO.iter().chain(PERF.iter()).copied().find(|d| d.name == name)
    }

    /// Vertex count at scale divisor `scale` (1 = paper scale).
    pub fn vertices_at(&self, scale: u64) -> u64 {
        (self.paper_vertices / scale.max(1)).max(2)
    }

    /// Directed edge target at scale divisor `scale`, preserving the
    /// paper's average degree.
    pub fn directed_edges_at(&self, scale: u64) -> u64 {
        (self.paper_edges_directed / scale.max(1)).max(1)
    }

    /// Generates the *directed* dataset at a scale divisor (1 = paper
    /// scale; the heavy Table 2 graphs are usually generated at 1000).
    /// Deterministic in `seed`.
    pub fn generate(&self, scale: u64, seed: u64) -> EdgeList {
        let vertices = self.vertices_at(scale);
        match self.kind {
            Kind::Web => rmat::generate(
                self.name,
                vertices,
                self.directed_edges_at(scale),
                RmatParams::default(),
                seed,
            ),
            Kind::Social => {
                let per_vertex = (self.paper_edges_directed / self.paper_vertices).max(1);
                social::generate(self.name, vertices, per_vertex, seed)
            }
            Kind::Bipartite(degree) => {
                // The bipartite datasets are already undirected; the
                // generator emits the symmetric encoding directly.
                bipartite::generate_regular(self.name, vertices / 2, degree, seed)
            }
        }
    }

    /// Generates the undirected (symmetrized) encoding, as the paper's
    /// `(u)` variants. For the bipartite datasets this is the same as
    /// [`Dataset::generate`].
    pub fn generate_undirected(&self, scale: u64, seed: u64) -> EdgeList {
        let directed = self.generate(scale, seed);
        if matches!(self.kind, Kind::Bipartite(_)) {
            directed
        } else {
            let mut sym = directed.symmetrized();
            sym.name = directed.name.clone();
            sym
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        assert_eq!(Dataset::by_name("web-BS").unwrap().paper_vertices, 685_000);
        assert_eq!(Dataset::by_name("twitter").unwrap().paper_edges_directed, 1_500_000_000);
        assert!(Dataset::by_name("nope").is_none());
    }

    #[test]
    fn scaled_generation_matches_targets() {
        let d = Dataset::by_name("web-BS").unwrap();
        let list = d.generate(100, 1);
        assert_eq!(list.num_vertices, 6_850);
        assert_eq!(list.num_edges(), 76_000);
    }

    #[test]
    fn social_dataset_has_paper_average_degree() {
        let d = Dataset::by_name("soc-Epinions").unwrap();
        let list = d.generate(10, 1);
        let average = list.num_edges() as f64 / list.num_vertices as f64;
        // Paper: 500K / 76K ≈ 6.6; integer generator targets 6.
        assert!((5.0..7.0).contains(&average), "average degree {average}");
    }

    #[test]
    fn bipartite_dataset_is_symmetric_and_regular() {
        let d = Dataset::by_name("bipartite-1M-3M").unwrap();
        let list = d.generate(1000, 1);
        assert_eq!(list.num_vertices, 1000);
        assert_eq!(list.num_edges(), 3000, "3-regular, both directions");
        assert!(list.is_symmetric());
        assert!(list.out_degrees().iter().all(|&deg| deg == 3));
    }

    #[test]
    fn undirected_variants_are_symmetric() {
        for d in DEMO {
            let list = d.generate_undirected(500, 9);
            assert!(list.is_symmetric(), "{}", d.name);
        }
    }

    #[test]
    fn determinism_across_calls() {
        let d = Dataset::by_name("soc-Epinions").unwrap();
        assert_eq!(d.generate(50, 3).edges, d.generate(50, 3).edges);
    }
}
