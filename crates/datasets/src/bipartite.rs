//! d-regular bipartite generator: the stand-in for the paper's
//! bipartite-1M-3M and bipartite-2B-6B graphs.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::edgelist::EdgeList;

/// Generates a d-regular bipartite graph: parts `0..n` and `n..2n`, every
/// vertex with exactly `degree` neighbors on the other side, built from
/// `degree` random perfect matchings (union kept as a multigraph, like
/// the configuration model; duplicate pairs are possible but rare).
///
/// The returned edge list is the *undirected* encoding: each edge appears
/// in both directions, so `num_edges() == 2 * n * degree`.
pub fn generate_regular(name: &str, n_per_side: u64, degree: u64, seed: u64) -> EdgeList {
    assert!(n_per_side > 0 && degree > 0);
    let n = n_per_side;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity((2 * n * degree) as usize);
    let mut permutation: Vec<u64> = (0..n).collect();
    for round in 0..degree {
        // Each round is a perfect matching: left i — right π(i).
        permutation.shuffle(&mut rng);
        let _ = round;
        for (left, &right_offset) in permutation.iter().enumerate() {
            let left = left as u64;
            let right = n + right_offset;
            edges.push((left, right));
            edges.push((right, left));
        }
    }
    EdgeList::new(name, 2 * n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_vertex_has_exact_degree() {
        let g = generate_regular("b", 100, 3, 5);
        assert_eq!(g.num_vertices, 200);
        assert_eq!(g.num_edges(), 600, "2 * n_per_side * degree directed edges");
        for (v, d) in g.out_degrees().iter().enumerate() {
            assert_eq!(*d, 3, "vertex {v}");
        }
        assert!(g.is_symmetric());
    }

    #[test]
    fn edges_cross_the_partition() {
        let g = generate_regular("b", 50, 4, 1);
        for &(a, b) in &g.edges {
            assert!((a < 50) != (b < 50), "edge {a}-{b} stays inside one part");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate_regular("b", 64, 3, 2).edges, generate_regular("b", 64, 3, 2).edges);
        assert_ne!(generate_regular("b", 64, 3, 2).edges, generate_regular("b", 64, 3, 3).edges);
    }
}
