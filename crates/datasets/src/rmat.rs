//! R-MAT recursive-matrix generator: the power-law stand-in for the
//! paper's web graphs (web-BS, sk-2005).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::edgelist::EdgeList;

/// R-MAT quadrant probabilities. The defaults (0.57, 0.19, 0.19, 0.05)
/// are the standard web-graph parameters from the R-MAT paper.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        Self { a: 0.57, b: 0.19, c: 0.19 }
    }
}

/// Generates a directed R-MAT graph with `num_vertices` vertices and
/// `num_edges` edges (self-loops and duplicates retained, as in raw web
/// crawls; call [`EdgeList::dedupe`] if you need them gone).
///
/// Vertex ids are drawn in a power-of-two grid and folded onto
/// `0..num_vertices`, so any vertex count works.
pub fn generate(
    name: &str,
    num_vertices: u64,
    num_edges: u64,
    params: RmatParams,
    seed: u64,
) -> EdgeList {
    assert!(num_vertices > 0, "need at least one vertex");
    let levels = 64 - (num_vertices.max(2) - 1).leading_zeros();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges as usize);
    let (a, ab, abc) = (params.a, params.a + params.b, params.a + params.b + params.c);
    for _ in 0..num_edges {
        let mut src = 0u64;
        let mut dst = 0u64;
        for _ in 0..levels {
            src <<= 1;
            dst <<= 1;
            let draw: f64 = rng.gen();
            if draw < a {
                // top-left: neither bit set
            } else if draw < ab {
                dst |= 1;
            } else if draw < abc {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        edges.push((src % num_vertices, dst % num_vertices));
    }
    EdgeList::new(name, num_vertices, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts_and_determinism() {
        let g1 = generate("w", 1000, 8000, RmatParams::default(), 42);
        let g2 = generate("w", 1000, 8000, RmatParams::default(), 42);
        assert_eq!(g1.num_vertices, 1000);
        assert_eq!(g1.num_edges(), 8000);
        assert_eq!(g1.edges, g2.edges);
        let g3 = generate("w", 1000, 8000, RmatParams::default(), 43);
        assert_ne!(g1.edges, g3.edges);
    }

    #[test]
    fn endpoints_in_range() {
        let g = generate("w", 123, 5000, RmatParams::default(), 7);
        assert!(g.edges.iter().all(|&(a, b)| a < 123 && b < 123));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // Power-law-ish: the busiest vertex should dwarf the median.
        let g = generate("w", 4096, 40_000, RmatParams::default(), 1);
        let mut degrees = g.out_degrees();
        degrees.sort_unstable();
        let max = *degrees.last().unwrap();
        let median = degrees[degrees.len() / 2];
        assert!(
            max > median.max(1) * 10,
            "expected a skewed distribution, max {max} median {median}"
        );
    }
}
