//! # graft-datasets
//!
//! Seeded synthetic graph generators standing in for the datasets of the
//! Graft paper (Tables 1 and 2). The paper's evaluation measures
//! *instrumentation overhead*, which depends on graph scale and shape —
//! not on the exact real-world topology — so each real graph is replaced
//! by a generator matched to its vertex/edge counts and degree
//! character:
//!
//! | Paper dataset | Stand-in |
//! |---|---|
//! | web-BS, sk-2005 (web graphs) | [`rmat`] power-law generator |
//! | soc-Epinions, twitter (social graphs) | [`social`] preferential attachment |
//! | bipartite-1M-3M, bipartite-2B-6B | [`bipartite`] d-regular bipartite |
//!
//! [`catalog`] instantiates the six named datasets at a configurable
//! linear scale divisor (Table 2's graphs are billions of edges; the
//! benchmarks default to 1/1000 scale). [`weighted`] attaches symmetric
//! edge weights and can inject the asymmetric-weight corruption of the
//! paper's Scenario 4.3.
//!
//! All generators are deterministic in their seeds.

#![forbid(unsafe_code)]

pub mod bipartite;
pub mod catalog;
pub mod edgelist;
pub mod rmat;
pub mod social;
pub mod weighted;

pub use catalog::Dataset;
pub use edgelist::EdgeList;
