//! The GraftBin `serde::Deserializer`.

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};

use crate::error::{Error, Result};
use crate::varint;

/// Deserializes a value of type `T` from `input`, requiring the entire
/// slice to be consumed.
pub fn from_slice<T: DeserializeOwned>(input: &[u8]) -> Result<T> {
    let mut de = Deserializer::new(input);
    let value = T::deserialize(&mut de)?;
    if de.rest.is_empty() {
        Ok(value)
    } else {
        Err(Error::TrailingBytes(de.rest.len()))
    }
}

/// Streaming GraftBin decoder over a borrowed input slice.
pub struct Deserializer<'de> {
    rest: &'de [u8],
}

impl<'de> Deserializer<'de> {
    /// Creates a deserializer over `input`.
    pub fn new(input: &'de [u8]) -> Self {
        Self { rest: input }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    fn read_u64(&mut self) -> Result<u64> {
        let (v, n) = varint::read_u64(self.rest)?;
        self.rest = &self.rest[n..];
        Ok(v)
    }

    fn read_i64(&mut self) -> Result<i64> {
        let (v, n) = varint::read_i64(self.rest)?;
        self.rest = &self.rest[n..];
        Ok(v)
    }

    fn read_len(&mut self) -> Result<usize> {
        usize::try_from(self.read_u64()?).map_err(|_| Error::LengthOverflow)
    }

    fn read_exact(&mut self, n: usize) -> Result<&'de [u8]> {
        let bytes = self.rest.get(..n).ok_or(Error::UnexpectedEof)?;
        self.rest = &self.rest[n..];
        Ok(bytes)
    }

    fn read_tag(&mut self) -> Result<bool> {
        let byte = *self.rest.first().ok_or(Error::UnexpectedEof)?;
        self.rest = &self.rest[1..];
        match byte {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::InvalidTag(other)),
        }
    }

    fn read_str(&mut self) -> Result<&'de str> {
        let len = self.read_len()?;
        let bytes = self.read_exact(len)?;
        std::str::from_utf8(bytes).map_err(Error::InvalidUtf8)
    }
}

macro_rules! deserialize_signed {
    ($method:ident, $visit:ident, $ty:ty) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            let v = self.read_i64()?;
            let narrowed =
                <$ty>::try_from(v).map_err(|_| Error::Message(format!("{v} out of range")))?;
            visitor.$visit(narrowed)
        }
    };
}

macro_rules! deserialize_unsigned {
    ($method:ident, $visit:ident, $ty:ty) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            let v = self.read_u64()?;
            let narrowed =
                <$ty>::try_from(v).map_err(|_| Error::Message(format!("{v} out of range")))?;
            visitor.$visit(narrowed)
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Deserializer<'de> {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::NotSelfDescribing)
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_bool(self.read_tag()?)
    }

    deserialize_signed!(deserialize_i8, visit_i8, i8);
    deserialize_signed!(deserialize_i16, visit_i16, i16);
    deserialize_signed!(deserialize_i32, visit_i32, i32);

    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = self.read_i64()?;
        visitor.visit_i64(v)
    }

    deserialize_unsigned!(deserialize_u8, visit_u8, u8);
    deserialize_unsigned!(deserialize_u16, visit_u16, u16);
    deserialize_unsigned!(deserialize_u32, visit_u32, u32);

    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = self.read_u64()?;
        visitor.visit_u64(v)
    }

    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let bytes: [u8; 4] = self.read_exact(4)?.try_into().expect("slice of length 4");
        visitor.visit_f32(f32::from_le_bytes(bytes))
    }

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let bytes: [u8; 8] = self.read_exact(8)?.try_into().expect("slice of length 8");
        visitor.visit_f64(f64::from_le_bytes(bytes))
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let raw = self.read_u64()?;
        let raw = u32::try_from(raw).map_err(|_| Error::InvalidChar(u32::MAX))?;
        let c = char::from_u32(raw).ok_or(Error::InvalidChar(raw))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_borrowed_str(self.read_str()?)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.read_len()?;
        visitor.visit_borrowed_bytes(self.read_exact(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        if self.read_tag()? {
            visitor.visit_some(self)
        } else {
            visitor.visit_none()
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.read_len()?;
        visitor.visit_seq(CountedAccess { de: self, remaining: len })
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(CountedAccess { de: self, remaining: len })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.read_len()?;
        visitor.visit_map(CountedAccess { de: self, remaining: len })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::NotSelfDescribing)
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::NotSelfDescribing)
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct CountedAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    remaining: usize,
}

impl<'de> de::SeqAccess<'de> for CountedAccess<'_, 'de> {
    type Error = Error;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de> de::MapAccess<'de> for CountedAccess<'_, 'de> {
    type Error = Error;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'a, 'de> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = Error;
    type Variant = VariantAccess<'a, 'de>;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant)> {
        let index = self.de.read_u64()?;
        let index = u32::try_from(index).map_err(|_| Error::InvalidVariant(u32::MAX))?;
        let value =
            seed.deserialize(<u32 as IntoDeserializer<'de, Error>>::into_deserializer(index))?;
        Ok((value, VariantAccess { de: self.de }))
    }
}

struct VariantAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'de> de::VariantAccess<'de> for VariantAccess<'_, 'de> {
    type Error = Error;

    fn unit_variant(self) -> Result<()> {
        Ok(())
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(CountedAccess { de: self.de, remaining: len })
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(CountedAccess { de: self.de, remaining: fields.len() })
    }
}
