//! # graft-codec
//!
//! A compact, non-self-describing binary serialization format used by the
//! Graft debugger for its trace files, playing the role that Hadoop
//! `Writable`s play in the original Java implementation.
//!
//! The format ("GraftBin") is a straightforward field-ordered encoding:
//!
//! * unsigned integers are LEB128 varints,
//! * signed integers are zigzag-encoded varints,
//! * `bool` is a single byte (`0` or `1`),
//! * floats are little-endian IEEE-754 bit patterns,
//! * strings and byte arrays are a varint length followed by the raw bytes,
//! * `Option` is a one-byte tag followed by the value when present,
//! * sequences and maps are a varint length followed by their elements,
//! * structs and tuples are their fields in declaration order,
//! * enums are a varint variant index followed by the variant's content.
//!
//! Because the format carries no schema, decoding requires the exact type
//! that was encoded. That is always the case for Graft traces: the debug
//! session knows the `Computation` whose run it is inspecting.
//!
//! ## Example
//!
//! ```
//! use serde::{Serialize, Deserialize};
//!
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct Record { id: u64, score: f64, tags: Vec<String> }
//!
//! let rec = Record { id: 42, score: 0.5, tags: vec!["a".into(), "b".into()] };
//! let bytes = graft_codec::to_vec(&rec).unwrap();
//! let back: Record = graft_codec::from_slice(&bytes).unwrap();
//! assert_eq!(rec, back);
//! ```

#![forbid(unsafe_code)]

mod de;
mod error;
pub mod frame;
mod ser;
mod size;
mod value;
pub mod varint;

pub use de::{from_slice, Deserializer};
pub use error::{Error, Result};
pub use ser::{to_vec, to_writer, Serializer};
pub use size::{framed_size, serialized_size, varint_len};
pub use value::{normalize, to_bin_value, BinValue};

/// Encodes a value and prefixes it with its varint-encoded byte length.
///
/// Length-prefixed framing lets many records share one append-only trace
/// file: readers can skip or stream records without decoding them.
pub fn to_framed_vec<T: serde::Serialize>(value: &T) -> Result<Vec<u8>> {
    let body = to_vec(value)?;
    let mut out = Vec::with_capacity(body.len() + 5);
    varint::write_u64(&mut out, body.len() as u64);
    out.extend_from_slice(&body);
    Ok(out)
}

/// Decodes one length-prefixed record from the front of `input`.
///
/// Returns the decoded value and the number of bytes consumed (prefix +
/// body), so callers can advance through a stream of framed records.
pub fn from_framed_slice<T: serde::de::DeserializeOwned>(input: &[u8]) -> Result<(T, usize)> {
    let (len, prefix) = varint::read_u64(input)?;
    let len = usize::try_from(len).map_err(|_| Error::LengthOverflow)?;
    let end = prefix.checked_add(len).ok_or(Error::LengthOverflow)?;
    let body = input.get(prefix..end).ok_or(Error::UnexpectedEof)?;
    let value = from_slice(body)?;
    Ok((value, end))
}

/// Iterator over a byte buffer containing consecutive framed records.
pub struct FramedIter<'a, T> {
    rest: &'a [u8],
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<'a, T> FramedIter<'a, T> {
    /// Creates an iterator over the framed records in `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { rest: buf, _marker: std::marker::PhantomData }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }
}

impl<T: serde::de::DeserializeOwned> Iterator for FramedIter<'_, T> {
    type Item = Result<T>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.rest.is_empty() {
            return None;
        }
        match from_framed_slice::<T>(self.rest) {
            Ok((value, consumed)) => {
                self.rest = &self.rest[consumed..];
                Some(Ok(value))
            }
            Err(e) => {
                // Poison the iterator so an error is reported exactly once.
                self.rest = &[];
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
    struct Inner {
        flag: bool,
        label: String,
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
    enum Kind {
        Unit,
        Tuple(i32, i64),
        Struct { x: f32, inner: Inner },
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
    struct Everything {
        a: u8,
        b: u16,
        c: u32,
        d: u64,
        e: i8,
        f: i16,
        g: i32,
        h: i64,
        s: String,
        opt_some: Option<u32>,
        opt_none: Option<u32>,
        seq: Vec<Kind>,
        map: std::collections::BTreeMap<String, u64>,
        tup: (u8, String, bool),
        ch: char,
        bytes: Vec<u8>,
        unit: (),
        f32v: f32,
        f64v: f64,
    }

    fn sample() -> Everything {
        let mut map = std::collections::BTreeMap::new();
        map.insert("one".to_string(), 1);
        map.insert("two".to_string(), 2);
        Everything {
            a: 255,
            b: 65535,
            c: 7,
            d: u64::MAX,
            e: -128,
            f: -32768,
            g: i32::MIN,
            h: i64::MIN,
            s: "héllo ✓ world".to_string(),
            opt_some: Some(99),
            opt_none: None,
            seq: vec![
                Kind::Unit,
                Kind::Tuple(-5, 5),
                Kind::Struct { x: 1.5, inner: Inner { flag: true, label: "in".into() } },
            ],
            map,
            tup: (1, "t".into(), false),
            ch: '𝄞',
            bytes: vec![0, 1, 2, 254, 255],
            unit: (),
            f32v: -0.0,
            f64v: f64::MAX,
        }
    }

    #[test]
    fn roundtrip_everything() {
        let v = sample();
        let bytes = to_vec(&v).unwrap();
        let back: Everything = from_slice(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn binary_is_smaller_than_json() {
        let v = sample();
        let bin = to_vec(&v).unwrap();
        let json = serde_json::to_vec(&v).unwrap();
        assert!(bin.len() < json.len(), "bin {} >= json {}", bin.len(), json.len());
    }

    #[test]
    fn framed_roundtrip_stream() {
        let records: Vec<Inner> =
            (0..100).map(|i| Inner { flag: i % 2 == 0, label: format!("record-{i}") }).collect();
        let mut buf = Vec::new();
        for r in &records {
            buf.extend_from_slice(&to_framed_vec(r).unwrap());
        }
        let decoded: Result<Vec<Inner>> = FramedIter::new(&buf).collect();
        assert_eq!(decoded.unwrap(), records);
    }

    #[test]
    fn framed_iter_reports_truncation_once() {
        let rec = Inner { flag: true, label: "x".into() };
        let mut buf = to_framed_vec(&rec).unwrap();
        buf.truncate(buf.len() - 1);
        let mut it = FramedIter::<Inner>::new(&buf);
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = to_vec(&7u32).unwrap();
        bytes.push(0);
        let err = from_slice::<u32>(&bytes).unwrap_err();
        assert!(matches!(err, Error::TrailingBytes(_)));
    }

    #[test]
    fn eof_rejected() {
        let bytes = to_vec(&sample()).unwrap();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_slice::<Everything>(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unit_is_zero_bytes() {
        assert!(to_vec(&()).unwrap().is_empty());
    }

    #[test]
    fn nested_options() {
        let v: Option<Option<u8>> = Some(None);
        let bytes = to_vec(&v).unwrap();
        let back: Option<Option<u8>> = from_slice(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn char_boundaries() {
        for c in ['\0', 'a', 'ß', '✓', '𝄞', char::MAX] {
            let bytes = to_vec(&c).unwrap();
            let back: char = from_slice(&bytes).unwrap();
            assert_eq!(c, back);
        }
    }
}
