//! Error type shared by the GraftBin serializer and deserializer.

use std::fmt;

/// Result alias for codec operations.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors produced while encoding or decoding GraftBin data.
#[derive(Debug)]
pub enum Error {
    /// Input ended before a complete value was decoded.
    UnexpectedEof,
    /// A varint ran past its maximum width (corrupt input).
    VarintOverflow,
    /// A declared length did not fit in `usize` or overflowed arithmetic.
    LengthOverflow,
    /// A byte that must be `0` or `1` (bool / option tag) held another value.
    InvalidTag(u8),
    /// A decoded scalar was not a valid `char`.
    InvalidChar(u32),
    /// String bytes were not valid UTF-8.
    InvalidUtf8(std::str::Utf8Error),
    /// Bytes remained in the input after the value was fully decoded.
    TrailingBytes(usize),
    /// Sequences must know their length ahead of time in this format.
    UnknownLength,
    /// GraftBin does not support `deserialize_any`; the format carries no
    /// type information.
    NotSelfDescribing,
    /// An enum variant index was out of range for the target enum.
    InvalidVariant(u32),
    /// An I/O error from the underlying writer.
    Io(std::io::Error),
    /// A custom error raised by a `Serialize` or `Deserialize` impl.
    Message(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnexpectedEof => write!(f, "unexpected end of input"),
            Error::VarintOverflow => write!(f, "varint exceeds maximum width"),
            Error::LengthOverflow => write!(f, "declared length overflows usize"),
            Error::InvalidTag(b) => write!(f, "invalid tag byte {b:#04x} (expected 0 or 1)"),
            Error::InvalidChar(c) => write!(f, "scalar {c:#x} is not a valid char"),
            Error::InvalidUtf8(e) => write!(f, "invalid utf-8 in string: {e}"),
            Error::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after value"),
            Error::UnknownLength => write!(f, "sequence length must be known up front"),
            Error::NotSelfDescribing => {
                write!(f, "GraftBin is not self-describing; deserialize_any unsupported")
            }
            Error::InvalidVariant(v) => write!(f, "variant index {v} out of range"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Message(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::InvalidUtf8(e) => Some(e),
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Message(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Message(msg.to_string())
    }
}
