//! Type-erased JSON values over the GraftBin wire format.
//!
//! Binary trace records must stay browsable by tools that do not know the
//! computation's Rust types (`graft-cli`, `graft-server`). GraftBin
//! carries no schema, so type-erased fields are stored as a [`BinValue`]:
//! a `serde_json::Value` encoded as a tagged tree — a varint tag per node
//! (`0` null, `1` bool, `2` u64, `3` i64, `4` f64, `5` string, `6` array,
//! `7` object) followed by the node's payload in the ordinary GraftBin
//! encoding.
//!
//! The encoding is *dual-mode*: against a human-readable serializer
//! (JSON) a `BinValue` is transparent — it serializes exactly like the
//! `Value` it wraps — while against GraftBin it uses the tagged tree.
//! Together with [`normalize`], this gives the equivalence the trace
//! pipeline is built on: a record captured through the binary codec
//! reconstructs *the same* `serde_json::Value` tree that parsing the
//! JSON-lines rendition of the record would produce, so every view built
//! over either format is byte-identical.

use std::collections::BTreeMap;

use serde::de::{EnumAccess, VariantAccess, Visitor};
use serde::ser::{SerializeMap, SerializeSeq};
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use serde_json::{Number, Value};

use crate::error::{Error, Result};

/// A `serde_json::Value` that round-trips through GraftBin (see the
/// module docs for the wire encoding).
#[derive(Clone, Debug, PartialEq)]
pub struct BinValue(pub Value);

/// Converts any serializable value into its *normalized* JSON tree — the
/// exact `Value` that serializing the input to JSON text and parsing it
/// back would produce (see [`normalize`]). This is the capture-side entry
/// point for type-erased binary trace fields.
pub fn to_bin_value<T: Serialize + ?Sized>(value: &T) -> Result<BinValue> {
    let mut json = serde_json::to_value(value).map_err(|e| Error::Message(e.to_string()))?;
    normalize(&mut json);
    Ok(BinValue(json))
}

/// Rewrites `value` in place to the tree that a JSON text round-trip
/// (`write` then `parse`) would yield:
///
/// * non-negative `I64` numbers become `U64` (the parser reads any
///   unsigned integer text as `U64`),
/// * `NaN` floats become `Null` (the writer renders NaN as `null`),
/// * everything else — including `±1e999` infinities, which survive the
///   text round-trip — is already in parser-canonical form.
pub fn normalize(value: &mut Value) {
    match value {
        Value::Number(Number::I64(v)) if *v >= 0 => {
            *value = Value::Number(Number::U64(*v as u64));
        }
        Value::Number(Number::F64(f)) if f.is_nan() => *value = Value::Null,
        Value::Array(items) => {
            for item in items {
                normalize(item);
            }
        }
        Value::Object(map) => {
            for item in map.values_mut() {
                normalize(item);
            }
        }
        _ => {}
    }
}

/// Variant names for the tagged encoding (indices are the wire tags).
const VARIANTS: &[&str] = &["Null", "Bool", "U64", "I64", "F64", "Str", "Array", "Object"];

/// Borrowing serializer for one `Value` node in the tagged encoding;
/// recursion goes through this wrapper so nested trees are encoded
/// without cloning.
struct Wrap<'a>(&'a Value);

struct SeqWrap<'a>(&'a [Value]);

struct MapWrap<'a>(&'a BTreeMap<String, Value>);

impl Serialize for Wrap<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        match self.0 {
            Value::Null => serializer.serialize_unit_variant("BinValue", 0, "Null"),
            Value::Bool(b) => serializer.serialize_newtype_variant("BinValue", 1, "Bool", b),
            Value::Number(Number::U64(v)) => {
                serializer.serialize_newtype_variant("BinValue", 2, "U64", v)
            }
            Value::Number(Number::I64(v)) => {
                serializer.serialize_newtype_variant("BinValue", 3, "I64", v)
            }
            Value::Number(Number::F64(v)) => {
                serializer.serialize_newtype_variant("BinValue", 4, "F64", v)
            }
            Value::String(s) => serializer.serialize_newtype_variant("BinValue", 5, "Str", s),
            Value::Array(items) => {
                serializer.serialize_newtype_variant("BinValue", 6, "Array", &SeqWrap(items))
            }
            Value::Object(map) => {
                serializer.serialize_newtype_variant("BinValue", 7, "Object", &MapWrap(map))
            }
        }
    }
}

impl Serialize for SeqWrap<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.0.len()))?;
        for item in self.0 {
            seq.serialize_element(&Wrap(item))?;
        }
        seq.end()
    }
}

impl Serialize for MapWrap<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.0.len()))?;
        for (key, value) in self.0 {
            map.serialize_key(key)?;
            map.serialize_value(&Wrap(value))?;
        }
        map.end()
    }
}

impl Serialize for BinValue {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        if serializer.is_human_readable() {
            // Transparent against JSON: a BinValue field renders exactly
            // like the Value it wraps.
            self.0.serialize(serializer)
        } else {
            Wrap(&self.0).serialize(serializer)
        }
    }
}

impl<'de> Deserialize<'de> for BinValue {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> std::result::Result<Self, D::Error> {
        if deserializer.is_human_readable() {
            return Value::deserialize(deserializer).map(BinValue);
        }
        struct BinValueVisitor;

        impl<'de> Visitor<'de> for BinValueVisitor {
            type Value = BinValue;

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a tagged BinValue tree")
            }

            fn visit_enum<A: EnumAccess<'de>>(
                self,
                data: A,
            ) -> std::result::Result<Self::Value, A::Error> {
                let (tag, variant) = data.variant::<u32>()?;
                let value = match tag {
                    0 => {
                        variant.unit_variant()?;
                        Value::Null
                    }
                    1 => Value::Bool(variant.newtype_variant()?),
                    2 => Value::Number(Number::U64(variant.newtype_variant()?)),
                    3 => Value::Number(Number::I64(variant.newtype_variant()?)),
                    4 => Value::Number(Number::F64(variant.newtype_variant()?)),
                    5 => Value::String(variant.newtype_variant()?),
                    6 => {
                        let items: Vec<BinValue> = variant.newtype_variant()?;
                        Value::Array(items.into_iter().map(|v| v.0).collect())
                    }
                    7 => {
                        let map: BTreeMap<String, BinValue> = variant.newtype_variant()?;
                        Value::Object(map.into_iter().map(|(k, v)| (k, v.0)).collect())
                    }
                    other => {
                        return Err(serde::de::Error::custom(format!(
                            "invalid BinValue tag {other}"
                        )))
                    }
                };
                Ok(BinValue(value))
            }
        }

        deserializer.deserialize_enum("BinValue", VARIANTS, BinValueVisitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        serde_json::from_str(
            r#"{
                "id": 672,
                "neg": -4,
                "pi": 3.25,
                "label": "héllo ✓",
                "flag": true,
                "nothing": null,
                "seq": [1, -2, [true, "x"], {"k": 0.5}],
                "obj": {"a": 1, "b": [null]}
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn binvalue_roundtrips_through_graftbin() {
        let value = BinValue(sample());
        let bytes = crate::to_vec(&value).unwrap();
        let back: BinValue = crate::from_slice(&bytes).unwrap();
        assert_eq!(value, back);
    }

    #[test]
    fn binvalue_is_transparent_against_json() {
        let value = BinValue(sample());
        let json = serde_json::to_vec(&value).unwrap();
        let plain = serde_json::to_vec(&sample()).unwrap();
        assert_eq!(json, plain);
    }

    #[test]
    fn normalize_matches_a_json_text_roundtrip() {
        for raw in [
            Value::Number(Number::I64(5)),
            Value::Number(Number::I64(-5)),
            Value::Number(Number::I64(0)),
            Value::Number(Number::U64(u64::MAX)),
            Value::Number(Number::F64(2.5)),
            Value::Number(Number::F64(f64::NAN)),
            Value::Number(Number::F64(f64::INFINITY)),
            Value::Array(vec![Value::Number(Number::I64(3))]),
        ] {
            let mut normalized = raw.clone();
            normalize(&mut normalized);
            let text = serde_json::to_vec(&raw).unwrap();
            let reparsed: Value = serde_json::from_slice(&text).unwrap();
            assert_eq!(normalized, reparsed, "for {raw:?}");
        }
    }

    #[test]
    fn to_bin_value_matches_parsed_json_for_typed_leaves() {
        #[derive(Serialize)]
        struct Leaf {
            a: i64,
            b: f32,
            c: Vec<i32>,
        }
        let leaf = Leaf { a: 7, b: 1.5, c: vec![-1, 2] };
        let via_bin = to_bin_value(&leaf).unwrap().0;
        let via_text: Value = serde_json::from_slice(&serde_json::to_vec(&leaf).unwrap()).unwrap();
        assert_eq!(via_bin, via_text);
    }

    #[test]
    fn bad_tag_is_a_clean_error() {
        // Tag 9 is outside the BinValue variant range.
        let err = crate::from_slice::<BinValue>(&[9]).unwrap_err();
        assert!(err.to_string().contains("tag"), "{err}");
    }
}
