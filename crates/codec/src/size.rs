//! Serialized-size accounting without a serialization pass.
//!
//! [`serialized_size`] walks a value through a counting
//! [`serde::Serializer`] that mirrors the GraftBin encoding rules
//! byte-for-byte but only tallies lengths — no output buffer is
//! allocated and no bytes are copied. The out-of-core budget layer uses
//! it to charge partitions and shuffle batches for exactly the bytes a
//! spill would write, without actually spilling.

use serde::{ser, Serialize};

use crate::error::{Error, Result};
use crate::varint;

/// Number of bytes [`crate::to_vec`] would produce for `value`.
pub fn serialized_size<T: Serialize + ?Sized>(value: &T) -> Result<u64> {
    let mut counter = SizeCounter { bytes: 0 };
    value.serialize(&mut counter)?;
    Ok(counter.bytes)
}

/// Number of bytes [`crate::to_framed_vec`] would produce for `value`:
/// the body size plus its varint length prefix.
pub fn framed_size<T: Serialize + ?Sized>(value: &T) -> Result<u64> {
    let body = serialized_size(value)?;
    Ok(varint_len(body) + body)
}

/// Encoded length of a LEB128 varint, in bytes.
pub fn varint_len(value: u64) -> u64 {
    varint::encoded_len_u64(value) as u64
}

/// A `Serializer` that adds up the bytes [`crate::Serializer`] would
/// write. Every method must stay in lockstep with the real encoder —
/// the unit tests compare both against `to_vec` on representative
/// shapes.
struct SizeCounter {
    bytes: u64,
}

impl SizeCounter {
    fn count_u64(&mut self, v: u64) {
        self.bytes += varint_len(v);
    }

    fn count_i64(&mut self, v: i64) {
        self.bytes += varint_len(varint::zigzag_encode(v));
    }
}

impl ser::Serializer for &mut SizeCounter {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, _v: bool) -> Result<()> {
        self.bytes += 1;
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<()> {
        self.count_i64(v.into());
        Ok(())
    }

    fn serialize_i16(self, v: i16) -> Result<()> {
        self.count_i64(v.into());
        Ok(())
    }

    fn serialize_i32(self, v: i32) -> Result<()> {
        self.count_i64(v.into());
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<()> {
        self.count_i64(v);
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<()> {
        self.count_u64(v.into());
        Ok(())
    }

    fn serialize_u16(self, v: u16) -> Result<()> {
        self.count_u64(v.into());
        Ok(())
    }

    fn serialize_u32(self, v: u32) -> Result<()> {
        self.count_u64(v.into());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<()> {
        self.count_u64(v);
        Ok(())
    }

    fn serialize_f32(self, _v: f32) -> Result<()> {
        self.bytes += 4;
        Ok(())
    }

    fn serialize_f64(self, _v: f64) -> Result<()> {
        self.bytes += 8;
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<()> {
        self.count_u64(v as u64);
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<()> {
        self.serialize_bytes(v.as_bytes())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        self.count_u64(v.len() as u64);
        self.bytes += v.len() as u64;
        Ok(())
    }

    fn serialize_none(self) -> Result<()> {
        self.bytes += 1;
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        self.bytes += 1;
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<()> {
        self.count_u64(variant_index.into());
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<()> {
        self.count_u64(variant_index.into());
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq> {
        let len = len.ok_or(Error::UnknownLength)?;
        self.count_u64(len as u64);
        Ok(self)
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple> {
        Ok(self)
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct> {
        Ok(self)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant> {
        self.count_u64(variant_index.into());
        Ok(self)
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap> {
        let len = len.ok_or(Error::UnknownLength)?;
        self.count_u64(len as u64);
        Ok(self)
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self::SerializeStruct> {
        Ok(self)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant> {
        self.count_u64(variant_index.into());
        Ok(self)
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

impl ser::SerializeSeq for &mut SizeCounter {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeTuple for &mut SizeCounter {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeTupleStruct for &mut SizeCounter {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeTupleVariant for &mut SizeCounter {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeMap for &mut SizeCounter {
    type Ok = ();
    type Error = Error;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        key.serialize(&mut **self)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeStruct for &mut SizeCounter {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut SizeCounter {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    /// The sizes must equal the real encoder's output lengths; anything
    /// else would make the budget accounting drift from the spill files.
    fn assert_size_matches<T: Serialize>(value: &T) {
        let bytes = crate::to_vec(value).unwrap();
        assert_eq!(serialized_size(value).unwrap(), bytes.len() as u64);
        let framed = crate::to_framed_vec(value).unwrap();
        assert_eq!(framed_size(value).unwrap(), framed.len() as u64);
    }

    #[derive(Serialize, Deserialize)]
    struct Record {
        id: u64,
        score: f64,
        tags: Vec<String>,
        parent: Option<i64>,
        flag: bool,
    }

    #[derive(Serialize)]
    enum Shape {
        Point,
        Circle(f64),
        Rect { w: u32, h: u32 },
    }

    #[test]
    fn varint_len_matches_encoder() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            varint::write_u64(&mut buf, v);
            assert_eq!(varint_len(v), buf.len() as u64, "varint length for {v}");
        }
    }

    #[test]
    fn scalars_and_structs_match_round_trip_byte_counts() {
        assert_size_matches(&0u64);
        assert_size_matches(&u64::MAX);
        assert_size_matches(&-1i64);
        assert_size_matches(&i64::MIN);
        assert_size_matches(&3.25f64);
        assert_size_matches(&true);
        assert_size_matches(&'é');
        assert_size_matches(&"graft".to_string());
        assert_size_matches(&Record {
            id: 300,
            score: -0.25,
            tags: vec!["a".into(), "longer-tag".into()],
            parent: Some(-42),
            flag: false,
        });
        assert_size_matches(&Record {
            id: 0,
            score: f64::INFINITY,
            tags: vec![],
            parent: None,
            flag: true,
        });
    }

    #[test]
    fn containers_and_enums_match_round_trip_byte_counts() {
        assert_size_matches(&vec![1u64, 128, 16_384]);
        assert_size_matches(&(7u32, "pair".to_string(), -9i32));
        assert_size_matches(&Shape::Point);
        assert_size_matches(&Shape::Circle(2.5));
        assert_size_matches(&Shape::Rect { w: 640, h: 480 });
        let mut map = BTreeMap::new();
        map.insert(1u64, vec![0u8, 255]);
        map.insert(300u64, vec![]);
        assert_size_matches(&map);
        assert_size_matches(&Some(Box::new(128u64)));
        assert_size_matches(&Option::<u64>::None);
    }

    #[test]
    fn nested_vectors_match_round_trip_byte_counts() {
        let nested: Vec<Vec<(u64, f64)>> =
            vec![vec![(1, 0.5), (2, 1.5)], vec![], vec![(u64::MAX, -2.0)]];
        assert_size_matches(&nested);
    }
}
