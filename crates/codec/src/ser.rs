//! The GraftBin `serde::Serializer`.

use serde::{ser, Serialize};

use crate::error::{Error, Result};
use crate::varint;

/// Serializes `value` into a fresh byte vector.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    value.serialize(&mut Serializer::new(&mut out))?;
    Ok(out)
}

/// Serializes `value` into any `std::io::Write`.
pub fn to_writer<T: Serialize, W: std::io::Write>(value: &T, writer: &mut W) -> Result<()> {
    let bytes = to_vec(value)?;
    writer.write_all(&bytes)?;
    Ok(())
}

/// Streaming GraftBin encoder over a borrowed output buffer.
pub struct Serializer<'a> {
    out: &'a mut Vec<u8>,
}

impl<'a> Serializer<'a> {
    /// Creates a serializer appending to `out`.
    pub fn new(out: &'a mut Vec<u8>) -> Self {
        Self { out }
    }

    fn write_len(&mut self, len: usize) {
        varint::write_u64(self.out, len as u64);
    }
}

impl<'a, 'b> ser::Serializer for &'b mut Serializer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.out.push(v as u8);
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<()> {
        self.serialize_i64(v.into())
    }

    fn serialize_i16(self, v: i16) -> Result<()> {
        self.serialize_i64(v.into())
    }

    fn serialize_i32(self, v: i32) -> Result<()> {
        self.serialize_i64(v.into())
    }

    fn serialize_i64(self, v: i64) -> Result<()> {
        varint::write_i64(self.out, v);
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<()> {
        self.serialize_u64(v.into())
    }

    fn serialize_u16(self, v: u16) -> Result<()> {
        self.serialize_u64(v.into())
    }

    fn serialize_u32(self, v: u32) -> Result<()> {
        self.serialize_u64(v.into())
    }

    fn serialize_u64(self, v: u64) -> Result<()> {
        varint::write_u64(self.out, v);
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<()> {
        self.serialize_u32(v as u32)
    }

    fn serialize_str(self, v: &str) -> Result<()> {
        self.serialize_bytes(v.as_bytes())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        self.write_len(v.len());
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<()> {
        self.out.push(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        self.out.push(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<()> {
        self.serialize_u32(variant_index)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<()> {
        varint::write_u64(self.out, variant_index.into());
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq> {
        let len = len.ok_or(Error::UnknownLength)?;
        self.write_len(len);
        Ok(self)
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple> {
        Ok(self)
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct> {
        Ok(self)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant> {
        varint::write_u64(self.out, variant_index.into());
        Ok(self)
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap> {
        let len = len.ok_or(Error::UnknownLength)?;
        self.write_len(len);
        Ok(self)
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self::SerializeStruct> {
        Ok(self)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant> {
        varint::write_u64(self.out, variant_index.into());
        Ok(self)
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

impl ser::SerializeSeq for &mut Serializer<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeTuple for &mut Serializer<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeTupleStruct for &mut Serializer<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeTupleVariant for &mut Serializer<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeMap for &mut Serializer<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        key.serialize(&mut **self)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeStruct for &mut Serializer<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut Serializer<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}
