//! Kind-tagged frames: the binary trace file layout.
//!
//! A binary trace channel is a stream of frames, each
//!
//! ```text
//! [len varint][kind u8][payload: len - 1 bytes]
//! ```
//!
//! where `len` counts the kind byte plus the payload, so a reader can hop
//! frame to frame — or skip whole groups of frames — by reading one
//! varint per frame and never touching payloads. Record kinds are defined
//! by the consumer (`graft-core` uses vertex / master / index); this
//! module only knows the framing.
//!
//! The scanner distinguishes the two corruption classes trace readers
//! care about: a frame that *overruns the end of the buffer*
//! ([`Error::UnexpectedEof`]) is the shape a torn tail write leaves
//! behind and may be leniently skipped when tailing a live file, while
//! anything else (zero-length frame, varint overflow) is structural
//! corruption.

use serde::Serialize;

use crate::error::{Error, Result};
use crate::{serialized_size, varint, Serializer};

/// One frame yielded by a [`FrameScanner`].
#[derive(Clone, Copy, Debug)]
pub struct Frame<'a> {
    /// The record-kind byte.
    pub kind: u8,
    /// The frame's payload bytes.
    pub payload: &'a [u8],
    /// Byte offset of the frame's length prefix in the scanned buffer.
    pub start: usize,
    /// Byte offset of the payload within the scanned buffer.
    pub payload_start: usize,
    /// Byte offset one past the frame (the next frame's `start`).
    pub end: usize,
}

/// Appends one frame with the given kind and raw payload to `out`.
pub fn write_frame(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    varint::write_u64(out, 1 + payload.len() as u64);
    out.push(kind);
    out.extend_from_slice(payload);
}

/// Appends one frame whose payload is the GraftBin encoding of `value`.
///
/// The payload length is computed up front with [`serialized_size`], so
/// the value is encoded directly into `out` — no intermediate buffer.
pub fn write_value_frame<T: Serialize + ?Sized>(
    out: &mut Vec<u8>,
    kind: u8,
    value: &T,
) -> Result<()> {
    let payload = serialized_size(value)?;
    varint::write_u64(out, 1 + payload);
    out.push(kind);
    value.serialize(&mut Serializer::new(out))?;
    Ok(())
}

/// Sequential reader over the frames in a byte buffer.
pub struct FrameScanner<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameScanner<'a> {
    /// Creates a scanner over `buf`, positioned at the first frame.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Byte offset of the next unread frame.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Reads the next frame, `Ok(None)` at a clean end of input.
    ///
    /// On error the scanner does not advance; `offset()` then points at
    /// the offending frame.
    pub fn next_frame(&mut self) -> Result<Option<Frame<'a>>> {
        if self.pos == self.buf.len() {
            return Ok(None);
        }
        let (len, prefix) = varint::read_u64(&self.buf[self.pos..])?;
        if len == 0 {
            return Err(Error::Message(format!(
                "zero-length frame at byte {} (missing record kind)",
                self.pos
            )));
        }
        let len = usize::try_from(len).map_err(|_| Error::LengthOverflow)?;
        let payload_start = self.pos.checked_add(prefix + 1).ok_or(Error::LengthOverflow)?;
        let end = self.pos.checked_add(prefix + len).ok_or(Error::LengthOverflow)?;
        if end > self.buf.len() {
            return Err(Error::UnexpectedEof);
        }
        let frame = Frame {
            kind: self.buf[payload_start - 1],
            payload: &self.buf[payload_start..end],
            start: self.pos,
            payload_start,
            end,
        };
        self.pos = end;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_with_offsets() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"alpha");
        write_value_frame(&mut buf, 2, &(7u64, "beta")).unwrap();
        write_frame(&mut buf, 3, b"");

        let mut scanner = FrameScanner::new(&buf);
        let first = scanner.next_frame().unwrap().unwrap();
        assert_eq!((first.kind, first.payload), (1, b"alpha".as_slice()));
        assert_eq!(first.start, 0);
        assert_eq!(first.payload_start, 2);

        let second = scanner.next_frame().unwrap().unwrap();
        assert_eq!(second.kind, 2);
        assert_eq!(second.start, first.end);
        let decoded: (u64, String) = crate::from_slice(second.payload).unwrap();
        assert_eq!(decoded, (7, "beta".to_string()));

        let third = scanner.next_frame().unwrap().unwrap();
        assert_eq!((third.kind, third.payload.len()), (3, 0));
        assert_eq!(third.end, buf.len());
        assert!(scanner.next_frame().unwrap().is_none());
    }

    #[test]
    fn value_frame_length_is_exact() {
        let mut buf = Vec::new();
        write_value_frame(&mut buf, 9, &vec![1u64, 2, 3]).unwrap();
        let mut scanner = FrameScanner::new(&buf);
        let frame = scanner.next_frame().unwrap().unwrap();
        assert_eq!(frame.payload.len() as u64, serialized_size(&vec![1u64, 2, 3]).unwrap());
        assert!(scanner.next_frame().unwrap().is_none());
    }

    #[test]
    fn truncated_frame_is_eof_and_does_not_advance() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"0123456789");
        let cut = &buf[..buf.len() - 3];
        let mut scanner = FrameScanner::new(cut);
        assert!(matches!(scanner.next_frame(), Err(Error::UnexpectedEof)));
        assert_eq!(scanner.offset(), 0);
    }

    #[test]
    fn truncated_length_varint_is_eof() {
        // 0x80 continues a varint that never terminates.
        let mut scanner = FrameScanner::new(&[0x80]);
        assert!(matches!(scanner.next_frame(), Err(Error::UnexpectedEof)));
    }

    #[test]
    fn zero_length_frame_is_structural_corruption() {
        let mut scanner = FrameScanner::new(&[0x00]);
        let err = scanner.next_frame().unwrap_err();
        assert!(err.to_string().contains("zero-length"), "{err}");
    }

    #[test]
    fn huge_declared_length_is_eof_not_allocation() {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, u64::MAX / 2);
        buf.push(1);
        let mut scanner = FrameScanner::new(&buf);
        assert!(scanner.next_frame().is_err());
    }
}
