//! LEB128 varint and zigzag primitives underlying the GraftBin format.
//!
//! These are exposed publicly because the DFS block layer and the trace
//! framing both use the same integer encodings directly.

use crate::error::{Error, Result};

/// Maximum number of bytes a `u64` varint can occupy.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends `value` to `out` as an LEB128 varint.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `value` to `out` zigzag-encoded then LEB128-encoded.
pub fn write_i64(out: &mut Vec<u8>, value: i64) {
    write_u64(out, zigzag_encode(value));
}

/// Reads an LEB128 varint from the front of `input`.
///
/// Returns the value and the number of bytes consumed.
pub fn read_u64(input: &[u8]) -> Result<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return Err(Error::VarintOverflow);
        }
        let low = u64::from(byte & 0x7f);
        // The tenth byte may only contribute one bit.
        if shift == 63 && low > 1 {
            return Err(Error::VarintOverflow);
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(Error::UnexpectedEof)
}

/// Reads a zigzag varint from the front of `input`.
pub fn read_i64(input: &[u8]) -> Result<(i64, usize)> {
    let (raw, n) = read_u64(input)?;
    Ok((zigzag_decode(raw), n))
}

/// Maps signed integers onto unsigned ones with small absolute values
/// staying small: `0, -1, 1, -2, 2, …` → `0, 1, 2, 3, 4, …`.
#[inline]
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Number of bytes [`write_u64`] would emit for `value`.
pub fn encoded_len_u64(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_representative_values() {
        let cases = [
            0u64,
            1,
            127,
            128,
            255,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &cases {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), encoded_len_u64(v), "len mismatch for {v}");
            let (back, n) = read_u64(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn zigzag_is_order_preserving_near_zero() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_encode(i64::MIN), u64::MAX);
        for v in [-1000i64, -1, 0, 1, 1000, i64::MIN, i64::MAX] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn signed_roundtrip() {
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let (back, _) = read_i64(&buf).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn eof_and_overflow_detected() {
        assert!(matches!(read_u64(&[]), Err(Error::UnexpectedEof)));
        assert!(matches!(read_u64(&[0x80]), Err(Error::UnexpectedEof)));
        // Eleven continuation bytes can never be a valid u64.
        let too_long = [0xffu8; 11];
        assert!(matches!(read_u64(&too_long), Err(Error::VarintOverflow)));
        // Ten bytes where the last contributes more than one bit.
        let mut overflowing = vec![0xffu8; 9];
        overflowing.push(0x02);
        assert!(matches!(read_u64(&overflowing), Err(Error::VarintOverflow)));
    }

    #[test]
    fn max_u64_is_ten_bytes() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        assert_eq!(buf.len(), MAX_VARINT_LEN);
    }
}
