//! Randomized tests: every value GraftBin can encode decodes back to
//! itself. Seeded generation keeps the cases reproducible offline.

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
enum Tree {
    Leaf,
    Value(i64),
    Node(Box<Tree>, Box<Tree>),
    Tagged { name: String, child: Box<Tree> },
}

fn random_string(rng: &mut rand::rngs::StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| {
            // Mix ASCII with a few multi-byte code points to stress UTF-8
            // length handling in the string codec.
            match rng.gen_range(0..8u32) {
                0 => 'λ',
                1 => '€',
                2 => '\u{1F600}',
                _ => char::from(rng.gen_range(32u8..127)),
            }
        })
        .collect()
}

fn random_tree(rng: &mut rand::rngs::StdRng, depth: u32) -> Tree {
    if depth == 0 {
        return if rng.gen_bool(0.5) { Tree::Leaf } else { Tree::Value(rng.gen()) };
    }
    match rng.gen_range(0..4u32) {
        0 => Tree::Leaf,
        1 => Tree::Value(rng.gen()),
        2 => {
            Tree::Node(Box::new(random_tree(rng, depth - 1)), Box::new(random_tree(rng, depth - 1)))
        }
        _ => Tree::Tagged {
            name: random_string(rng, 12),
            child: Box::new(random_tree(rng, depth - 1)),
        },
    }
}

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
struct Mixed {
    u: u64,
    i: i64,
    small: (u8, i8, u16, i16, u32, i32),
    f: f64,
    g: f32,
    b: bool,
    s: String,
    opt: Option<String>,
    bytes: Vec<u8>,
    seq: Vec<i32>,
    map: std::collections::BTreeMap<u32, String>,
    tree: Tree,
}

fn random_mixed(rng: &mut rand::rngs::StdRng) -> Mixed {
    let f = match rng.gen_range(0..10u32) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        _ => f64::from_bits(rng.gen()),
    };
    Mixed {
        u: rng.gen(),
        i: rng.gen(),
        small: (
            rng.gen_range(0..=u8::MAX),
            rng.gen_range(i8::MIN..=i8::MAX),
            rng.gen_range(0..=u16::MAX),
            rng.gen_range(i16::MIN..=i16::MAX),
            rng.gen(),
            rng.gen_range(i32::MIN..=i32::MAX),
        ),
        f,
        g: f32::from_bits(rng.gen()),
        b: rng.gen(),
        s: random_string(rng, 24),
        opt: if rng.gen_bool(0.5) { Some(random_string(rng, 8)) } else { None },
        bytes: (0..rng.gen_range(0..64usize)).map(|_| rng.gen_range(0..=u8::MAX)).collect(),
        seq: (0..rng.gen_range(0..32usize)).map(|_| rng.gen_range(i32::MIN..=i32::MAX)).collect(),
        map: (0..rng.gen_range(0..8usize)).map(|_| (rng.gen(), random_string(rng, 6))).collect(),
        tree: random_tree(rng, 4),
    }
}

/// Compares while treating NaN as equal to itself (bit-level for floats).
fn mixed_eq(a: &Mixed, b: &Mixed) -> bool {
    a.u == b.u
        && a.i == b.i
        && a.small == b.small
        && a.f.to_bits() == b.f.to_bits()
        && a.g.to_bits() == b.g.to_bits()
        && a.b == b.b
        && a.s == b.s
        && a.opt == b.opt
        && a.bytes == b.bytes
        && a.seq == b.seq
        && a.map == b.map
        && a.tree == b.tree
}

#[test]
fn roundtrip_mixed() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DEC01);
    for _ in 0..256 {
        let v = random_mixed(&mut rng);
        let bytes = graft_codec::to_vec(&v).unwrap();
        let back: Mixed = graft_codec::from_slice(&bytes).unwrap();
        assert!(mixed_eq(&v, &back), "roundtrip diverged for {v:?}");
    }
}

#[test]
fn roundtrip_framed() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DEC02);
    for _ in 0..64 {
        let values: Vec<Mixed> =
            (0..rng.gen_range(0..8usize)).map(|_| random_mixed(&mut rng)).collect();
        let mut buf = Vec::new();
        for v in &values {
            buf.extend_from_slice(&graft_codec::to_framed_vec(v).unwrap());
        }
        let decoded: Result<Vec<Mixed>, _> = graft_codec::FramedIter::new(&buf).collect();
        let decoded = decoded.unwrap();
        assert_eq!(decoded.len(), values.len());
        for (a, b) in values.iter().zip(&decoded) {
            assert!(mixed_eq(a, b));
        }
    }
}

#[test]
fn varint_roundtrip() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DEC03);
    let mut cases: Vec<u64> = (0..512).map(|_| rng.gen()).collect();
    // Boundary cases around each varint length step.
    for shift in 0..10 {
        let edge = 1u64 << (7 * shift);
        cases.extend([edge.wrapping_sub(1), edge, edge.wrapping_add(1)]);
    }
    cases.extend([0, 1, u64::MAX]);
    for v in cases {
        let mut buf = Vec::new();
        graft_codec::varint::write_u64(&mut buf, v);
        let (back, n) = graft_codec::varint::read_u64(&buf).unwrap();
        assert_eq!(back, v);
        assert_eq!(n, buf.len());
        assert_eq!(n, graft_codec::varint::encoded_len_u64(v));
    }
}

#[test]
fn zigzag_roundtrip() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DEC04);
    let mut cases: Vec<i64> = (0..512).map(|_| rng.gen()).collect();
    cases.extend([0, 1, -1, i64::MIN, i64::MAX]);
    for v in cases {
        let enc = graft_codec::varint::zigzag_encode(v);
        assert_eq!(graft_codec::varint::zigzag_decode(enc), v);
    }
}

#[test]
fn decoder_never_panics_on_garbage() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DEC05);
    for _ in 0..256 {
        let bytes: Vec<u8> =
            (0..rng.gen_range(0..256usize)).map(|_| rng.gen_range(0..=u8::MAX)).collect();
        // Any byte soup must produce Ok or Err, never a panic.
        let _ = graft_codec::from_slice::<Mixed>(&bytes);
        let _ = graft_codec::from_slice::<Tree>(&bytes);
        let _ = graft_codec::from_slice::<String>(&bytes);
        let _ = graft_codec::from_framed_slice::<Mixed>(&bytes);
        let _ = graft_codec::from_slice::<graft_codec::BinValue>(&bytes);
    }
}

fn random_json(rng: &mut rand::rngs::StdRng, depth: u32) -> serde_json::Value {
    use serde_json::{Number, Value};
    let pick = if depth == 0 { rng.gen_range(0..6u32) } else { rng.gen_range(0..8u32) };
    match pick {
        0 => Value::Null,
        1 => Value::Bool(rng.gen()),
        2 => Value::Number(Number::U64(rng.gen())),
        3 => Value::Number(Number::I64(rng.gen())),
        4 => {
            // Finite floats only: NaN normalizes to Null, and infinities
            // are a writer quirk already pinned by unit tests.
            let f = loop {
                let candidate = f64::from_bits(rng.gen());
                if candidate.is_finite() {
                    break candidate;
                }
            };
            Value::Number(Number::F64(f))
        }
        5 => Value::String(random_string(rng, 12)),
        6 => Value::Array(
            (0..rng.gen_range(0..5usize)).map(|_| random_json(rng, depth - 1)).collect(),
        ),
        _ => Value::Object(
            (0..rng.gen_range(0..5usize))
                .map(|_| (random_string(rng, 8), random_json(rng, depth - 1)))
                .collect(),
        ),
    }
}

/// The trace-pipeline equivalence, property-tested: for any JSON tree, the
/// GraftBin tagged encoding of its normalized form decodes back to exactly
/// the tree that a JSON *text* round-trip of the original would produce.
#[test]
fn binvalue_matches_json_text_roundtrip_randomized() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DEC06);
    for _ in 0..256 {
        let value = random_json(&mut rng, 4);

        let mut normalized = value.clone();
        graft_codec::normalize(&mut normalized);
        let bytes = graft_codec::to_vec(&graft_codec::BinValue(normalized.clone())).unwrap();
        let via_bin: graft_codec::BinValue = graft_codec::from_slice(&bytes).unwrap();

        let text = serde_json::to_vec(&value).unwrap();
        let via_text: serde_json::Value = serde_json::from_slice(&text).unwrap();

        assert_eq!(via_bin.0, via_text, "for {value:?}");
        // Normalization is idempotent, so re-encoding the decoded tree is
        // byte-identical — rollback/replay relies on this determinism.
        assert_eq!(graft_codec::to_vec(&via_bin).unwrap(), bytes);
    }
}

#[test]
fn frame_stream_roundtrips_randomized_batches() {
    use graft_codec::frame::{write_frame, write_value_frame, FrameScanner};
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DEC07);
    for _ in 0..64 {
        let mut buf = Vec::new();
        let mut expected: Vec<(u8, Vec<u8>)> = Vec::new();
        for _ in 0..rng.gen_range(0..12usize) {
            let kind = rng.gen_range(1..=9u8);
            if rng.gen_bool(0.5) {
                let payload: Vec<u8> =
                    (0..rng.gen_range(0..48usize)).map(|_| rng.gen_range(0..=u8::MAX)).collect();
                write_frame(&mut buf, kind, &payload);
                expected.push((kind, payload));
            } else {
                let value = graft_codec::BinValue(random_json(&mut rng, 3));
                let payload = graft_codec::to_vec(&value).unwrap();
                write_value_frame(&mut buf, kind, &value).unwrap();
                expected.push((kind, payload));
            }
        }

        let mut scanner = FrameScanner::new(&buf);
        let mut seen = Vec::new();
        let mut last_end = 0usize;
        while let Some(frame) = scanner.next_frame().unwrap() {
            assert_eq!(frame.start, last_end, "frames must be back to back");
            assert_eq!(frame.payload_start + frame.payload.len(), frame.end);
            last_end = frame.end;
            seen.push((frame.kind, frame.payload.to_vec()));
        }
        assert_eq!(last_end, buf.len());
        assert_eq!(seen, expected);
    }
}

/// A truncated frame stream (the shape a torn tail write leaves behind)
/// always splits into [complete frames] + Err(UnexpectedEof), or ends
/// cleanly when the cut lands exactly on a frame boundary.
#[test]
fn frame_stream_truncation_is_always_eof_or_clean() {
    use graft_codec::frame::{write_value_frame, FrameScanner};
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DEC08);
    for _ in 0..24 {
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for _ in 0..rng.gen_range(1..6usize) {
            write_value_frame(&mut buf, rng.gen_range(1..=3u8), &random_mixed(&mut rng)).unwrap();
            boundaries.push(buf.len());
        }
        for cut in 0..=buf.len() {
            let mut scanner = FrameScanner::new(&buf[..cut]);
            let outcome = loop {
                match scanner.next_frame() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break Ok(()),
                    Err(e) => break Err(e),
                }
            };
            if boundaries.contains(&cut) {
                assert!(outcome.is_ok(), "cut at boundary {cut} must end cleanly");
            } else {
                assert!(
                    matches!(outcome, Err(graft_codec::Error::UnexpectedEof)),
                    "cut mid-frame at {cut} must look like a torn tail"
                );
                // The scanner must stop at the last complete frame so a
                // tailing reader can resume from offset() later.
                assert!(boundaries.contains(&scanner.offset()));
            }
        }
    }
}

#[test]
fn frame_scanner_never_panics_on_corruption() {
    use graft_codec::frame::{write_value_frame, FrameScanner};
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DEC09);
    for _ in 0..128 {
        let mut buf = Vec::new();
        for _ in 0..rng.gen_range(1..5usize) {
            write_value_frame(&mut buf, rng.gen_range(1..=3u8), &random_mixed(&mut rng)).unwrap();
        }
        // Flip a few random bytes anywhere in the stream.
        for _ in 0..rng.gen_range(1..4usize) {
            let at = rng.gen_range(0..buf.len());
            buf[at] ^= 1 << rng.gen_range(0..8u8);
        }
        let mut scanner = FrameScanner::new(&buf);
        let mut steps = 0;
        while let Ok(Some(frame)) = scanner.next_frame() {
            // Payloads may now be garbage; decoding must still be a
            // clean Ok/Err, never a panic.
            let _ = graft_codec::from_slice::<graft_codec::BinValue>(frame.payload);
            let _ = graft_codec::from_slice::<Mixed>(frame.payload);
            steps += 1;
            assert!(steps <= 1024, "scanner must terminate");
        }
    }
}
