//! Randomized tests: every value GraftBin can encode decodes back to
//! itself. Seeded generation keeps the cases reproducible offline.

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
enum Tree {
    Leaf,
    Value(i64),
    Node(Box<Tree>, Box<Tree>),
    Tagged { name: String, child: Box<Tree> },
}

fn random_string(rng: &mut rand::rngs::StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| {
            // Mix ASCII with a few multi-byte code points to stress UTF-8
            // length handling in the string codec.
            match rng.gen_range(0..8u32) {
                0 => 'λ',
                1 => '€',
                2 => '\u{1F600}',
                _ => char::from(rng.gen_range(32u8..127)),
            }
        })
        .collect()
}

fn random_tree(rng: &mut rand::rngs::StdRng, depth: u32) -> Tree {
    if depth == 0 {
        return if rng.gen_bool(0.5) { Tree::Leaf } else { Tree::Value(rng.gen()) };
    }
    match rng.gen_range(0..4u32) {
        0 => Tree::Leaf,
        1 => Tree::Value(rng.gen()),
        2 => {
            Tree::Node(Box::new(random_tree(rng, depth - 1)), Box::new(random_tree(rng, depth - 1)))
        }
        _ => Tree::Tagged {
            name: random_string(rng, 12),
            child: Box::new(random_tree(rng, depth - 1)),
        },
    }
}

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
struct Mixed {
    u: u64,
    i: i64,
    small: (u8, i8, u16, i16, u32, i32),
    f: f64,
    g: f32,
    b: bool,
    s: String,
    opt: Option<String>,
    bytes: Vec<u8>,
    seq: Vec<i32>,
    map: std::collections::BTreeMap<u32, String>,
    tree: Tree,
}

fn random_mixed(rng: &mut rand::rngs::StdRng) -> Mixed {
    let f = match rng.gen_range(0..10u32) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        _ => f64::from_bits(rng.gen()),
    };
    Mixed {
        u: rng.gen(),
        i: rng.gen(),
        small: (
            rng.gen_range(0..=u8::MAX),
            rng.gen_range(i8::MIN..=i8::MAX),
            rng.gen_range(0..=u16::MAX),
            rng.gen_range(i16::MIN..=i16::MAX),
            rng.gen(),
            rng.gen_range(i32::MIN..=i32::MAX),
        ),
        f,
        g: f32::from_bits(rng.gen()),
        b: rng.gen(),
        s: random_string(rng, 24),
        opt: if rng.gen_bool(0.5) { Some(random_string(rng, 8)) } else { None },
        bytes: (0..rng.gen_range(0..64usize)).map(|_| rng.gen_range(0..=u8::MAX)).collect(),
        seq: (0..rng.gen_range(0..32usize)).map(|_| rng.gen_range(i32::MIN..=i32::MAX)).collect(),
        map: (0..rng.gen_range(0..8usize)).map(|_| (rng.gen(), random_string(rng, 6))).collect(),
        tree: random_tree(rng, 4),
    }
}

/// Compares while treating NaN as equal to itself (bit-level for floats).
fn mixed_eq(a: &Mixed, b: &Mixed) -> bool {
    a.u == b.u
        && a.i == b.i
        && a.small == b.small
        && a.f.to_bits() == b.f.to_bits()
        && a.g.to_bits() == b.g.to_bits()
        && a.b == b.b
        && a.s == b.s
        && a.opt == b.opt
        && a.bytes == b.bytes
        && a.seq == b.seq
        && a.map == b.map
        && a.tree == b.tree
}

#[test]
fn roundtrip_mixed() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DEC01);
    for _ in 0..256 {
        let v = random_mixed(&mut rng);
        let bytes = graft_codec::to_vec(&v).unwrap();
        let back: Mixed = graft_codec::from_slice(&bytes).unwrap();
        assert!(mixed_eq(&v, &back), "roundtrip diverged for {v:?}");
    }
}

#[test]
fn roundtrip_framed() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DEC02);
    for _ in 0..64 {
        let values: Vec<Mixed> =
            (0..rng.gen_range(0..8usize)).map(|_| random_mixed(&mut rng)).collect();
        let mut buf = Vec::new();
        for v in &values {
            buf.extend_from_slice(&graft_codec::to_framed_vec(v).unwrap());
        }
        let decoded: Result<Vec<Mixed>, _> = graft_codec::FramedIter::new(&buf).collect();
        let decoded = decoded.unwrap();
        assert_eq!(decoded.len(), values.len());
        for (a, b) in values.iter().zip(&decoded) {
            assert!(mixed_eq(a, b));
        }
    }
}

#[test]
fn varint_roundtrip() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DEC03);
    let mut cases: Vec<u64> = (0..512).map(|_| rng.gen()).collect();
    // Boundary cases around each varint length step.
    for shift in 0..10 {
        let edge = 1u64 << (7 * shift);
        cases.extend([edge.wrapping_sub(1), edge, edge.wrapping_add(1)]);
    }
    cases.extend([0, 1, u64::MAX]);
    for v in cases {
        let mut buf = Vec::new();
        graft_codec::varint::write_u64(&mut buf, v);
        let (back, n) = graft_codec::varint::read_u64(&buf).unwrap();
        assert_eq!(back, v);
        assert_eq!(n, buf.len());
        assert_eq!(n, graft_codec::varint::encoded_len_u64(v));
    }
}

#[test]
fn zigzag_roundtrip() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DEC04);
    let mut cases: Vec<i64> = (0..512).map(|_| rng.gen()).collect();
    cases.extend([0, 1, -1, i64::MIN, i64::MAX]);
    for v in cases {
        let enc = graft_codec::varint::zigzag_encode(v);
        assert_eq!(graft_codec::varint::zigzag_decode(enc), v);
    }
}

#[test]
fn decoder_never_panics_on_garbage() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DEC05);
    for _ in 0..256 {
        let bytes: Vec<u8> =
            (0..rng.gen_range(0..256usize)).map(|_| rng.gen_range(0..=u8::MAX)).collect();
        // Any byte soup must produce Ok or Err, never a panic.
        let _ = graft_codec::from_slice::<Mixed>(&bytes);
        let _ = graft_codec::from_slice::<Tree>(&bytes);
        let _ = graft_codec::from_slice::<String>(&bytes);
        let _ = graft_codec::from_framed_slice::<Mixed>(&bytes);
    }
}
