//! Property tests: every value GraftBin can encode decodes back to itself.

use proptest::prelude::*;
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
enum Tree {
    Leaf,
    Value(i64),
    Node(Box<Tree>, Box<Tree>),
    Tagged { name: String, child: Box<Tree> },
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![Just(Tree::Leaf), any::<i64>().prop_map(Tree::Value)];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
            (".{0,12}", inner)
                .prop_map(|(name, child)| Tree::Tagged { name, child: Box::new(child) }),
        ]
    })
}

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
struct Mixed {
    u: u64,
    i: i64,
    small: (u8, i8, u16, i16, u32, i32),
    f: f64,
    g: f32,
    b: bool,
    s: String,
    opt: Option<String>,
    bytes: Vec<u8>,
    seq: Vec<i32>,
    map: std::collections::BTreeMap<u32, String>,
    tree: Tree,
}

fn mixed_strategy() -> impl Strategy<Value = Mixed> {
    (
        any::<u64>(),
        any::<i64>(),
        any::<(u8, i8, u16, i16, u32, i32)>(),
        any::<f64>(),
        any::<f32>(),
        any::<bool>(),
        ".{0,24}",
        proptest::option::of(".{0,8}"),
        proptest::collection::vec(any::<u8>(), 0..64),
        proptest::collection::vec(any::<i32>(), 0..32),
        proptest::collection::btree_map(any::<u32>(), ".{0,6}", 0..8),
        tree_strategy(),
    )
        .prop_map(|(u, i, small, f, g, b, s, opt, bytes, seq, map, tree)| Mixed {
            u,
            i,
            small,
            f,
            g,
            b,
            s,
            opt,
            bytes,
            seq,
            map,
            tree,
        })
}

/// Compares while treating NaN as equal to itself (bit-level for floats).
fn mixed_eq(a: &Mixed, b: &Mixed) -> bool {
    a.u == b.u
        && a.i == b.i
        && a.small == b.small
        && a.f.to_bits() == b.f.to_bits()
        && a.g.to_bits() == b.g.to_bits()
        && a.b == b.b
        && a.s == b.s
        && a.opt == b.opt
        && a.bytes == b.bytes
        && a.seq == b.seq
        && a.map == b.map
        && a.tree == b.tree
}

proptest! {
    #[test]
    fn roundtrip_mixed(v in mixed_strategy()) {
        let bytes = graft_codec::to_vec(&v).unwrap();
        let back: Mixed = graft_codec::from_slice(&bytes).unwrap();
        prop_assert!(mixed_eq(&v, &back));
    }

    #[test]
    fn roundtrip_framed(values in proptest::collection::vec(mixed_strategy(), 0..8)) {
        let mut buf = Vec::new();
        for v in &values {
            buf.extend_from_slice(&graft_codec::to_framed_vec(v).unwrap());
        }
        let decoded: Result<Vec<Mixed>, _> =
            graft_codec::FramedIter::new(&buf).collect();
        let decoded = decoded.unwrap();
        prop_assert_eq!(decoded.len(), values.len());
        for (a, b) in values.iter().zip(&decoded) {
            prop_assert!(mixed_eq(a, b));
        }
    }

    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        graft_codec::varint::write_u64(&mut buf, v);
        let (back, n) = graft_codec::varint::read_u64(&buf).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(n, buf.len());
        prop_assert_eq!(n, graft_codec::varint::encoded_len_u64(v));
    }

    #[test]
    fn zigzag_roundtrip(v in any::<i64>()) {
        let enc = graft_codec::varint::zigzag_encode(v);
        prop_assert_eq!(graft_codec::varint::zigzag_decode(enc), v);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any byte soup must produce Ok or Err, never a panic.
        let _ = graft_codec::from_slice::<Mixed>(&bytes);
        let _ = graft_codec::from_slice::<Tree>(&bytes);
        let _ = graft_codec::from_slice::<String>(&bytes);
        let _ = graft_codec::from_framed_slice::<Mixed>(&bytes);
    }
}
