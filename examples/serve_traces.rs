//! Serve captured traces over HTTP: the `graft-server` quickstart.
//!
//! Runs graph coloring under Graft with capture-all enabled, writes the
//! traces to disk, then starts the debug server over them and walks the
//! API with the in-crate loopback client — the same sequence
//! `graft-cli serve` automates:
//!
//! ```text
//! cargo run -p graft-server --release --example serve_traces
//! ```
//!
//! Every body printed below is byte-identical to what
//! `graft-cli <dir> <view> --format json` prints for the same view,
//! because both go through `graft::views::json`.

use std::sync::Arc;

use graft::testing::premade;
use graft::{DebugConfig, GraftRunner};
use graft_algorithms::coloring::{GraphColoring, GraphColoringMaster};
use graft_dfs::{FileSystem, LocalFs};
use graft_obs::Obs;
use graft_server::client::HttpClient;
use graft_server::server::{serve, ServerConfig};

fn main() {
    // 1. Capture: run a job with tracing on, as usual.
    let root = std::env::temp_dir().join("graft-serve-example");
    let _ = std::fs::remove_dir_all(&root);
    let fs: Arc<dyn FileSystem> = Arc::new(LocalFs::new(&root).expect("trace dir"));
    let config = DebugConfig::<GraphColoring>::builder().capture_all_active(true).build();
    GraftRunner::new(GraphColoring::new(7), config)
        .with_master(GraphColoringMaster)
        .with_fs(Arc::clone(&fs))
        .num_workers(2)
        .run(premade::cycle(8, Default::default()), "/coloring-demo")
        .expect("coloring runs");

    // 2. Serve: one server over the whole trace root. Port 0 picks a free
    //    port; a real deployment would pin one (see `graft-cli serve`).
    let handle =
        serve(Arc::clone(&fs), "/", Obs::wall(), ServerConfig::default()).expect("server starts");
    println!("serving {} at http://{}", root.display(), handle.addr());

    // 3. Browse: the loopback client is plain HTTP/1.1 — curl works too.
    let mut client = HttpClient::new(handle.addr());
    for path in [
        "/jobs",
        "/jobs/coloring-demo/supersteps",
        "/jobs/coloring-demo/ss/0/node-link",
        "/jobs/coloring-demo/ss/0/tabular?page=1&per_page=3",
        "/jobs/coloring-demo/violations",
        "/jobs/coloring-demo/repro/0/0",
    ] {
        let response = client.get(path).expect("request");
        let body = response.text();
        let preview = body.lines().next().unwrap_or("");
        let preview = if preview.len() > 120 {
            format!("{}...", &preview[..120])
        } else {
            preview.to_string()
        };
        println!("GET {path} -> {} {}", response.status, preview);
    }

    // 4. Observe: request counters and latency histograms, Prometheus
    //    text format, engine and server metrics in one registry.
    let metrics = client.get("/metrics").expect("metrics");
    let served: Vec<&str> =
        metrics.text().lines().filter(|l| l.starts_with("graft_server_requests_")).collect();
    println!("--- request counters ---");
    for line in served {
        println!("{line}");
    }
}
