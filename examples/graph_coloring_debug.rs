//! Scenario 4.1 — debugging a buggy graph-coloring implementation.
//!
//! Runs the buggy MIS coloring on a scaled bipartite-1M-3M graph,
//! captures 10 random vertices and their neighbors, steps back from the
//! final superstep to find adjacent same-color vertices, pinpoints the
//! conflict-resolution superstep where both entered the MIS, renders the
//! views, and generates the reproduction test file.
//!
//! ```text
//! cargo run -p graft-core --release --example graph_coloring_debug
//! ```

use graft::{DebugConfig, GraftRunner};
use graft_algorithms::coloring::{GCState, GCValue, GraphColoring, GraphColoringMaster};
use graft_datasets::Dataset;

fn main() {
    let seed = 4;
    let graph =
        Dataset::by_name("bipartite-1M-3M").unwrap().generate(1000, 7).to_graph(GCValue::default());
    println!(
        "bipartite graph at 1/1000 scale: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let config = DebugConfig::<GraphColoring>::builder()
        .capture_random(10, seed)
        .capture_neighbors(true)
        .catch_exceptions(false)
        .build();
    let run = GraftRunner::new(GraphColoring::buggy(seed), config)
        .with_master(GraphColoringMaster)
        .num_workers(4)
        .max_supersteps(2000)
        .run(graph, "/traces/gc-demo")
        .expect("trace setup succeeds");
    let outcome = run.outcome.as_ref().expect("the buggy GC still terminates");
    println!(
        "job finished in {} supersteps; {} vertex contexts captured",
        outcome.stats.superstep_count(),
        run.captures
    );

    match graft_algorithms::reference::validate_coloring(&outcome.graph) {
        Ok(colors) => {
            println!("output validates with {colors} colors (bug not triggered; try another seed)")
        }
        Err(problem) => println!("output is WRONG: {problem}"),
    }

    let session = run.session().expect("traces load");

    // "We then go to the final superstep from the GUI…"
    let last = session.last_superstep().unwrap();
    println!("\n{}", session.tabular_view(last).to_text());

    // Find a captured pair of adjacent vertices with the same color.
    let mut conflict = None;
    'search: for trace in session.captured_at(last) {
        let Some(color) = trace.value_after.color else { continue };
        for (neighbor, _) in &trace.edges {
            if let Some(other) = session.vertex_at(*neighbor, last) {
                if other.value_after.color == Some(color) {
                    conflict = Some((trace.vertex, *neighbor, color));
                    break 'search;
                }
            }
        }
    }
    let Some((u, v, color)) = conflict else {
        println!("no captured conflict pair this seed — rerun with another capture seed");
        return;
    };
    println!("captured vertices {u} and {v} are adjacent and share color {color}");

    // "…replay the computation superstep by superstep…": find where both
    // entered the MIS.
    let conflict_superstep = session
        .supersteps()
        .into_iter()
        .find(|&s| {
            [u, v].iter().all(|&x| {
                session.vertex_at(x, s).is_some_and(|t| {
                    t.value_after.state == GCState::InSet && t.value_before.state != GCState::InSet
                })
            })
        })
        .expect("both vertices entered the MIS somewhere");
    println!("both entered the MIS in superstep {conflict_superstep}");

    // Node-link view of the suspicious superstep (Figure 3).
    println!("\n{}", session.node_link_view(conflict_superstep).to_text());

    // "Reproduce Vertex Context" (Figure 6).
    let reproduced = session.reproduce_vertex(u, conflict_superstep).unwrap();
    println!("--- generated reproduction test for vertex {u} ---");
    println!("{}", reproduced.generate_test_source());

    // In-process replay: buggy computation reproduces the bad decision;
    // the fixed tie-break keeps the vertex out.
    let buggy_replay = reproduced.replay(GraphColoring::buggy(seed));
    let fixed_replay =
        session.reproduce_vertex(u, conflict_superstep).unwrap().replay(GraphColoring::new(seed));
    println!(
        "replay: buggy tie-break => {:?}; fixed tie-break => {:?}",
        buggy_replay.value_after.state, fixed_replay.value_after.state
    );
}
