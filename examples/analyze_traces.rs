//! Analyze a captured run: the `graft-analyzer` quickstart.
//!
//! Runs PageRank under Graft twice — once with a healthy DebugConfig and
//! once with a deliberately broken one — writing both trace directories
//! to disk, then runs the full semantic analysis in-process. The printed
//! paths can be fed straight to the CLI for the untyped config lints:
//!
//! ```text
//! cargo run -p graft-analyzer --release --example analyze_traces
//! graft-cli <printed-dir> analyze
//! ```

use std::sync::Arc;

use graft::testing::premade;
use graft::{DebugConfig, GraftRunner, SuperstepFilter};
use graft_algorithms::pagerank::PageRank;
use graft_analyzer::{analyze_session, AnalyzeOptions};
use graft_dfs::LocalFs;

fn main() {
    let root = std::env::temp_dir().join("graft-analyze-example");
    let _ = std::fs::remove_dir_all(&root);

    // A healthy run: capture everything in a bounded superstep window
    // (unbounded capture-all would itself draw a GA0012 overhead
    // warning), letting the analyzer probe the combiner and replay
    // captured contexts under permuted delivery.
    let healthy_dir = root.join("healthy");
    let config = DebugConfig::<PageRank>::builder()
        .capture_all_active(true)
        .supersteps(SuperstepFilter::Range { from: 0, to: 31 })
        .build();
    let run = GraftRunner::new(PageRank::new(5), config)
        .with_fs(Arc::new(LocalFs::new(&healthy_dir).expect("trace dir")))
        .num_workers(2)
        .run(premade::star(6, 0.0f64), "/")
        .expect("PageRank runs");
    let session = run.session().expect("traces load");
    let report = analyze_session(&session, || PageRank::new(5), &AnalyzeOptions::default());
    println!("== healthy run ({} captures) ==", run.captures);
    print!("{}", report.to_text());
    println!("clean: {}\n", report.is_clean());

    // A broken config: an inverted superstep range plus a neighbor rule
    // with nothing to be a neighbor of. It runs fine — and captures
    // nothing, which is exactly the failure mode the lints catch.
    let broken_dir = root.join("broken");
    let config = DebugConfig::<PageRank>::builder()
        .capture_all_active(true)
        .capture_neighbors(true)
        .supersteps(SuperstepFilter::Range { from: 8, to: 2 })
        .build();
    let run = GraftRunner::new(PageRank::new(5), config)
        .with_fs(Arc::new(LocalFs::new(&broken_dir).expect("trace dir")))
        .run(premade::star(6, 0.0f64), "/")
        .expect("PageRank runs");
    let session = run.session().expect("traces load");
    let report = analyze_session(&session, || PageRank::new(5), &AnalyzeOptions::default());
    println!("== broken config ({} captures) ==", run.captures);
    print!("{}", report.to_text());
    println!("clean: {}\n", report.is_clean());

    println!("trace directories for `graft-cli <dir> analyze`:");
    println!("  {}", healthy_dir.display());
    println!("  {}", broken_dir.display());
}
