//! Scenario 4.2 — catching a 16-bit counter overflow with a message
//! constraint.
//!
//! Runs the short-counter random walk on a scaled web-BS graph with the
//! constraint "messages are non-negative", shows the red M indicator and
//! the Violations & Exceptions view, and replays an offending vertex
//! with both the buggy and the fixed counter width.
//!
//! ```text
//! cargo run -p graft-core --release --example random_walk_overflow
//! ```

use graft::{DebugConfig, GraftRunner};
use graft_algorithms::random_walk::{RWValue, RandomWalk};
use graft_datasets::Dataset;

fn main() {
    let graph = Dataset::by_name("web-BS")
        .unwrap()
        .generate_undirected(200, 5)
        .to_graph(RWValue::default());
    println!(
        "web-BS at 1/200 scale: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let buggy = RandomWalk::new(11, 8).initial_walkers(50_000).with_short_counters();
    let config = DebugConfig::<RandomWalk>::builder()
        .message_constraint(|walkers, _src, _dst, _superstep| *walkers >= 0)
        .catch_exceptions(false)
        .build();
    let run = GraftRunner::new(buggy, config)
        .num_workers(4)
        .run(graph, "/traces/rw-demo")
        .expect("trace setup succeeds");
    println!(
        "job finished; {} message-constraint violations across {} captures",
        run.violations, run.captures
    );

    let session = run.session().expect("traces load");

    // The M indicator across supersteps.
    print!("message indicator by superstep:");
    for superstep in session.supersteps() {
        if session.indicators(superstep).message_violation {
            print!(" {superstep}:RED");
        }
    }
    println!();

    // The Violations and Exceptions view (Figure 5).
    let view = session.violations_view();
    let rows = view.rows();
    println!("\n{}", view.to_text());

    // Reproduce an offender.
    let offender = &rows[0];
    let vertex: u64 = offender.vertex.parse().unwrap();
    let reproduced = session.reproduce_vertex(vertex, offender.superstep).unwrap();
    println!("--- generated reproduction test for vertex {vertex} ---");
    println!("{}", reproduced.generate_test_source());

    let buggy_replay =
        reproduced.replay(RandomWalk::new(11, 8).initial_walkers(50_000).with_short_counters());
    let negative_sends = buggy_replay.outgoing.iter().filter(|(_, count)| *count < 0).count();
    let fixed_replay = session
        .reproduce_vertex(vertex, offender.superstep)
        .unwrap()
        .replay(RandomWalk::new(11, 8).initial_walkers(50_000));
    let fixed_negative = fixed_replay.outgoing.iter().filter(|(_, count)| *count < 0).count();
    println!(
        "replay: 16-bit counters send {negative_sends} negative message(s); \
         64-bit counters send {fixed_negative} — the overflow is the bug"
    );
}
