//! Scenario 4.3 — using Graft to find errors in the *input graph*.
//!
//! Corrupts a fraction of the symmetric edge weights of a scaled
//! soc-Epinions graph, watches maximum-weight matching fail to converge,
//! then captures all active vertices late in the run and spots the
//! asymmetric weights in the captured contexts.
//!
//! ```text
//! cargo run -p graft-core --release --example matching_input_errors
//! ```

use graft::{DebugConfig, GraftRunner, SuperstepFilter};
use graft_algorithms::matching::{MWMValue, MaxWeightMatching};
use graft_datasets::weighted::{asymmetric_weight_pairs, corrupt_weights, weight_graph};
use graft_datasets::Dataset;
use graft_pregel::HaltReason;

fn main() {
    let list = Dataset::by_name("soc-Epinions").unwrap().generate_undirected(100, 3);

    // Not every random corruption wedges the proposal pointers; scan
    // corruption seeds until we hit an input that does — the paper had
    // one specific broken input file.
    let mut wedged = None;
    for corruption_seed in 0..20 {
        let clean = weight_graph(&list, 21, MWMValue::default());
        let (graph, corrupted) = corrupt_weights(clean, 0.05, corruption_seed);
        let plain = graft_pregel::Engine::new(MaxWeightMatching::new())
            .num_workers(4)
            .max_supersteps(120)
            .run(graph.clone())
            .unwrap();
        if plain.halt_reason == HaltReason::MaxSuperstepsReached {
            println!(
                "soc-Epinions at 1/100 scale: {} vertices, {} edges; {corrupted} weights                  corrupted (corruption seed {corruption_seed})",
                graph.num_vertices(),
                graph.num_edges()
            );
            println!(
                "plain run: still spinning after {} supersteps — an apparent infinite loop",
                plain.stats.superstep_count()
            );
            wedged = Some(graph);
            break;
        }
    }
    let graph = wedged.expect("some corruption pattern prevents convergence");

    // Rerun under Graft, capturing all active vertices after superstep
    // 60 (the paper uses 500 at full scale), when the live tail is small.
    let config = DebugConfig::<MaxWeightMatching>::builder()
        .capture_all_active(true)
        .supersteps(SuperstepFilter::After(60))
        .catch_exceptions(false)
        .build();
    let run = GraftRunner::new(MaxWeightMatching::new(), config)
        .num_workers(4)
        .max_supersteps(120)
        .run(graph.clone(), "/traces/mwm-demo")
        .expect("trace setup succeeds");
    let session = run.session().expect("traces load");

    let last = session.last_superstep().unwrap();
    let tail = session.captured_at(last);
    println!(
        "superstep {last}: {} vertices still active (of {})",
        tail.len(),
        graph.num_vertices()
    );
    println!("\n{}", session.tabular_view(last).to_text());

    // Inspect the captured contexts for asymmetric weights.
    let mut reported = 0;
    for trace in tail {
        for (neighbor, weight) in &trace.edges {
            if let Some(other) = session.vertex_at(*neighbor, last) {
                if let Some((_, back)) = other.edges.iter().find(|(t, _)| *t == trace.vertex) {
                    if (back - weight).abs() > 1e-12 && trace.vertex < *neighbor {
                        println!(
                            "ASYMMETRY: weight({} -> {}) = {weight} but weight({} -> {}) = {back}",
                            trace.vertex, neighbor, neighbor, trace.vertex
                        );
                        reported += 1;
                        if reported >= 5 {
                            break;
                        }
                    }
                }
            }
        }
        if reported >= 5 {
            break;
        }
    }
    println!(
        "found {reported} asymmetric pair(s) among the stuck vertices \
         (ground truth: {} corrupted pairs in the whole graph)",
        asymmetric_weight_pairs(&graph).len()
    );
}
