//! Debugging `master.compute()` (paper Section 3.4).
//!
//! Plants the classic phase-machine bug in a graph-coloring master —
//! colors are never assigned, so the job spins forever — and finds it by
//! reading Graft's automatically captured master contexts, then replays
//! the captured context against the buggy and the fixed master.
//!
//! ```text
//! cargo run -p graft-core --release --example master_debugging
//! ```

use graft::{DebugConfig, GraftRunner};
use graft_algorithms::coloring::{
    aggregators, phases, GCValue, GraphColoring, GraphColoringMaster,
};
use graft_datasets::Dataset;
use graft_pregel::{AggValue, AggregatorRegistry, Computation, MasterComputation, MasterContext};

/// The buggy master: never advances past NOTIFY to COLOR-ASSIGNMENT.
struct BuggyPhaseMaster;

impl MasterComputation<GraphColoring> for BuggyPhaseMaster {
    fn compute(&self, master: &mut MasterContext<'_>) {
        let phase = master
            .get_aggregated(aggregators::PHASE)
            .and_then(|v| v.as_text().map(str::to_string))
            .unwrap();
        let next = match phase.as_str() {
            phases::INIT => phases::SELECTION,
            phases::SELECTION => phases::CONFLICT_RESOLUTION,
            phases::CONFLICT_RESOLUTION => phases::NOTIFY,
            _ => phases::SELECTION, // BUG: the undecided count is ignored.
        };
        master.set_aggregated(aggregators::PHASE, AggValue::Text(next.into()));
    }

    fn name(&self) -> String {
        "BuggyPhaseMaster".into()
    }
}

fn main() {
    let graph =
        Dataset::by_name("bipartite-1M-3M").unwrap().generate(5000, 3).to_graph(GCValue::default());

    let config = DebugConfig::<GraphColoring>::builder().catch_exceptions(false).build();
    let run = GraftRunner::new(GraphColoring::new(5), config)
        .with_master(BuggyPhaseMaster)
        .num_workers(2)
        .max_supersteps(40)
        .run(graph, "/traces/master-demo")
        .expect("trace setup succeeds");
    let outcome = run.outcome.as_ref().unwrap();
    println!(
        "job hit the superstep limit ({:?} after {} supersteps) — the infinite-loop symptom",
        outcome.halt_reason,
        outcome.stats.superstep_count()
    );

    let session = run.session().expect("traces load");

    // Walk the master traces: phase + undecided count per superstep.
    println!("\nmaster contexts (captured automatically every superstep):");
    for trace in session.master_traces().take(15) {
        let phase = trace
            .aggregators
            .iter()
            .find(|(name, _)| name == aggregators::PHASE)
            .and_then(|(_, v)| v.as_text().map(str::to_string))
            .unwrap();
        let undecided = trace
            .aggregators
            .iter()
            .find(|(name, _)| name == aggregators::UNDECIDED)
            .and_then(|(_, v)| v.as_long())
            .unwrap_or(-1);
        println!("  superstep {:>2}: phase={phase:<20} undecided={undecided}", trace.superstep);
    }
    println!("  … the phase never reaches COLOR-ASSIGNMENT, even at undecided=0");

    // Reproduce the decision point and compare masters.
    let stuck = session
        .master_traces()
        .find(|t| {
            t.superstep >= 4
                && t.aggregators.iter().any(|(name, v)| {
                    name == aggregators::PHASE && v.as_text() == Some(phases::SELECTION)
                })
        })
        .expect("the loop revisits SELECTION");
    println!("\n--- generated master reproduction test (superstep {}) ---", stuck.superstep);
    println!("{}", session.reproduce_master(stuck.superstep).unwrap().generate_test_source());

    let replay = |master: &dyn MasterComputation<GraphColoring>| -> String {
        let mut registry = AggregatorRegistry::new();
        GraphColoring::new(5).register_aggregators(&mut registry);
        registry.set(aggregators::PHASE, AggValue::Text(phases::NOTIFY.into()));
        registry.set(aggregators::UNDECIDED, AggValue::Long(0));
        let mut ctx = MasterContext::new_for_replay(stuck.global, &mut registry);
        master.compute(&mut ctx);
        registry.get(aggregators::PHASE).and_then(|v| v.as_text().map(str::to_string)).unwrap()
    };
    println!(
        "replay with undecided=0 after NOTIFY: buggy master -> {}, fixed master -> {}",
        replay(&BuggyPhaseMaster),
        replay(&GraphColoringMaster)
    );
}
