//! Quickstart: write a vertex-centric program, run it under Graft with
//! the paper's Figure 2 DebugConfig (random captures + neighbors + a
//! message constraint), and walk the captured supersteps.
//!
//! ```text
//! cargo run -p graft-core --release --example quickstart
//! ```

use graft::testing::premade;
use graft::{DebugConfig, GraftRunner};
use graft_algorithms::pagerank::PageRank;

fn main() {
    // A small premade graph from the GUI's offline-mode menu.
    let graph = premade::grid(6, 4, 0.0f64);
    println!(
        "input graph: {} vertices, {} directed edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // The Figure 2 DebugConfig: 5 random vertices with their neighbors,
    // and a message constraint (PageRank shares must stay positive).
    let config = DebugConfig::<PageRank>::builder()
        .capture_random(5, 42)
        .capture_neighbors(true)
        .message_constraint(|share, _src, _dst, _superstep| *share >= 0.0)
        .build();

    let run = GraftRunner::new(PageRank::new(10), config)
        .num_workers(4)
        .run(graph, "/traces/quickstart")
        .expect("trace setup succeeds");
    let outcome = run.outcome.as_ref().expect("PageRank does not fail");
    println!(
        "job finished: {} supersteps, {} messages, {} contexts captured",
        outcome.stats.superstep_count(),
        outcome.stats.total_messages(),
        run.captures,
    );

    // Open the debug session and step through the supersteps, exactly
    // like pressing Next superstep in the GUI.
    let session = run.session().expect("traces load");
    let mut view = session.node_link_view(session.first_superstep().unwrap());
    loop {
        let indicators = view.indicators();
        let (nodes, links) = view.layout();
        println!(
            "superstep {:>2}: {:>2} nodes ({} captured), {:>2} links, M={} V={} E={}",
            view.superstep(),
            nodes.len(),
            nodes.iter().filter(|n| n.captured).count(),
            links.len(),
            if indicators.message_violation { "RED" } else { "ok" },
            if indicators.value_violation { "RED" } else { "ok" },
            if indicators.exception { "RED" } else { "ok" },
        );
        match view.next() {
            Some(next) => view = next,
            None => break,
        }
    }

    // Show the tabular view of one superstep.
    println!("\n{}", session.tabular_view(3).to_text());

    // Reproduce one captured vertex in-process and confirm fidelity.
    let trace = &session.captured_at(3)[0];
    let reproduced = session.reproduce_vertex(trace.vertex, 3).unwrap();
    let report = reproduced.verify_fidelity(PageRank::new(10));
    println!("replayed vertex {} superstep 3: faithful = {}", trace.vertex, report.is_faithful());

    // And emit the standalone reproduction test (Figure 6 analogue).
    println!("\n--- generated reproduction test ---");
    println!("{}", reproduced.generate_test_source());
}
